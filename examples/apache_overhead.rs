//! Reproduce the §6.4 overhead experiments (Tables 3 and 4): Apache httpd
//! under the AB load generator and MySQL under the SysBench-like OLTP
//! workload, with 0 / 10 / 100 / 500 / 1000 passthrough triggers installed on
//! the most-called library functions.
//!
//! Run with `cargo run --release --example apache_overhead`.

use lfi::core::experiments;

fn main() {
    let table3 = experiments::table3_apache_overhead(1000, 2009);
    println!("{}", table3.render());
    println!("worst-case overhead: {:.1}%\n", table3.max_overhead_percent());

    let table4 = experiments::table4_mysql_overhead(500, 2009);
    println!("{}", table4.render());
    println!("worst-case overhead: {:.1}%", table4.max_overhead_percent());
}
