//! Reproduce the §6.1 MySQL coverage experiment: run the server's own test
//! suite with and without a fully automatic random libc fault scenario and
//! report the basic-block coverage improvement (73% → ≥74% overall, +12% in
//! the InnoDB ibuf module) and any SIGSEGV crashes observed.
//!
//! Run with `cargo run --example mysql_coverage`.

use lfi::core::experiments;

fn main() {
    let result = experiments::mysql_coverage(400, 2009);
    println!("{}", result.render());

    let overall_gain = (result.injected_overall - result.baseline_overall) * 100.0;
    let ibuf_gain = (result.injected_ibuf - result.baseline_ibuf) * 100.0;
    println!("overall coverage gain: +{overall_gain:.1} percentage points");
    println!("ibuf module coverage gain: +{ibuf_gain:.1} percentage points");
    if result.crashes > 0 {
        println!(
            "{} test case(s) crashed with SIGSEGV under injection — the unchecked allocations the paper also hit",
            result.crashes
        );
    }
}
