//! Closed-loop campaign control: a rule set — crash-cluster escalation plus
//! the canonical per-symbol circuit breaker — drives the explorer against
//! the §6.1 MySQL test-suite workload, with the explorer's built-in
//! refinement heuristic switched off.  Every decision the engine takes is
//! audited on a byte-stable decision log, and the run's vitals stream into
//! a structured metrics sink.
//!
//! Run with `cargo run --example closed_loop`.

use std::sync::Arc;

use lfi::apps::workloads::MysqlSuite;
use lfi::controller::Workload;
use lfi::corpus::{build_kernel, build_libc_scaled};
use lfi::isa::Platform;
use lfi::profile::FaultProfile;
use lfi::profiler::ProfilerOptions;
use lfi::rules::{Action, CircuitBreaker, Condition, Metric, Rule, RuleSet};
use lfi::scenario::generator::{Composite, Exhaustive, Filtered, ScenarioGenerator};
use lfi::scenario::{FaultAction, Plan, PlanEntry, Trigger};
use lfi::Lfi;

/// A workload-specific generator: starve the allocator at every call depth
/// up to `depth`, the §6.1 construction that flushes out the suite's
/// unchecked allocations (the first sits at call #25).
struct AllocationStress {
    depth: u64,
}

impl ScenarioGenerator for AllocationStress {
    fn name(&self) -> &str {
        "allocation-stress"
    }

    fn description(&self) -> String {
        format!("malloc returns NULL/ENOMEM once at each call ordinal 1..={}", self.depth)
    }

    fn generate(&self, _profiles: &[FaultProfile]) -> Plan {
        let mut plan = Plan::new();
        for ordinal in 1..=self.depth {
            plan.entries.push(PlanEntry {
                function: "malloc".into(),
                trigger: Trigger::on_call(ordinal),
                action: FaultAction::return_value(0).with_errno(12),
            });
        }
        plan
    }
}

fn main() {
    // Profile the libc the simulated MySQL server runs over.
    let mut lfi = Lfi::with_options(ProfilerOptions::with_heuristics());
    lfi.add_library(build_libc_scaled(Platform::LinuxX86, 80).compiled.object);
    lfi.set_kernel(build_kernel(Platform::LinuxX86));

    // The faultload: allocator starvation at 40 call depths, composed with
    // the exhaustive plan over the I/O surface the suite exercises.
    let faultload = Composite::new()
        .push(AllocationStress { depth: 40 })
        .push(Filtered::new(Exhaustive).allow(["read", "write", "fsync", "send", "recv"]));

    // The policy: surface a crashing symbol's sibling faults once; trip its
    // circuit breaker on the first crash cluster (muting the symbol); probe
    // again after 40 quiet events — if the symbol still crashes, the breaker
    // re-opens; and stop the whole campaign once six crashes are on record.
    let set = RuleSet::new()
        .rule(
            Rule::per_symbol(
                "escalate-on-crash",
                Condition::at_least(Metric::CrashClusters, 1.0),
                [Action::EscalateSiblings],
            )
            .once(),
        )
        .rule(Rule::global("crash-budget", Condition::at_least(Metric::Crashes, 6.0), [Action::Cancel]))
        .machine(CircuitBreaker::tripping_after(1).cooldown(40));

    let mut closed = lfi
        .rules(&faultload, &["libc.so.6"], set)
        .expect("libc profiles")
        .configure(|e| e.seed(2009).batch_size(10).case_budget(120));
    println!("fault-space universe: {} cells", closed.explorer().universe_len());

    // The §6.1 regression suite as the application under test.
    let suite: Arc<dyn Workload> = Arc::new(MysqlSuite::with_cases(60));
    let report = closed.run_workload(&suite);

    println!(
        "\nran {} cases / {} injections in {} batches; {} crash cluster(s)",
        report.cases_executed,
        report.injections_performed,
        closed.explorer().batch_index(),
        report.crash_clusters().count(),
    );
    for cluster in report.crash_clusters() {
        println!(
            "  {} x{} via {}() (call #{}, retval {})",
            cluster.outcome, cluster.count, cluster.function, cluster.example.call_ordinal, cluster.example.retval,
        );
    }

    let harness = closed.harness();
    println!("\n== decision log (byte-identical across fixed-seed reruns) ==");
    print!("{}", closed.decision_log());
    let muted: Vec<&str> = harness.with_engine(|engine| engine.muted().collect());
    println!("\nmuted symbols: {muted:?}");

    println!("\n== metrics (NDJSON) ==");
    for line in harness.metrics().to_ndjson().lines() {
        if line.contains("rules/") || line.contains("breaker/") || line.contains("campaign/crashes") {
            println!("{line}");
        }
    }

    // The closed loop found the allocation crashes and benched the fragile
    // symbol — the breaker's mute provably suppresses further injections.
    let crash = report.crash_clusters().next().expect("the unchecked allocations crash the suite");
    assert_eq!(crash.function.as_str(), "malloc");
    let log = closed.decision_log();
    assert!(log.contains("machine/circuit-breaker:Closed->Open"), "breaker tripped:\n{log}");
    assert!(log.contains("rule/escalate-on-crash"), "escalation fired:\n{log}");
    assert!(harness.is_muted("malloc") || harness.halted(), "malloc benched or campaign stopped");
    assert!(harness.decision_count() > 0);
}
