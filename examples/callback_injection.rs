//! Fault injection through function pointers, plus argument-dependence
//! reporting (§3.1 extensions).
//!
//! Event-driven programs often call library functions through callback
//! tables rather than by name.  §3.1 notes that "the LFI controller could
//! dynamically resolve indirect calls at runtime and inject the return codes
//! corresponding to the function being called" — this example shows exactly
//! that: the application below registers `read` and `send` in a dispatch
//! table and only ever calls them through pointers, yet the interceptor still
//! injects each function's own error codes, because pointers are resolved at
//! call time.
//!
//! The second half runs the profiler's argument-constraint inference and
//! prints which error values are argument-gated (the paper's
//! `read`/`EWOULDBLOCK` false-positive class).
//!
//! Run with `cargo run --example callback_injection`.

use lfi::controller::Injector;
use lfi::corpus::{build_kernel, build_libc_scaled};
use lfi::isa::Platform;
use lfi::profiler::{Profiler, ProfilerOptions};
use lfi::runtime::{NativeLibrary, Process};
use lfi::scenario::{FaultAction, Plan, PlanEntry, Trigger};

fn main() {
    // --- a plan with one fault per callback --------------------------------
    let plan = Plan::new()
        .entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(2),
            action: FaultAction::return_value(-1).with_errno(4), // EINTR
        })
        .entry(PlanEntry {
            function: "send".into(),
            trigger: Trigger::on_call(1),
            action: FaultAction::return_value(-1).with_errno(32), // EPIPE
        });

    // --- the application's callback table -----------------------------------
    let mut process = Process::new();
    process.load(
        NativeLibrary::builder("libc.so.6")
            .function("read", |ctx| ctx.arg(2))
            .function("send", |ctx| ctx.arg(2))
            .build(),
    );
    let injector = Injector::new(plan);
    process.preload(injector.synthesize_interceptor());

    // The program resolves its callbacks once, up front, then only ever calls
    // through the table.
    let callbacks = [process.fnptr("read").unwrap(), process.fnptr("send").unwrap()];

    println!("== driving the callback table ==");
    for round in 1..=3 {
        for (index, &callback) in callbacks.iter().enumerate() {
            let result = process.call_ptr(callback, &[3, 0x1000, 128]).unwrap();
            let name = if index == 0 { "read" } else { "send" };
            if result < 0 {
                println!("round {round}: {name} via pointer failed with {result}, errno {}", process.state().errno());
            } else {
                println!("round {round}: {name} via pointer returned {result}");
            }
        }
    }
    println!("\n== injection log ==\n{}", injector.log().to_text());

    // --- which error codes are argument-dependent? -------------------------
    let platform = Platform::LinuxX86;
    let libc = build_libc_scaled(platform, 40);
    let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
    profiler.add_library(libc.compiled.object.clone());
    profiler.set_kernel(build_kernel(platform));
    let constraints = profiler.argument_constraints("libc.so.6").expect("constraint analysis runs");

    println!("== argument-gated error values (first 5 functions) ==");
    for (function, per_value) in constraints.iter().take(5) {
        for (value, gates) in per_value {
            let rendered: Vec<String> = gates.iter().map(ToString::to_string).collect();
            println!("  {function} returns {value} only when {}", rendered.join(" && "));
        }
    }
}
