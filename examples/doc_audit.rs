//! Cross-check library documentation against the binary (§3.1, §3.3, §6.3).
//!
//! The LFI profiler's fault profiles "could also be used for other purposes,
//! such as cross-checking API documentation" (§3.3).  This example does
//! exactly that:
//!
//! 1. profile the libc-like corpus binary and a libxml2-like binary;
//! 2. render each library's reference manual, parse it back with the
//!    documentation parser, and diff it against the profiler's findings —
//!    surfacing the paper's anecdotes (`close` can set EIO on Linux although
//!    BSD man pages omit it; `htmlParseDocument` can return 1 although it is
//!    documented as 0/-1 only);
//! 3. build the combined static+documentation profile and show where each
//!    error value came from.
//!
//! Run with `cargo run --example doc_audit`.

use std::collections::BTreeSet;

use lfi::corpus::named::build_libxml2_with_doc_mismatch;
use lfi::corpus::{build_kernel, build_libc_scaled};
use lfi::docs::{CombinedProfile, DocParser, DocumentationSet, Provenance, StylePolicy};
use lfi::isa::Platform;
use lfi::profiler::{Profiler, ProfilerOptions};
use lfi::scenario::errno::errno_name;

fn main() {
    let platform = Platform::LinuxX86;

    // --- libc: errno values the man pages forgot ---------------------------
    let libc = build_libc_scaled(platform, 60);
    let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
    profiler.add_library(libc.compiled.object.clone());
    profiler.set_kernel(build_kernel(platform));
    let profile = profiler.profile_library("libc.so.6").expect("libc profiles").profile;

    println!("== errno values found in the binary but missing from the documentation ==");
    let documented = lfi::corpus::libc_errno_documentation();
    for function in ["close", "modify_ldt"] {
        let Some(found) = profile.function(function) else {
            continue;
        };
        let found_errnos: BTreeSet<i64> =
            found.error_returns.iter().flat_map(|r| r.errno_values()).map(i64::abs).collect();
        let listed = documented.get(function).cloned().unwrap_or_default();
        let listed: BTreeSet<i64> = listed.iter().map(|v| v.abs()).collect();
        for errno in found_errnos.difference(&listed) {
            let name = errno_name(*errno).unwrap_or("?");
            println!("  {function}: can set errno {errno} ({name}), not in the man page");
        }
    }

    // --- libxml2: an undocumented return value ------------------------------
    let libxml2 = build_libxml2_with_doc_mismatch(11);
    println!("\n== return values found in the binary but missing from the documentation ==");
    for (function, values) in libxml2.undocumented_behaviour() {
        println!("  {function}: undocumented return value(s) {values:?}");
    }

    // --- combined static + documentation profile ---------------------------
    let manual = DocumentationSet::from_error_map(libc.name(), &libc.documentation, StylePolicy::realistic(), 2009);
    let mut parsed = DocParser::new().parse_set(libc.name(), &manual.render()).expect("manual parses");
    parsed.resolve_cross_references().expect("references resolve");
    println!(
        "\n== parsed manual: {} pages, {:.0}% too vague to enumerate values ==",
        parsed.len(),
        parsed.imprecise_fraction() * 100.0
    );

    let combined = CombinedProfile::combine(&profile, &parsed);
    let counts = combined.provenance_counts();
    println!(
        "combined profile: {} values total — {} from static analysis only, {} from documentation only, {} confirmed by both",
        counts.total(),
        counts.static_only,
        counts.documentation_only,
        counts.both
    );

    // Show a few per-value provenance entries for one function.
    if let Some(values) = combined.functions.get("close") {
        println!("\nclose():");
        for (value, provenance) in values {
            let source = match provenance {
                Provenance::StaticAnalysis => "binary only",
                Provenance::Documentation => "documentation only",
                Provenance::Both => "binary + documentation",
            };
            println!("  returns {value}  [{source}]");
        }
    }
}
