//! A hand-written fault scenario in the paper's XML language (§4).
//!
//! The plan below is the example from the paper: the 5th call to `readdir64`
//! returns a null pointer with `EBADF`; the 5th call to `readdir` does the
//! same but only when the application is inside `refresh_files`; the 2nd call
//! to `read` has 10 subtracted from its byte-count argument and is then
//! passed through to the original function.
//!
//! Run with `cargo run --example custom_scenario`.

use lfi::controller::Injector;
use lfi::intern::Symbol;
use lfi::runtime::{NativeLibrary, Process};
use lfi::scenario::Plan;

const SCENARIO: &str = r#"
<plan>
  <function name="readdir64" inject="5" retval="0" errno="EBADF" calloriginal="false" />
  <function name="readdir" inject="5" retval="0" errno="EBADF" calloriginal="false">
    <stacktrace>
      <frame>refresh_files</frame>
    </stacktrace>
  </function>
  <function name="read" inject="2" calloriginal="true">
    <modify argument="2" op="sub" value="10" />
  </function>
</plan>
"#;

fn main() {
    // Parse the scenario exactly as the LFI controller would receive it.
    let plan = Plan::from_xml(SCENARIO).expect("the scenario is well-formed");
    println!("== parsed scenario: {} triggers ==\n{}", plan.len(), plan.to_xml());

    // The resolve-once-at-setup contract: names are interned to copyable
    // `Symbol` ids here, once; every per-call structure downstream (library
    // dispatch, trigger slots, the call stack) compares these ids and never
    // hashes a string.  `Injector::new` compiles the plan the same way.
    let readdir64 = Symbol::intern("readdir64");
    let readdir = Symbol::intern("readdir");
    let read = Symbol::intern("read");

    // The "original" library the application links against.
    let mut process = Process::new();
    process.load(
        NativeLibrary::builder("libc.so.6")
            .function("readdir64", |_| 0x5000) // a directory entry pointer
            .function("readdir", |_| 0x5000)
            .function("read", |ctx| ctx.arg(2)) // returns the byte count it was asked for
            .build(),
    );

    // Shim the synthesized interceptor in front of it.
    let injector = Injector::new(plan);
    process.preload(injector.synthesize_interceptor());

    // --- readdir64: the 5th call fails with a null pointer + EBADF ---------
    // Dispatch by pre-resolved symbol: the workload's tight loop does no
    // string work at all (`Process::call` with a `&str` works too and
    // interns once at the boundary).
    for call in 1..=6 {
        let entry = process.call_sym(readdir64, &[0x10]).unwrap();
        if entry == 0 {
            println!("readdir64 call {call}: NULL, errno {}", process.state().errno());
        }
    }

    // --- readdir: the 5th call fails, but only inside refresh_files --------
    for call in 1..=4 {
        let entry = process.call_sym(readdir, &[0x10]).unwrap();
        assert_ne!(entry, 0, "call {call} must succeed (trigger is armed for call 5)");
    }
    // The 5th call arrives from inside the application's refresh_files
    // routine, so both the call-count and the stack-trace condition match.
    process.push_frame("refresh_files");
    let entry = process.call_sym(readdir, &[0x10]).unwrap();
    process.pop_frame();
    println!(
        "readdir call 5 inside refresh_files: {entry:#x} (0 means the injection fired), errno {}",
        process.state().errno()
    );

    // --- read: the 2nd call is shortened by 10 bytes and passed through ----
    let full = process.call_sym(read, &[3, 0x2000, 64]).unwrap();
    let short = process.call_sym(read, &[3, 0x2000, 64]).unwrap();
    println!("read returned {full} then {short} (argument modified in flight)");

    println!("\n== injection log ==\n{}", injector.log().to_text());
    println!("== replay script ==\n{}", injector.replay_plan().to_xml());
}
