//! Reproduce the §6.1 Pidgin experiment: a random fault scenario on the I/O
//! functions of libc with 10% injection probability crashes the IM client's
//! login sequence with SIGABRT; the generated replay script reproduces the
//! crash deterministically.
//!
//! The spelled-out hunt drives the `pidgin-login` workload from the
//! `lfi-apps` registry through a *streaming* campaign session: test cases
//! for all 100 seeds are scheduled up front, events are consumed as they
//! arrive, and the session is cancelled through its `CancelHandle` the
//! moment the first crash outcome streams out — no case beyond the crash
//! (plus whatever was in flight) is ever executed.
//!
//! Run with `cargo run --example pidgin_bug_hunt`.

use lfi::apps::workloads;
use lfi::controller::{Campaign, CaseEvent, TestCase};
use lfi::core::experiments;
use lfi::corpus::{build_kernel, build_libc_scaled};
use lfi::isa::Platform;
use lfi::profiler::{Profiler, ProfilerOptions};
use lfi::scenario::generator::{ReadyMade, ScenarioGenerator};

fn main() {
    // The packaged experiment driver...
    let result = experiments::pidgin_bug_hunt(100, 2009);
    println!("{}", result.render());

    // ...and the same hunt spelled out step by step.
    let platform = Platform::LinuxX86;
    let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
    profiler.add_library(build_libc_scaled(platform, 80).compiled.object);
    profiler.set_kernel(build_kernel(platform));
    let libc_profile = profiler.profile_library("libc.so.6").expect("libc profiles").profile;

    // The application under test comes from the workload registry: a fresh
    // simulated world and process per case, the login sequence as `run`.
    let registry = workloads::registry();
    let pidgin = registry.get("pidgin-login").expect("the apps registry ships pidgin-login");

    // One test case per seed; the streaming session means we can schedule
    // the whole faultload and still stop paying the moment a crash appears.
    let cases: Vec<TestCase> = (0..100u64)
        .map(|attempt| {
            let generator = ReadyMade::random_io(0.10, 7000 + attempt).expect("0.10 is a valid probability");
            TestCase::new(format!("random-io-{attempt:03}"), generator.generate(std::slice::from_ref(&libc_profile)))
        })
        .collect();
    let mut run = Campaign::new().cases(cases).start_arc(pidgin.clone());
    let cancel = run.cancel_handle();
    let mut first_crash = None;
    for event in run.by_ref() {
        if let CaseEvent::Outcome { outcome, .. } = event {
            if outcome.status.is_crash() {
                cancel.cancel(); // stop scheduling; in-flight cases drain
                first_crash.get_or_insert(outcome);
            }
        }
    }
    let progress = run.progress();
    let report = run.into_report();
    println!(
        "hunted with {} login attempts ({} scheduled cases skipped after cancelling)",
        progress.finished, report.cases_skipped
    );
    let Some(crash) = first_crash else {
        println!("no crash in 100 attempts (unexpected — the bug should be found quickly)");
        return;
    };
    println!("{}: Pidgin login crashed: {}", crash.name, crash.status);
    println!("injection log:\n{}", crash.log.to_text());
    println!("replay script:\n{}", crash.replay.to_xml());

    // Re-run under the replay script, as a developer would before attaching
    // a debugger.
    let replay_report = Campaign::new()
        .case(TestCase::new("replay", crash.replay.clone()))
        .start_arc(pidgin)
        .into_report();
    println!("replayed run: {}", replay_report.outcomes[0].status);
}
