//! Reproduce the §6.1 Pidgin experiment: a random fault scenario on the I/O
//! functions of libc with 10% injection probability crashes the IM client's
//! login sequence with SIGABRT; the generated replay script reproduces the
//! crash deterministically.
//!
//! Run with `cargo run --example pidgin_bug_hunt`.

use lfi::apps::{base_process, new_world, PidginApp};
use lfi::controller::Injector;
use lfi::core::experiments;
use lfi::corpus::{build_kernel, build_libc_scaled};
use lfi::isa::Platform;
use lfi::profiler::{Profiler, ProfilerOptions};
use lfi::scenario::ready_made;

fn main() {
    // The packaged experiment driver...
    let result = experiments::pidgin_bug_hunt(100, 2009);
    println!("{}", result.render());

    // ...and the same hunt spelled out step by step.
    let platform = Platform::LinuxX86;
    let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
    profiler.add_library(build_libc_scaled(platform, 80).compiled.object);
    profiler.set_kernel(build_kernel(platform));
    let libc_profile = profiler.profile_library("libc.so.6").expect("libc profiles").profile;

    for attempt in 0..100u64 {
        let plan = ready_made::random_io_faults(&libc_profile, 0.10, 7000 + attempt);
        let injector = Injector::new(plan);
        let world = new_world();
        let mut process = base_process(&world, false);
        process.preload(injector.synthesize_interceptor());

        let status = PidginApp::new().login(&mut process, &world);
        if status.is_crash() {
            println!("attempt {attempt}: Pidgin login crashed: {status}");
            println!("injection log:\n{}", injector.log().to_text());
            let replay = injector.replay_plan();
            println!("replay script:\n{}", replay.to_xml());

            // Re-run under the replay script, as a developer would before
            // attaching a debugger.
            let world = new_world();
            let mut process = base_process(&world, false);
            let replay_injector = Injector::new(replay);
            process.preload(replay_injector.synthesize_interceptor());
            let replayed = PidginApp::new().login(&mut process, &world);
            println!("replayed run: {replayed}");
            return;
        }
    }
    println!("no crash in 100 attempts (unexpected — the bug should be found quickly)");
}
