//! Reproduce the §6.1 Pidgin experiment: a random fault scenario on the I/O
//! functions of libc with 10% injection probability crashes the IM client's
//! login sequence with SIGABRT; the generated replay script reproduces the
//! crash deterministically.
//!
//! Run with `cargo run --example pidgin_bug_hunt`.

use lfi::apps::{base_process, new_world, PidginApp};
use lfi::controller::{Campaign, CaseWorkload, ExecutionPolicy, TestCase};
use lfi::core::experiments;
use lfi::corpus::{build_kernel, build_libc_scaled};
use lfi::isa::Platform;
use lfi::profiler::{Profiler, ProfilerOptions};
use lfi::scenario::generator::{ReadyMade, ScenarioGenerator};

fn main() {
    // The packaged experiment driver...
    let result = experiments::pidgin_bug_hunt(100, 2009);
    println!("{}", result.render());

    // ...and the same hunt spelled out step by step.
    let platform = Platform::LinuxX86;
    let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
    profiler.add_library(build_libc_scaled(platform, 80).compiled.object);
    profiler.set_kernel(build_kernel(platform));
    let libc_profile = profiler.profile_library("libc.so.6").expect("libc profiles").profile;

    // A campaign of random I/O faultloads, one test case per seed, stopped
    // at the first crash; every case gets a fresh simulated world.
    // Faultloads are generated in batches so an early crash (the common
    // outcome) does not pay for plans the policy would only discard.
    let run_login = |cases: Vec<TestCase>, policy: ExecutionPolicy| {
        Campaign::new().cases(cases).policy(policy).run_per_case(|_case| {
            let world = new_world();
            let process = base_process(&world, false);
            let workload: CaseWorkload = Box::new(move |process| PidginApp::new().login(process, &world));
            (process, workload)
        })
    };
    const BATCH: u64 = 16;
    let mut first_crash = None;
    for batch_start in (0..100u64).step_by(BATCH as usize) {
        let cases: Vec<TestCase> = (batch_start..(batch_start + BATCH).min(100))
            .map(|attempt| {
                let generator = ReadyMade::random_io(0.10, 7000 + attempt).expect("0.10 is a valid probability");
                TestCase::new(
                    format!("random-io-{attempt:03}"),
                    generator.generate(std::slice::from_ref(&libc_profile)),
                )
            })
            .collect();
        let report = run_login(cases, ExecutionPolicy::run_all().stop_on_first_crash());
        first_crash = report.crashes().next().cloned();
        if first_crash.is_some() {
            break;
        }
    }
    let Some(crash) = first_crash else {
        println!("no crash in 100 attempts (unexpected — the bug should be found quickly)");
        return;
    };
    println!("{}: Pidgin login crashed: {}", crash.name, crash.status);
    println!("injection log:\n{}", crash.log.to_text());
    println!("replay script:\n{}", crash.replay.to_xml());

    // Re-run under the replay script, as a developer would before attaching
    // a debugger.
    let replay_report = run_login(vec![TestCase::new("replay", crash.replay.clone())], ExecutionPolicy::run_all());
    println!("replayed run: {}", replay_report.outcomes[0].status);
}
