//! Crash-safe incremental checkpointing: an exploration journals one
//! O(delta) record per batch into an `lfi-store` write-ahead journal, gets
//! "killed" mid-run, recovers its state from the journal (byte-identical to
//! the last durable point), and finishes the campaign exactly as an
//! uninterrupted run would have.
//!
//! Run with `cargo run --example checkpoint_resume`.

use lfi::corpus::{build_kernel, build_libc_scaled};
use lfi::isa::Platform;
use lfi::profiler::ProfilerOptions;
use lfi::runtime::{ExitStatus, NativeLibrary, Process, Signal};
use lfi::scenario::generator::Exhaustive;
use lfi::store::ExplorationJournal;
use lfi::Lfi;

fn setup() -> Process {
    let mut process = Process::new();
    process.load(
        NativeLibrary::builder("libc.so.6")
            .function("open", |_| 3)
            .function("write", |ctx| ctx.arg(2))
            .function("fsync", |_| 0)
            .function("close", |_| 0)
            .build(),
    );
    process
}

/// The log-structured writer of `examples/explore_library.rs`: survives
/// every documented failure, dies on the undocumented EIO from `close`.
fn workload(process: &mut Process) -> ExitStatus {
    if process.call("open", &[0, 0, 0]).unwrap_or(-1) < 0 {
        return ExitStatus::Exited(2);
    }
    for _ in 0..4 {
        if process.call("write", &[3, 0, 64]).unwrap_or(-1) < 0 {
            return ExitStatus::Exited(1);
        }
    }
    if process.call("fsync", &[3]).unwrap_or(-1) < 0 {
        return ExitStatus::Exited(1);
    }
    for _ in 0..2 {
        if process.call("close", &[3]).unwrap_or(-1) < 0 {
            if process.state().errno() == 5 {
                return ExitStatus::Crashed(Signal::Segv);
            }
            return ExitStatus::Exited(1);
        }
    }
    ExitStatus::Exited(0)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("lfi-checkpoint-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal_path = dir.join("exploration.lfij");

    // Profile the corpus libc (120 exports) against the synthetic kernel.
    let mut lfi = Lfi::with_options(ProfilerOptions::with_heuristics());
    lfi.add_library(build_libc_scaled(Platform::LinuxX86, 120).compiled.object);
    lfi.set_kernel(build_kernel(Platform::LinuxX86));

    // Phase 1: explore with a write-ahead journal — a full snapshot at
    // creation, then one delta record per batch.
    let mut explorer = lfi.explore(&Exhaustive, &["libc.so.6"]).unwrap().seed(77).batch_size(6);
    let mut journal = ExplorationJournal::create(&journal_path, &explorer.store()).unwrap();
    let mut batches = 0u32;
    for _ in 0..3 {
        let report = explorer.step(setup, workload).expect("the exploration has more than three batches");
        journal.append_delta(&explorer.take_delta()).unwrap();
        batches += 1;
        println!(
            "batch {batches}: {} cases run — journal at {} deltas ({} bytes)",
            report.outcomes.len(),
            journal.deltas_since_snapshot(),
            std::fs::metadata(&journal_path).unwrap().len(),
        );
    }
    let durable = explorer.store();
    drop(journal);
    drop(explorer);
    println!("\n*** kill: the exploring process is gone; only the journal file remains ***\n");

    // Phase 2: a fresh process recovers the journal.  Torn tails would be
    // truncated here; what comes back is exactly the last durable state.
    let recovered = ExplorationJournal::open(&journal_path).unwrap();
    assert_eq!(recovered.state(), &durable, "recovery is byte-identical to the pre-kill state");
    println!(
        "recovered batch index {} with {} frontier cells pending; {} bytes of journal",
        recovered.state().batch_index,
        recovered.state().frontier.len(),
        std::fs::metadata(&journal_path).unwrap().len(),
    );

    // Phase 3: resume and finish, journaling onward from a compacted base.
    let mut resumed = lfi.resume_exploration(recovered.state(), &["libc.so.6"]).unwrap();
    let mut journal = recovered;
    journal.compact().unwrap();
    let mut crash_batch = None;
    while let Some(_report) = resumed.step(setup, workload) {
        journal.append_delta(&resumed.take_delta()).unwrap();
        batches += 1;
        if crash_batch.is_none() && resumed.crash_found() {
            crash_batch = Some(batches);
            println!("batch {batches}: found the seeded crash cluster");
        }
    }
    let summary = resumed.coverage_summary();
    println!(
        "\nfinished after {batches} batches: {} cells executed of {} universe, {} triggered, frontier drained to {}",
        summary.executed, summary.universe, summary.triggered, summary.frontier_remaining,
    );
    assert_eq!(summary.frontier_remaining, 0);
    assert!(resumed.crash_found(), "the EIO-on-close crash survives the kill+resume");

    // The journal now holds the finished state: one more recovery proves it.
    drop(journal);
    let final_state = ExplorationJournal::open(&journal_path).unwrap();
    assert_eq!(final_state.state(), &resumed.store(), "the finished run is durable");
    println!(
        "journal recovers the finished exploration: {} bytes on disk",
        std::fs::metadata(&journal_path).unwrap().len()
    );

    std::fs::remove_dir_all(&dir).ok();
}
