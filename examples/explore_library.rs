//! Coverage-guided exploration of the libc-120 corpus: instead of running
//! the full exhaustive campaign, the `Explorer` probes which functions the
//! workload actually reaches, prunes the rest of the fault space, and
//! escalates around the first crash — then snapshots its state to a
//! resumable XML `ExplorationStore`.
//!
//! Run with `cargo run --example explore_library`.

use lfi::controller::FnWorkload;
use lfi::corpus::{build_kernel, build_libc_scaled};
use lfi::explore::ExplorationStore;
use lfi::isa::Platform;
use lfi::profiler::ProfilerOptions;
use lfi::runtime::{ExitStatus, NativeLibrary, Process, Signal};
use lfi::scenario::generator::Exhaustive;
use lfi::Lfi;

fn setup() -> Process {
    let mut process = Process::new();
    process.load(
        NativeLibrary::builder("libc.so.6")
            .function("open", |_| 3)
            .function("write", |ctx| ctx.arg(2))
            .function("fsync", |_| 0)
            .function("close", |_| 0)
            .build(),
    );
    process
}

/// A log-structured writer that survives every documented failure but dies
/// on the §3.3 undocumented EIO from `close` (unflushed data lost).
fn workload(process: &mut Process) -> ExitStatus {
    if process.call("open", &[0, 0, 0]).unwrap_or(-1) < 0 {
        return ExitStatus::Exited(2);
    }
    for _ in 0..4 {
        if process.call("write", &[3, 0, 64]).unwrap_or(-1) < 0 {
            return ExitStatus::Exited(1);
        }
    }
    if process.call("fsync", &[3]).unwrap_or(-1) < 0 {
        return ExitStatus::Exited(1);
    }
    for _ in 0..2 {
        if process.call("close", &[3]).unwrap_or(-1) < 0 {
            if process.state().errno() == 5 {
                return ExitStatus::Crashed(Signal::Segv);
            }
            return ExitStatus::Exited(1);
        }
    }
    ExitStatus::Exited(0)
}

fn main() {
    // Profile the corpus libc (120 exports) against the synthetic kernel.
    let mut lfi = Lfi::with_options(ProfilerOptions::with_heuristics());
    lfi.add_library(build_libc_scaled(Platform::LinuxX86, 120).compiled.object);
    lfi.set_kernel(build_kernel(Platform::LinuxX86));

    let exhaustive = lfi.campaign(&Exhaustive, &["libc.so.6"]).unwrap().case_list().len();
    println!("exhaustive campaign over libc-120: {exhaustive} test cases");

    // The explorer walks the same fault space adaptively.
    let mut explorer = lfi
        .explore(&Exhaustive, &["libc.so.6"])
        .unwrap()
        .seed(2009)
        .batch_size(12)
        .halt_on_crash(true);
    println!("fault-space universe: {} cells", explorer.universe_len());

    // The log-structured writer as a shared, named Workload: the explorer
    // consumes each batch campaign's event stream while this object drives
    // every case.
    let writer = FnWorkload::shared("log-writer", setup, workload);
    let report = explorer.run_workload(&writer);

    let coverage = report.coverage;
    println!(
        "\nexplored in {} batches: {} cases run ({:.0}% of exhaustive), {} injections",
        explorer.batch_index(),
        report.cases_executed,
        report.cases_executed as f64 * 100.0 / exhaustive as f64,
        report.injections_performed,
    );
    println!(
        "coverage: {} cells triggered, {} planned-but-unreached, {} of 120 functions pruned by the probe",
        coverage.triggered, coverage.unreached, coverage.pruned_functions,
    );

    println!("\n== outcome clusters ==");
    for cluster in &report.clusters {
        println!(
            "  {} x{} via {}() cell (call #{}, retval {}, errno {:?}) — first seen in {}",
            cluster.outcome,
            cluster.count,
            cluster.function,
            cluster.example.call_ordinal,
            cluster.example.retval,
            cluster.example.errno,
            cluster.example_case,
        );
    }
    let crash = report.crash_clusters().next().expect("the seeded EIO-on-close crash is found");
    assert_eq!(crash.function.as_str(), "close");
    assert_eq!(crash.example.errno, Some(5), "the undocumented EIO");
    assert!(
        (report.cases_executed as usize) * 4 <= exhaustive,
        "adaptive exploration stays within a quarter of the exhaustive budget"
    );

    // Snapshot the full exploration state; a later process resumes from the
    // XML with `Lfi::resume_exploration` and continues deterministically.
    let store = explorer.store();
    let xml = store.to_xml();
    println!("\nexploration store: {} bytes of XML (round-trips losslessly)", xml.len());
    assert_eq!(ExplorationStore::from_xml(&xml).unwrap(), store);
    let resumed = lfi.resume_exploration(&store, &["libc.so.6"]).unwrap();
    println!(
        "resumed explorer: batch index {}, {} cells still on the frontier",
        resumed.batch_index(),
        resumed.frontier_len(),
    );
}
