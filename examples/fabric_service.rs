//! The campaign fabric as a long-running service: three tenants share one
//! work-stealing worker fleet — the §6.1 Pidgin login and MySQL suite from
//! the apps registry plus an explore-style sweep of a log-structured writer
//! — while a wire client watches over TCP and every job's state stays
//! checkpointable as a resumable `ExplorationStore`.
//!
//! Run with `cargo run --example fabric_service`.

use std::time::Duration;

use lfi::apps::workloads;
use lfi::controller::FnWorkload;
use lfi::explore::OutcomeClass;
use lfi::fabric::{FabricClient, JobEventKind, JobId, JobSpec};
use lfi::runtime::{ExitStatus, NativeLibrary, Process, Signal};
use lfi::scenario::{FaultAction, Plan, PlanEntry, Trigger};
use lfi::Lfi;

fn writer_setup() -> Process {
    let mut process = Process::new();
    process.load(
        NativeLibrary::builder("libc.so.6")
            .function("open", |_| 3)
            .function("write", |ctx| ctx.arg(2))
            .function("fsync", |_| 0)
            .function("close", |_| 0)
            .build(),
    );
    process
}

/// The log-structured writer from the explore example: survives documented
/// failures, dies on the undocumented EIO from `close`.
fn writer_run(process: &mut Process) -> ExitStatus {
    if process.call("open", &[0, 0, 0]).unwrap_or(-1) < 0 {
        return ExitStatus::Exited(2);
    }
    for _ in 0..4 {
        if process.call("write", &[3, 0, 64]).unwrap_or(-1) < 0 {
            return ExitStatus::Exited(1);
        }
    }
    if process.call("fsync", &[3]).unwrap_or(-1) < 0 {
        return ExitStatus::Exited(1);
    }
    for _ in 0..2 {
        if process.call("close", &[3]).unwrap_or(-1) < 0 {
            if process.state().errno() == 5 {
                return ExitStatus::Crashed(Signal::Segv);
            }
            return ExitStatus::Exited(1);
        }
    }
    ExitStatus::Exited(0)
}

/// One fault cell per `(function, ordinal)` pair, all with the same action.
fn sweep(function: &str, ordinals: std::ops::RangeInclusive<u64>, retval: i64, errno: i64) -> Vec<PlanEntry> {
    ordinals
        .map(|ordinal| PlanEntry {
            function: function.into(),
            trigger: Trigger::on_call(ordinal),
            action: FaultAction::return_value(retval).with_errno(errno),
        })
        .collect()
}

fn plan_of(entries: Vec<PlanEntry>) -> Plan {
    entries.into_iter().fold(Plan::new(), Plan::entry)
}

fn main() {
    // The fleet: four workers, the apps registry plus the local writer.
    let fabric = Lfi::new()
        .fabric()
        .workers(4)
        .registry(workloads::registry())
        .register(FnWorkload::new("log-writer", writer_setup, writer_run))
        .build();
    println!("fabric up: workloads {:?}", fabric.workload_names());

    // Three tenants, submitted back to back; the deficit scheduler
    // interleaves their leases instead of running them in order.
    let pidgin = fabric
        .submit(JobSpec::new("pidgin-eintr", "pidgin-login", plan_of(sweep("write", 1..=4, -1, 4))))
        .expect("pidgin-login is registered");
    let mysql = fabric
        .submit(
            JobSpec::new("mysql-enomem", "mysql-suite", plan_of(sweep("malloc", 21..=26, 0, 12)))
                .weight(2) // the long suite gets a double share
                .halt_on_crash(),
        )
        .expect("mysql-suite is registered");
    let writer = {
        let mut entries = sweep("open", 1..=1, -1, 13);
        entries.extend(sweep("write", 1..=4, -1, 5));
        entries.extend(sweep("fsync", 1..=1, -1, 5));
        entries.extend(sweep("close", 1..=2, -1, 5));
        fabric
            .submit(JobSpec::new("writer-sweep", "log-writer", plan_of(entries)).lease_batch(3))
            .expect("log-writer is registered")
    };
    let jobs: [(JobId, &str); 3] = [(pidgin, "pidgin-eintr"), (mysql, "mysql-enomem"), (writer, "writer-sweep")];

    // Tail every job's event stream (cursor-polled, so nothing is missed or
    // re-read) until all three are terminal.
    let mut cursors = [0u64; 3];
    let mut quiet = [0usize; 3];
    loop {
        let mut all_terminal = true;
        for (slot, (job, label)) in jobs.iter().enumerate() {
            let (next, events) = fabric.events(*job, cursors[slot], 64).expect("submitted job");
            cursors[slot] = next;
            for event in events {
                match event.kind {
                    JobEventKind::State(state) => println!("[{label}] -> {state}"),
                    JobEventKind::Finished { case, outcome, .. } if outcome != OutcomeClass::Success => {
                        println!("[{label}] {case}: {outcome}");
                    }
                    JobEventKind::Requeued { cells } => println!("[{label}] {cells} cells requeued"),
                    _ => quiet[slot] += 1,
                }
            }
            all_terminal &= fabric.status(*job).expect("submitted job").state.is_terminal();
        }
        if all_terminal {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    println!("(plus {} quieter events across the three streams)", quiet.iter().sum::<usize>());

    // A wire client sees the same state over plain TCP.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
    let guard = fabric.serve_tcp(listener).expect("server thread");
    let mut client = FabricClient::tcp(guard.addr()).expect("connect");
    println!("\n== status over tcp ({}) ==", guard.addr());
    for (job, name, state) in client.jobs().expect("job listing") {
        let snapshot = client.status(job).expect("status");
        println!(
            "  job {job} {name}: {state}, {}/{} cells finished, {} crashes, {} clusters",
            snapshot.progress.finished, snapshot.cases, snapshot.progress.crashes, snapshot.clusters,
        );
    }
    let checkpoint = client.checkpoint(writer).expect("checkpoint over the wire");
    println!(
        "writer-sweep checkpoint: {} executed / {} frontier cells, {} bytes of resumable XML",
        checkpoint.executed.len(),
        checkpoint.frontier.len(),
        checkpoint.to_xml().len(),
    );
    guard.stop();

    // Drain the fleet and fold every tenant's final report.
    println!("\n== final reports ==");
    for report in fabric.drain() {
        println!(
            "  {} ({}): {}/{} executed, {} triggered, {} crashes, {} failures, {} skipped",
            report.name,
            report.state,
            report.coverage.executed,
            report.coverage.universe,
            report.coverage.triggered,
            report.coverage.crashes,
            report.coverage.failures,
            report.coverage.skipped,
        );
        for cluster in &report.clusters {
            println!(
                "    {} x{} via {}() (call #{}, errno {:?}) — first seen in {}",
                cluster.outcome,
                cluster.count,
                cluster.function,
                cluster.example.call_ordinal,
                cluster.example.errno,
                cluster.example_case,
            );
        }
    }
}
