//! Profile the corpus libc against the synthetic kernel image and show what
//! the paper's §3.3 shows: the `close` fault profile (return value -1 with
//! several errno alternatives, including the EIO value missing from BSD man
//! pages) and the other documentation mismatches.
//!
//! Run with `cargo run --example profile_library`.

use lfi::core::experiments;
use lfi::corpus::{build_kernel, build_libc_scaled, libc_errno_documentation};
use lfi::isa::Platform;
use lfi::profiler::{Profiler, ProfilerOptions};

fn main() {
    let platform = Platform::LinuxX86;
    let libc = build_libc_scaled(platform, 120);

    let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
    profiler.add_library(libc.compiled.object.clone());
    profiler.set_kernel(build_kernel(platform));

    let report = profiler.profile_library("libc.so.6").expect("libc profiles");
    println!(
        "profiled {} exported functions ({} bytes of text) in {:.2} ms; longest propagation chain: {} hops",
        report.stats.functions_analyzed,
        report.stats.code_size_bytes,
        report.stats.duration.as_secs_f64() * 1000.0,
        report.stats.max_propagation_hops,
    );

    // A second call replays the shared AnalysisDb: no disassembly, every
    // resolution served from the memo.
    let warm = profiler.profile_library("libc.so.6").expect("libc profiles");
    assert_eq!(warm.profile, report.profile);
    println!(
        "warm repeat in {:.2} ms: {} resolution-cache hits, {} disassemblies",
        warm.stats.duration.as_secs_f64() * 1000.0,
        warm.stats.resolution_cache_hits,
        warm.stats.disasm_cache_misses,
    );

    // The §3.3 close() snippet.
    let close = report.profile.function("close").expect("close is exported");
    println!("\n== close() fault profile ==");
    for error in &close.error_returns {
        println!("  retval {}", error.retval);
        for effect in &error.side_effects {
            println!("    side effect: {} {}@{:#x} = {}", effect.kind, effect.module, effect.offset, effect.value);
        }
    }
    println!("\nBSD-style documentation for close(): {:?}", libc_errno_documentation().get("close").unwrap());

    // The doc-mismatch sweep (close/EIO, modify_ldt/ENOMEM, htmlParseDocument/1).
    let findings = experiments::doc_mismatches(1);
    println!("\n{}", experiments::render_doc_mismatches(&findings));

    // And the profile itself, as XML, for two functions.
    let mut narrowed = report.profile.clone();
    narrowed.retain_functions(&["close", "read"]);
    println!("== profile excerpt (XML) ==\n{}", narrowed.to_xml());
}
