//! Quickstart: the full LFI pipeline on a toy library and application.
//!
//! 1. build a synthetic shared library (`libdemo.so`);
//! 2. profile its binary to discover error return values and errno side
//!    effects;
//! 3. auto-generate an exhaustive fault scenario;
//! 4. package the application under test as a named `Workload` and start
//!    the campaign as a *streaming session*: one test case per generated
//!    fault, each on its own simulated process with a synthesized
//!    interceptor preloaded, with `CaseEvent`s printed live as the worker
//!    pool produces them;
//! 5. collapse the remaining stream into the campaign report and print a
//!    replay script.
//!
//! Run with `cargo run --example quickstart`.

use lfi::asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
use lfi::controller::{CaseEvent, FnWorkload};
use lfi::isa::Platform;
use lfi::runtime::{ExitStatus, NativeLibrary, Process};
use lfi::scenario::generator::Exhaustive;
use lfi::Lfi;

fn main() {
    // --- Step 1: the "target application's shared library" -----------------
    let compiled = LibraryCompiler::new().compile(
        &LibrarySpec::new("libdemo.so", Platform::LinuxX86)
            .function(
                FunctionSpec::scalar("demo_read", 3)
                    .success(0)
                    .fault(FaultSpec::returning(-1).with_errno(5))
                    .fault(FaultSpec::returning(-2).with_errno(4)),
            )
            .function(
                FunctionSpec::pointer("demo_alloc", 1)
                    .success(0x4000)
                    .fault(FaultSpec::returning(0).with_errno(12)),
            ),
    );

    // --- Step 2: profile the binary ----------------------------------------
    let mut lfi = Lfi::new();
    lfi.add_library(compiled.object);
    let report = lfi.profile("libdemo.so").expect("profiling succeeds");
    println!(
        "== fault profile ({} functions, {} faults) ==",
        report.profile.function_count(),
        report.profile.total_faults()
    );
    println!("{}", report.profile.to_xml());

    // --- Step 3: generate a fault scenario ----------------------------------
    let plan = lfi.exhaustive_scenario(&["libdemo.so"]).expect("scenario generation succeeds");
    println!("== exhaustive scenario ({} triggers) ==", plan.len());
    println!("{}", plan.to_xml());

    // --- Step 4: the application under test, as a first-class Workload ------
    // `setup` is the paper's start script (a fresh process per test case);
    // `run` exercises it.  The same object could be registered in a
    // `WorkloadRegistry` and looked up by name.
    let runtime = NativeLibrary::builder("libdemo.so")
        .function("demo_read", |ctx| ctx.arg(2))
        .constant("demo_alloc", 0x4000)
        .build();
    let workload = FnWorkload::new(
        "six-requests",
        move || {
            let mut process = Process::new();
            process.load(runtime.clone());
            process
        },
        |process| {
            // A tiny "application": six requests against the library.
            let mut failures = 0;
            for request in 0..6 {
                if process.call("demo_read", &[3, 0, 64 + request]).unwrap_or(-1) < 0 {
                    failures += 1;
                }
                if process.call("demo_alloc", &[64]).unwrap_or(0) == 0 {
                    failures += 1;
                }
            }
            if failures > 0 {
                ExitStatus::Exited(1)
            } else {
                ExitStatus::Exited(0)
            }
        },
    );

    // --- Step 5: stream the campaign, then collapse it into the report ------
    let mut run = lfi
        .campaign(&Exhaustive, &["libdemo.so"])
        .expect("campaign construction succeeds")
        .parallelism(2)
        .start(workload);
    println!("== live case events ({} cases scheduled) ==", run.case_count());
    for event in run.by_ref() {
        match event {
            CaseEvent::Started { index, name } => println!("  case {index} started: {name}"),
            CaseEvent::Injection { index, record } => println!(
                "  case {index} injected retval {:?} into {} (call #{})",
                record.retval,
                record.function_name(),
                record.call_number
            ),
            CaseEvent::Outcome { index, outcome } => println!("  case {index} finished: {}", outcome.status),
            CaseEvent::Skipped { index, name, reason } => println!("  case {index} skipped ({reason:?}): {name}"),
        }
    }
    let snapshot = run.snapshot();
    println!("progress: {}/{} finished, {} injections", snapshot.finished, run.case_count(), snapshot.injections);

    let report = run.into_report();
    println!("== campaign report ==\n{}", report.to_text());
    let first_failure = report.failures().next().cloned();
    if let Some(outcome) = first_failure {
        println!("== replay script for {} ==\n{}", outcome.name, outcome.replay.to_xml());
    }

    // --- Step 6: cancellation keeps the counters honest ---------------------
    // A run cancelled mid-flight may have delivered few (or no) outcome
    // events, but the report's progress snapshot still carries the
    // authoritative injection count — `to_text` and `total_injections`
    // surface it even when the outcome list is short.
    let runtime = NativeLibrary::builder("libdemo.so")
        .function("demo_read", |ctx| ctx.arg(2))
        .constant("demo_alloc", 0x4000)
        .build();
    let mut run =
        lfi.campaign(&Exhaustive, &["libdemo.so"])
            .expect("campaign construction succeeds")
            .start(FnWorkload::new(
                "cancelled-midway",
                move || {
                    let mut process = Process::new();
                    process.load(runtime.clone());
                    process
                },
                |process| match process.call("demo_read", &[3, 0, 64]) {
                    Ok(n) if n >= 0 => ExitStatus::Exited(0),
                    _ => ExitStatus::Exited(1),
                },
            ));
    let cancel = run.cancel_handle();
    for event in run.by_ref() {
        if matches!(event, CaseEvent::Injection { .. }) {
            cancel.cancel();
            break;
        }
    }
    let cancelled = run.into_report();
    println!(
        "== cancelled run ==\n{} outcome(s) delivered, yet the report counts {} injection(s):",
        cancelled.outcomes.len(),
        cancelled.total_injections()
    );
    println!("{}", cancelled.to_text());
    assert!(cancelled.total_injections() >= 1, "the progress snapshot survives cancellation");
}
