//! Quickstart: the full LFI pipeline on a toy library and application.
//!
//! 1. build a synthetic shared library (`libdemo.so`);
//! 2. profile its binary to discover error return values and errno side
//!    effects;
//! 3. auto-generate an exhaustive fault scenario;
//! 4. synthesize an interceptor library and preload it into a simulated
//!    process;
//! 5. run a tiny "application" against it and print the injection log and the
//!    replay script.
//!
//! Run with `cargo run --example quickstart`.

use lfi::asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
use lfi::controller::Injector;
use lfi::isa::Platform;
use lfi::runtime::{NativeLibrary, Process};
use lfi::Lfi;

fn main() {
    // --- Step 1: the "target application's shared library" -----------------
    let compiled = LibraryCompiler::new().compile(
        &LibrarySpec::new("libdemo.so", Platform::LinuxX86)
            .function(
                FunctionSpec::scalar("demo_read", 3)
                    .success(0)
                    .fault(FaultSpec::returning(-1).with_errno(5))
                    .fault(FaultSpec::returning(-2).with_errno(4)),
            )
            .function(FunctionSpec::pointer("demo_alloc", 1).success(0x4000).fault(FaultSpec::returning(0).with_errno(12))),
    );

    // --- Step 2: profile the binary ----------------------------------------
    let mut lfi = Lfi::new();
    lfi.add_library(compiled.object);
    let report = lfi.profile("libdemo.so").expect("profiling succeeds");
    println!("== fault profile ({} functions, {} faults) ==", report.profile.function_count(), report.profile.total_faults());
    println!("{}", report.profile.to_xml());

    // --- Step 3: generate a fault scenario ----------------------------------
    let plan = lfi.exhaustive_scenario(&["libdemo.so"]).expect("scenario generation succeeds");
    println!("== exhaustive scenario ({} triggers) ==", plan.len());
    println!("{}", plan.to_xml());

    // --- Step 4: synthesize and preload the interceptor ---------------------
    let injector = Injector::new(plan);
    let mut process = Process::new();
    // The "original library", as the dynamic linker would load it.
    process.load(
        NativeLibrary::builder("libdemo.so")
            .function("demo_read", |ctx| ctx.arg(2))
            .constant("demo_alloc", 0x4000)
            .build(),
    );
    process.preload(injector.synthesize_interceptor());

    // --- Step 5: run the application under injection ------------------------
    let mut successes = 0;
    let mut handled_errors = 0;
    for request in 0..6 {
        let result = process.call("demo_read", &[3, 0, 64 + request]).expect("symbol resolves");
        if result >= 0 {
            successes += 1;
        } else {
            handled_errors += 1;
            println!("request {request}: demo_read failed with {result}, errno {}", process.state().errno());
        }
    }
    println!("== workload finished: {successes} successes, {handled_errors} injected failures ==");
    println!("== injection log ==\n{}", injector.log().to_text());
    println!("== replay script ==\n{}", injector.replay_plan().to_xml());
}
