//! Quickstart: the full LFI pipeline on a toy library and application.
//!
//! 1. build a synthetic shared library (`libdemo.so`);
//! 2. profile its binary to discover error return values and errno side
//!    effects;
//! 3. auto-generate an exhaustive fault scenario;
//! 4. run a campaign — one test case per generated fault, each on its own
//!    simulated process with a synthesized interceptor preloaded — with an
//!    observer printing every injection as it is reported;
//! 5. print the campaign report and a replay script.
//!
//! Run with `cargo run --example quickstart`.

use lfi::asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
use lfi::controller::{CampaignObserver, InjectionRecord, TestCase};
use lfi::isa::Platform;
use lfi::runtime::{ExitStatus, NativeLibrary, Process};
use lfi::scenario::generator::Exhaustive;
use lfi::Lfi;

/// Prints every injection the campaign reports.
struct PrintInjections;

impl CampaignObserver for PrintInjections {
    fn on_injection(&self, case: &TestCase, record: &InjectionRecord) {
        println!(
            "  [{}] injected retval {:?} into {} (call #{})",
            case.name, record.retval, record.function, record.call_number
        );
    }
}

fn main() {
    // --- Step 1: the "target application's shared library" -----------------
    let compiled = LibraryCompiler::new().compile(
        &LibrarySpec::new("libdemo.so", Platform::LinuxX86)
            .function(
                FunctionSpec::scalar("demo_read", 3)
                    .success(0)
                    .fault(FaultSpec::returning(-1).with_errno(5))
                    .fault(FaultSpec::returning(-2).with_errno(4)),
            )
            .function(
                FunctionSpec::pointer("demo_alloc", 1)
                    .success(0x4000)
                    .fault(FaultSpec::returning(0).with_errno(12)),
            ),
    );

    // --- Step 2: profile the binary ----------------------------------------
    let mut lfi = Lfi::new();
    lfi.add_library(compiled.object);
    let report = lfi.profile("libdemo.so").expect("profiling succeeds");
    println!(
        "== fault profile ({} functions, {} faults) ==",
        report.profile.function_count(),
        report.profile.total_faults()
    );
    println!("{}", report.profile.to_xml());

    // --- Step 3: generate a fault scenario ----------------------------------
    let plan = lfi.exhaustive_scenario(&["libdemo.so"]).expect("scenario generation succeeds");
    println!("== exhaustive scenario ({} triggers) ==", plan.len());
    println!("{}", plan.to_xml());

    // --- Steps 4+5: profile -> scenario -> campaign -> report, one chain ----
    // The "original library", as the dynamic linker would load it.
    let runtime = NativeLibrary::builder("libdemo.so")
        .function("demo_read", |ctx| ctx.arg(2))
        .constant("demo_alloc", 0x4000)
        .build();
    let report = lfi
        .campaign(&Exhaustive, &["libdemo.so"])
        .expect("campaign construction succeeds")
        .observer(PrintInjections)
        .parallelism(2)
        .run(
            move || {
                let mut process = Process::new();
                process.load(runtime.clone());
                process
            },
            |process| {
                // A tiny "application": six requests against the library.
                let mut failures = 0;
                for request in 0..6 {
                    if process.call("demo_read", &[3, 0, 64 + request]).unwrap_or(-1) < 0 {
                        failures += 1;
                    }
                    if process.call("demo_alloc", &[64]).unwrap_or(0) == 0 {
                        failures += 1;
                    }
                }
                if failures > 0 {
                    ExitStatus::Exited(1)
                } else {
                    ExitStatus::Exited(0)
                }
            },
        );

    println!("== campaign report ==\n{}", report.to_text());
    let first_failure = report.failures().next().cloned();
    if let Some(outcome) = first_failure {
        println!("== replay script for {} ==\n{}", outcome.name, outcome.replay.to_xml());
    }
}
