//! Offline API-compatible shim of the `criterion` crate (see
//! `vendor/README.md`): a minimal timing harness with the group / bencher /
//! id surface this workspace's benches use.  No statistics, plots or
//! baselines — each benchmark runs a warm-up pass and a small number of
//! timed samples and prints the mean time per iteration.
//!
//! Two environment variables hook the shim into CI:
//!
//! * `LFI_BENCH_FAST` — any value but `0` runs a single timed sample per
//!   benchmark ("fast mode", for smoke jobs that only need the harness to
//!   run end to end);
//! * `LFI_BENCH_JSON` — a file path; every benchmark appends one JSON line
//!   `{"bench":"group/label","ns_per_iter":…,"iterations":…}` to it, so a
//!   pipeline can assemble a machine-readable `BENCH_*.json` from a whole
//!   `cargo bench --workspace` run (bench binaries are separate processes,
//!   hence append).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Conversion accepted wherever a benchmark id is expected.
pub trait IntoBenchmarkId {
    /// The display label of the benchmark.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measured code.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, running one warm-up call plus the configured number
    /// of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let _ = routine(); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.samples {
            let _ = routine();
        }
        self.elapsed = start.elapsed();
        self.iterations = self.samples as u64;
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        // The real crate enforces a minimum of 10 *statistical* samples; the
        // shim just runs the routine `samples.min(10)` times to keep the
        // heavyweight experiment benches fast.
        self.samples = configured_samples(samples);
        self
    }

    /// Accepted for API parity; the shim has a fixed measurement strategy.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Accepted for API parity; the shim warms up with a single call.
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        let mut bencher = Bencher { samples: self.samples, elapsed: Duration::ZERO, iterations: 0 };
        f(&mut bencher);
        report(&self.name, &label, &bencher);
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl IntoBenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into_label();
        let mut bencher = Bencher { samples: self.samples, elapsed: Duration::ZERO, iterations: 0 };
        f(&mut bencher, input);
        report(&self.name, &label, &bencher);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The effective sample count: `LFI_BENCH_FAST` (any value but `0`) forces a
/// single timed sample, otherwise the requested count clamped to the shim's
/// 1..=10 range.
fn configured_samples(requested: usize) -> usize {
    if std::env::var("LFI_BENCH_FAST").is_ok_and(|v| v != "0") {
        1
    } else {
        requested.clamp(1, 10)
    }
}

/// One machine-readable result line (the `LFI_BENCH_JSON` format).
fn json_line(group: &str, label: &str, ns_per_iter: f64, iterations: u64) -> String {
    let escape = |text: &str| text.replace('\\', "\\\\").replace('"', "\\\"");
    format!(
        "{{\"bench\":\"{}/{}\",\"ns_per_iter\":{ns_per_iter:.1},\"iterations\":{iterations}}}\n",
        escape(group),
        escape(label),
    )
}

fn report(group: &str, label: &str, bencher: &Bencher) {
    if bencher.iterations == 0 {
        println!("{group}/{label}: no measurement (iter was not called)");
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
    println!("{group}/{label}: {:.3} ms/iter ({} iterations)", per_iter * 1e3, bencher.iterations);
    if let Ok(path) = std::env::var("LFI_BENCH_JSON") {
        if !path.is_empty() {
            let line = json_line(group, label, per_iter * 1e9, bencher.iterations);
            let written = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut file| std::io::Write::write_all(&mut file, line.as_bytes()));
            if let Err(error) = written {
                eprintln!("LFI_BENCH_JSON: cannot append to {path}: {error}");
            }
        }
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: configured_samples(10), _criterion: self }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// An opaque value barrier (prevents the optimizer from deleting the
/// benchmarked computation).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark entry point running each target function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_benchmarks() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("demo");
        group.sample_size(10);
        group.measurement_time(Duration::from_secs(1));
        group.warm_up_time(Duration::from_millis(10));
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| b.iter(|| black_box(n) * 2));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &n| b.iter(|| black_box(n) * 2));
        group.finish();
        // one warm-up + ten samples
        assert_eq!(runs, 11);
    }

    #[test]
    fn json_lines_are_valid_and_escaped() {
        assert_eq!(
            json_line("dispatch_hot_path", "triggered", 109.95, 10),
            "{\"bench\":\"dispatch_hot_path/triggered\",\"ns_per_iter\":110.0,\"iterations\":10}\n"
        );
        let line = json_line("g\"r", "l\\b", 1.0, 1);
        assert!(line.contains("g\\\"r/l\\\\b"));
    }

    #[test]
    fn sample_counts_are_clamped() {
        // With LFI_BENCH_FAST unset (the test environment), the shim clamp
        // applies.
        assert_eq!(configured_samples(0), 1);
        assert_eq!(configured_samples(5), 5);
        assert_eq!(configured_samples(500), 10);
    }
}
