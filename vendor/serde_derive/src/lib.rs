//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! The workspace only uses the derives as annotations (no code in the tree
//! has `Serialize`/`Deserialize` bounds), so expanding to nothing is
//! sufficient and keeps the shim free of a `syn` dependency.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and emits
/// no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
