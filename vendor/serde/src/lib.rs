//! Offline API-compatible shim of the `serde` crate (see
//! `vendor/README.md`): marker traits plus no-op derive macros.  Nothing in
//! this workspace serializes through serde — the derives only annotate data
//! types for API parity with the real crate.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
