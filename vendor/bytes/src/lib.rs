//! Offline API-compatible shim of the `bytes` crate (see
//! `vendor/README.md`): `Bytes`/`BytesMut` over `Vec<u8>` with the
//! little-endian `Buf`/`BufMut` accessors this workspace uses.

#![forbid(unsafe_code)]

/// Read-side cursor interface (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread bytes, without advancing the cursor (zero-copy reads).
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.  Panics when too few bytes
    /// remain, like the real crate.
    fn advance(&mut self, cnt: usize);
    /// Copies `dst.len()` bytes out, advancing the cursor.  Panics when too
    /// few bytes remain, like the real crate.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }
}

/// Write-side interface (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, value: u16) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, value: u32) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, value: u64) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, value: i64) {
        self.put_slice(&value.to_le_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.to_vec(), pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(self.remaining() >= cnt, "buffer underflow");
        self.pos += cnt;
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// The accumulated bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_the_le_accessors() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_u16_le(0x1234);
        w.put_u32_le(0xdead_beef);
        w.put_u64_le(0x0123_4567_89ab_cdef);
        w.put_i64_le(-42);
        w.put_slice(b"xyz");
        assert_eq!(w.len(), 26);
        assert!(!w.is_empty());

        let mut r = Bytes::copy_from_slice(&w.to_vec());
        assert_eq!(r.remaining(), 26);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_i64_le(), -42);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r = Bytes::copy_from_slice(&[1]);
        let _ = r.get_u32_le();
    }
}
