//! Offline API-compatible shim of the `parking_lot` crate (see
//! `vendor/README.md`): a non-poisoning [`Mutex`] over `std::sync::Mutex`.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, TryLockError};

/// A mutex whose `lock()` returns the guard directly (no poisoning), like
/// `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
        assert!(format!("{m:?}").contains("Mutex"));
    }
}
