//! Offline API-compatible shim of the `rand` crate (see `vendor/README.md`).
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — a different
//! generator than upstream's ChaCha12, so seeded streams differ from real
//! `rand`, but runs remain reproducible for a given seed.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The raw 64-bit generator interface (the `RngCore` analogue).
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the subset of `rand::SeedableRng` this repo uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform value in `[0, bound)` without modulo bias (Lemire-style
/// rejection on the widening multiply).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let low = m as u64;
        // Accept unless low falls below 2^64 mod bound (Lemire's threshold).
        if low >= bound || low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_below(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as $wide).wrapping_add(uniform_below(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_int_range!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing random-value interface (the subset of `rand::Rng` used).
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`; NaN is
    /// treated as 0).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        f64::sample_standard(self) < p
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random selection from slices.
pub mod seq {
    use super::RngCore;

    /// The subset of `rand::seq::SliceRandom` this repo uses.
    pub trait SliceRandom {
        type Item;
        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(super::uniform_below(rng, self.len() as u64) as usize)
            }
        }
    }
}

/// The standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The default seedable generator: xoshiro256++ with SplitMix64 seeding.
    ///
    /// Statistically solid and fast; **not** upstream `rand`'s ChaCha12, so
    /// streams differ from the real crate for identical seeds.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [splitmix64(&mut state), splitmix64(&mut state), splitmix64(&mut state), splitmix64(&mut state)];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..1000).any(|_| rng.gen_bool(f64::NAN)));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(1..=1000u64);
            assert!((1..=1000).contains(&v));
            let i: i64 = rng.gen_range(-400i64..-1);
            assert!((-400..-1).contains(&i));
            let u: usize = rng.gen_range(0..3usize);
            assert!(u < 3);
            let f: f64 = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn choose_is_uniform_ish_and_handles_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        let pool = [10, 20, 30];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*pool.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn f64_standard_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
