//! Offline API-compatible shim of the `proptest` crate (see
//! `vendor/README.md`).
//!
//! Implements the subset this workspace uses: the [`proptest!`] harness
//! macro, [`strategy::Strategy`] with `prop_map`, [`prop_oneof!`], `Just`,
//! range and regex-subset string strategies, tuple strategies, collection /
//! option / sample strategies, and `any::<T>()`.  Cases are sampled from a
//! deterministic per-test RNG; there is **no shrinking** — a failing case
//! panics with the sampled values left to `assert!` messages.

#![forbid(unsafe_code)]

/// Test configuration and the deterministic case RNG.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// RNG for one case of one property, derived from the test path and
        /// the case number so every property gets an independent stream.
        pub fn for_case(test_path: &str, case: u32) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for byte in test_path.bytes() {
                seed ^= u64::from(byte);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample below 0");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and its combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values for property tests.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    /// Boxes a strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    pub fn boxed<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
        Box::new(strategy)
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed strategies (built by `prop_oneof!`).
    pub struct OneOf<V> {
        branches: Vec<BoxedStrategy<V>>,
    }

    impl<V> OneOf<V> {
        /// A strategy choosing uniformly among `branches`.
        pub fn new(branches: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
            OneOf { branches }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let index = rng.below(self.branches.len() as u64) as usize;
            self.branches[index].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty => $wide:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    (self.start as $wide).wrapping_add(rng.below(span) as $wide) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (start as $wide).wrapping_add(rng.below(span + 1) as $wide) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                             i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    // ----- regex-subset string strategies --------------------------------

    /// One piece of a parsed pattern: a fixed set of candidate characters
    /// plus a repetition count range.
    #[derive(Debug, Clone)]
    struct Piece {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Parses the regex subset used as string strategies: literals, `\x`
    /// escapes, `[..]` classes with ranges, and `{m}` / `{m,n}` quantifiers.
    fn parse_pattern(pattern: &str) -> Vec<Piece> {
        let mut pieces = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let set: Vec<char> = match c {
                '\\' => vec![chars.next().unwrap_or('\\')],
                '[' => {
                    let mut set = Vec::new();
                    while let Some(&next) = chars.peek() {
                        if next == ']' {
                            chars.next();
                            break;
                        }
                        let item = chars.next().unwrap_or(']');
                        let item = if item == '\\' { chars.next().unwrap_or('\\') } else { item };
                        if chars.peek() == Some(&'-') {
                            let mut lookahead = chars.clone();
                            lookahead.next();
                            match lookahead.peek() {
                                Some(&end) if end != ']' => {
                                    chars.next();
                                    chars.next();
                                    for code in item as u32..=end as u32 {
                                        if let Some(ch) = char::from_u32(code) {
                                            set.push(ch);
                                        }
                                    }
                                    continue;
                                }
                                _ => {}
                            }
                        }
                        set.push(item);
                    }
                    set
                }
                other => vec![other],
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for inner in chars.by_ref() {
                    if inner == '}' {
                        break;
                    }
                    spec.push(inner);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().unwrap_or(0),
                        hi.trim().parse().unwrap_or_else(|_| lo.trim().parse().unwrap_or(0)),
                    ),
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(!set.is_empty(), "empty character class in pattern {pattern:?}");
            pieces.push(Piece { chars: set, min, max });
        }
        pieces
    }

    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in parse_pattern(self) {
                let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
                for _ in 0..count {
                    out.push(piece.chars[rng.below(piece.chars.len() as u64) as usize]);
                }
            }
            out
        }
    }

    // ----- tuple strategies ----------------------------------------------

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Marker for types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Samples an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index::from_raw(rng.next_u64())
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// The size specification accepted by collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl SizeRange {
        fn sample(self, rng: &mut TestRng) -> usize {
            assert!(self.min < self.max_exclusive, "empty size range");
            self.min + rng.below((self.max_exclusive - self.min) as u64) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange { min: range.start, max_exclusive: range.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { min: exact, max_exclusive: exact + 1 }
        }
    }

    /// Strategy for `Vec<E::Value>` of a size drawn from `size`.
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    /// Generates vectors from an element strategy.
    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy { element, size: size.into() }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<E::Value>`.
    pub struct BTreeSetStrategy<E> {
        element: E,
        size: SizeRange,
    }

    /// Generates ordered sets from an element strategy.  Sizes are
    /// best-effort: duplicate samples are retried a bounded number of times.
    pub fn btree_set<E>(element: E, size: impl Into<SizeRange>) -> BTreeSetStrategy<E>
    where
        E: Strategy,
        E::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<E> Strategy for BTreeSetStrategy<E>
    where
        E: Strategy,
        E::Value: Ord,
    {
        type Value = BTreeSet<E::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<E::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 50 + 100 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Generates ordered maps from key and value strategies.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = self.size.sample(rng);
            let mut map = BTreeMap::new();
            let mut attempts = 0usize;
            while map.len() < target && attempts < target * 50 + 100 {
                map.insert(self.key.sample(rng), self.value.sample(rng));
                attempts += 1;
            }
            map
        }
    }
}

/// Option strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `Some` (3 in 4) or `None`.
    pub struct OptionStrategy<S>(S);

    /// Generates optional values from an inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// Index sampling (`prop::sample::Index`).
pub mod sample {
    /// An opaque value that projects onto any collection length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn from_raw(raw: u64) -> Self {
            Index(raw)
        }

        /// This index projected onto a collection of `len` elements
        /// (`len` must be non-zero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection`, `prop::sample`, ...).
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Property assertion (no shrinking in this shim; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// The property-test harness macro: declares `#[test]` functions whose
/// arguments are sampled from strategies for a configurable number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_patterns_match_their_shape() {
        let mut rng = TestRng::for_case("shape", 0);
        for _ in 0..100 {
            let s = Strategy::sample(&"lib[a-z]{2,8}\\.so", &mut rng);
            assert!(s.starts_with("lib") && s.ends_with(".so"), "{s:?}");
            let stem = &s[3..s.len() - 3];
            assert!((2..=8).contains(&stem.len()), "{s:?}");
            assert!(stem.chars().all(|c| c.is_ascii_lowercase()));

            let t = Strategy::sample(&"[a-z_][a-z0-9_]{0,12}", &mut rng);
            assert!(!t.is_empty() && t.len() <= 13, "{t:?}");
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strategy = prop_oneof![(0u8..4).prop_map(|v| v as i64), Just(-1i64),];
        let mut rng = TestRng::for_case("compose", 1);
        let mut saw_negative = false;
        for _ in 0..200 {
            let v = Strategy::sample(&strategy, &mut rng);
            assert!(v == -1 || (0..4).contains(&v));
            saw_negative |= v == -1;
        }
        assert!(saw_negative);
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::for_case("sizes", 2);
        for _ in 0..50 {
            let v = Strategy::sample(&crate::collection::vec(0i64..10, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let s = Strategy::sample(&crate::collection::btree_set(-400i64..-1, 1..6), &mut rng);
            assert!((1..6).contains(&s.len()));
            let m = Strategy::sample(&crate::collection::btree_map("[a-z]{3,6}", 0u64..9, 1..4), &mut rng);
            assert!((1..4).contains(&m.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The harness macro itself: samples land in range, config is
        /// honored, and tuple + option strategies destructure.
        #[test]
        fn harness_samples_in_range(
            x in 1u64..=1000,
            pair in (0u32..3, prop::option::of(-64i64..64)),
            index in any::<prop::sample::Index>(),
        ) {
            prop_assert!((1..=1000).contains(&x));
            let (tag, maybe) = pair;
            prop_assert!(tag < 3);
            if let Some(v) = maybe {
                prop_assert!((-64..64).contains(&v));
            }
            prop_assert!(index.index(7) < 7);
        }
    }
}
