//! Arena restore identity: a process checked out of a [`ProcessArena`],
//! run through a fault-injection case and returned must be observably
//! identical to a freshly built process — the same call log, the same
//! replay-plan XML from an identical case, the same errno and library
//! list — including when the previous case panicked mid-run.
//!
//! This is the integration-level pin on the snapshot/restore determinism
//! contract: campaign workers drawing from one arena must see processes
//! indistinguishable from per-case rebuilds, or fixed-seed campaign results
//! would depend on pool history.

use lfi::apps::{base_process, new_world};
use lfi::controller::Injector;
use lfi::runtime::{PreparedProcess, Process, ProcessArena};
use lfi::scenario::{FaultAction, Plan, PlanEntry, Trigger};

fn plan() -> Plan {
    Plan::new().entry(PlanEntry {
        function: "read".into(),
        trigger: Trigger::on_call(2),
        action: FaultAction::return_value(-1).with_errno(5),
    })
}

fn arena() -> ProcessArena {
    ProcessArena::new(|| {
        let world = new_world();
        let process = base_process(&world, false);
        PreparedProcess::with_reset(process, move |_| world.lock().reset())
    })
}

/// Everything a campaign can observe about one case on one process.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    libraries: Vec<String>,
    results: Vec<i64>,
    errno: i64,
    call_log: Vec<&'static str>,
    replay_xml: String,
}

/// Runs the reference case — a scripted call mix under the fixed fault
/// plan, with call logging on — and collects every observable.
fn run_case(process: &mut Process) -> Fingerprint {
    let libraries: Vec<String> = process.loaded_libraries().map(str::to_owned).collect();
    let injector = Injector::new(plan());
    process.preload(injector.synthesize_interceptor());
    process.set_call_log_enabled(true);
    let mut results = Vec::new();
    for i in 0..4 {
        results.push(process.call("read", &[3, 0, i]).unwrap());
    }
    results.push(process.call("pipe", &[]).unwrap());
    Fingerprint {
        libraries,
        results,
        errno: process.state().errno(),
        call_log: process.state().call_log_names(),
        replay_xml: injector.log().replay_plan().to_xml(),
    }
}

fn fresh_fingerprint() -> Fingerprint {
    let world = new_world();
    let mut process = base_process(&world, false);
    run_case(&mut process)
}

#[test]
fn arena_checkout_is_identical_to_a_fresh_build() {
    let arena = arena();

    // Dirty the pooled process first: a different case, different faults,
    // leftover errno, call log and file descriptors.
    {
        let mut process = arena.checkout();
        let injector = Injector::new(Plan::new().entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::with_probability(1.0),
            action: FaultAction::return_value(-7).with_errno(9),
        }));
        process.preload(injector.synthesize_interceptor());
        process.set_call_log_enabled(true);
        for _ in 0..9 {
            let _ = process.call("read", &[3, 0, 1]);
        }
        let _ = process.call("pipe", &[]);
    }

    let mut pooled = arena.checkout();
    let restored = run_case(&mut pooled);
    drop(pooled);
    assert_eq!(restored, fresh_fingerprint());
    assert_eq!(arena.stats().builds, 1, "the arena restored rather than rebuilt");
}

#[test]
fn arena_checkout_is_identical_after_a_panicked_case() {
    let arena = arena();

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut process = arena.checkout();
        let injector = Injector::new(plan());
        process.preload(injector.synthesize_interceptor());
        process.set_call_log_enabled(true);
        let _ = process.call("read", &[3, 0, 1]);
        let _ = process.call("read", &[3, 0, 2]);
        panic!("case blew up mid-run");
    }));
    assert!(result.is_err(), "the case must actually have panicked");

    let mut pooled = arena.checkout();
    let restored = run_case(&mut pooled);
    drop(pooled);
    assert_eq!(restored, fresh_fingerprint());
    assert_eq!(arena.stats().builds, 1, "the panicked case's process was restored, not rebuilt");
}
