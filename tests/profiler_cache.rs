//! Integration tests for the shared concurrent analysis cache (`AnalysisDb`),
//! the function-granular worker pool, and the facade's `ProfileStore`:
//!
//! * parallel `profile_all` over the shared cache is byte-identical to
//!   sequential, cold, single-library profiling;
//! * shared dependencies (libc, the kernel image) are disassembled exactly
//!   once per batch and never again while their bytes are unchanged;
//! * warm repeats replay memoized resolutions;
//! * the facade's `ProfileStore` survives an XML round-trip and replays
//!   across facade instances.

use lfi::asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
use lfi::corpus::{build_kernel, build_libc_scaled};
use lfi::isa::Platform;
use lfi::objfile::SharedObject;
use lfi::profile::ProfileStore;
use lfi::profiler::Profiler;
use lfi::Lfi;

/// A small "system": three app libraries that all import from the corpus
/// libc (the shared dependency), plus the kernel image behind it.
fn system_libraries() -> Vec<SharedObject> {
    let libc = build_libc_scaled(Platform::LinuxX86, 40).compiled.object;
    let mut libraries = vec![libc];
    for (name, ret) in [("libapp.so", -11), ("libnet.so", -12), ("libui.so", -13)] {
        let spec = LibrarySpec::new(name, Platform::LinuxX86)
            .dependency("libc.so.6")
            .import("close", Some("libc.so.6"))
            .function(FunctionSpec::scalar("api_entry", 2).success(0).fault(FaultSpec::via_callee("close")))
            .function(FunctionSpec::scalar("api_fail", 1).success(0).fault(FaultSpec::returning(ret)));
        libraries.push(LibraryCompiler::new().compile(&spec).object);
    }
    libraries
}

fn profiler_with(libraries: &[SharedObject]) -> Profiler {
    let mut profiler = Profiler::new();
    for library in libraries {
        profiler.add_library(library.clone());
    }
    profiler.set_kernel(build_kernel(Platform::LinuxX86));
    profiler
}

#[test]
fn parallel_profile_all_matches_sequential_cold_profiling() {
    let libraries = system_libraries();
    let shared = profiler_with(&libraries);
    let parallel = shared.profile_all().unwrap();

    for report in &parallel {
        // Each library's profile must be byte-identical to what a fresh,
        // cold, single-library profiler produces for it.
        let cold = profiler_with(&libraries);
        let sequential = cold.profile_library(&report.profile.library).unwrap();
        assert_eq!(report.profile.to_xml(), sequential.profile.to_xml(), "{} diverged", report.profile.library);
    }

    // And a second profile_all — now fully warm — is byte-identical too.
    let warm = shared.profile_all().unwrap();
    for (a, b) in parallel.iter().zip(&warm) {
        assert_eq!(a.profile.to_xml(), b.profile.to_xml());
    }
}

#[test]
fn shared_dependencies_are_disassembled_once() {
    let libraries = system_libraries();
    let count = libraries.len();
    let profiler = profiler_with(&libraries);

    let cold = profiler.profile_all().unwrap();
    let db = profiler.analysis_db();
    // Every distinct object (the libraries plus the kernel image) was
    // disassembled exactly once for the whole batch, even though three
    // libraries all resolve into libc and libc resolves into the kernel.
    assert_eq!(db.disasm_cache().misses(), count as u64 + 1);
    let cold_misses: u64 = cold.iter().map(|r| r.stats.disasm_cache_misses).sum();
    assert_eq!(cold_misses, count as u64 + 1);

    // A warm repeat performs zero disassemblies and zero fresh resolutions.
    let warm = profiler.profile_all().unwrap();
    for report in &warm {
        assert_eq!(report.stats.disasm_cache_misses, 0, "{} re-disassembled", report.profile.library);
        assert_eq!(report.stats.resolution_cache_misses, 0, "{} re-resolved", report.profile.library);
        assert!(report.stats.resolution_cache_hits > 0);
    }
}

#[test]
fn profile_store_round_trips_across_facades() {
    let libraries = system_libraries();
    let mut lfi = Lfi::new();
    for library in &libraries {
        lfi.add_library(library.clone());
    }
    lfi.set_kernel(build_kernel(Platform::LinuxX86));
    let cold = lfi.profile_all().unwrap();
    assert!(cold.iter().all(|r| !r.stats.served_from_store));

    // Persist the store, load it into a second facade over the same
    // binaries: every profile replays without analysis.
    let xml = lfi.profile_store().to_xml();
    let mut restored = Lfi::new();
    for library in &libraries {
        restored.add_library(library.clone());
    }
    restored.set_kernel(build_kernel(Platform::LinuxX86));
    restored.load_profile_store(ProfileStore::from_xml(&xml).unwrap());
    let replayed = restored.profile_all().unwrap();
    assert!(replayed.iter().all(|r| r.stats.served_from_store));
    assert_eq!(restored.profiler().analysis_db().disasm_cache().misses(), 0);
    for (a, b) in cold.iter().zip(&replayed) {
        assert_eq!(a.profile.to_xml(), b.profile.to_xml());
    }
}
