//! Integration coverage for the campaign fabric: crash-safe lease handoff
//! under a mid-batch worker death, weighted fairness across unequal tenants,
//! the wire protocol over both transports, and checkpoint/restore of a
//! half-finished job into a fresh fabric.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lfi::controller::FnWorkload;
use lfi::explore::ExplorationStore;
use lfi::fabric::{Fabric, JobEventKind, JobSpec, JobState};
use lfi::runtime::{ExitStatus, NativeLibrary, Process};
use lfi::scenario::{FaultAction, Plan, PlanEntry, Trigger};

fn reader_process() -> Process {
    let mut process = Process::new();
    process.load(NativeLibrary::builder("libc.so.6").function("read", |ctx| ctx.arg(2)).build());
    process
}

/// Calls `read` four times; any injected failure exits 1, clean runs exit 0.
fn read_four(process: &mut Process) -> ExitStatus {
    for _ in 0..4 {
        if process.call("read", &[3, 0, 8]).unwrap_or(-1) < 0 {
            return ExitStatus::Exited(1);
        }
    }
    ExitStatus::Exited(0)
}

/// `read` faults at every ordinal in `1..=ordinals` for each given errno:
/// `ordinals * errnos.len()` deterministic cells.
fn read_plan(ordinals: u64, errnos: &[i64]) -> Plan {
    let mut plan = Plan::new();
    for ordinal in 1..=ordinals {
        for &errno in errnos {
            plan = plan.entry(PlanEntry {
                function: "read".into(),
                trigger: Trigger::on_call(ordinal),
                action: FaultAction::return_value(-1).with_errno(errno),
            });
        }
    }
    plan
}

/// The named reader workload, with a panic trap: the `runs`-th workload run
/// panics (once) while `armed` — the fabric's crash boundary sees a worker
/// die mid-lease.
fn flaky_reader(
    armed: bool,
    panic_at: usize,
) -> FnWorkload<impl Fn() -> Process + Send + Sync, impl Fn(&mut Process) -> ExitStatus + Send + Sync> {
    let armed = Arc::new(AtomicBool::new(armed));
    let runs = Arc::new(AtomicUsize::new(0));
    FnWorkload::new("flaky-reader", reader_process, move |process: &mut Process| {
        let n = runs.fetch_add(1, Ordering::SeqCst);
        if n == panic_at && armed.swap(false, Ordering::SeqCst) {
            panic!("simulated worker death mid-lease");
        }
        read_four(process)
    })
}

#[test]
fn killed_worker_loses_no_cell_and_double_counts_none() {
    // 12 cells in leases of 4; the 6th workload run (inside the second
    // lease) kills its worker.  The lease goes unacked, its cells return to
    // the frontier, and the job still completes.
    let run_to_completion = |armed: bool| {
        let fabric = Fabric::builder().workers(1).lease_batch(4).register(flaky_reader(armed, 5)).build();
        let job = fabric
            .submit(JobSpec::new("handoff", "flaky-reader", read_plan(4, &[5, 9, 11])))
            .expect("workload registered");
        assert_eq!(fabric.wait_job(job, Duration::from_secs(60)), Some(JobState::Done));
        let snapshot = fabric.status(job).expect("job exists");
        let report = fabric.report(job).expect("job exists");
        let checkpoint = fabric.checkpoint(job).expect("job exists");
        drop(fabric);
        (snapshot, report, checkpoint.to_xml())
    };

    let (killed_snapshot, killed_report, killed_xml) = run_to_completion(true);
    let (clean_snapshot, clean_report, clean_xml) = run_to_completion(false);

    // The interrupted run really was interrupted...
    assert!(killed_snapshot.requeued >= 1, "the dead worker's lease was requeued");
    assert_eq!(clean_snapshot.requeued, 0);
    assert!(killed_snapshot.progress.started > clean_snapshot.progress.started, "requeued cells re-ran");

    // ...yet no cell was lost or double-counted: coverage, clusters and the
    // serialized checkpoint are byte-identical to the uninterrupted run.
    assert_eq!(killed_report.coverage.universe, 12);
    assert_eq!(killed_report.coverage.executed, 12);
    assert_eq!(killed_report.coverage.triggered, 12);
    assert_eq!(killed_report.coverage.failures, 12);
    assert_eq!(killed_report, clean_report);
    assert_eq!(killed_xml, clean_xml);
}

#[test]
fn small_tenants_are_not_starved_by_large_ones() {
    // A 1000-cell sweep is submitted first and would monopolize a naive
    // FIFO fleet; deficit scheduling interleaves the 10-cell smoke job.
    let fabric = Fabric::builder()
        .workers(2)
        .register(FnWorkload::new("reader", reader_process, read_four))
        .build();
    let big = fabric
        .submit(JobSpec::new("sweep", "reader", read_plan(250, &[5, 9, 11, 22])))
        .expect("workload registered");
    let small = fabric
        .submit(JobSpec::new("smoke", "reader", read_plan(10, &[5])))
        .expect("workload registered");

    assert_eq!(fabric.wait_job(small, Duration::from_secs(60)), Some(JobState::Done));
    let big_progress = fabric.status(big).expect("job exists").progress;
    assert!(
        big_progress.finished < 500,
        "the small job finished while the big one was at {}/1000 — fair shares, not FIFO",
        big_progress.finished
    );

    // No need to run the sweep to the end: cancel is part of the contract.
    assert_eq!(fabric.cancel(big), Some(JobState::Cancelled));
    assert!(fabric.wait_idle(Duration::from_secs(60)));
    let report = fabric.report(big).expect("job exists");
    assert_eq!(report.state, JobState::Cancelled);
    assert_eq!(report.coverage.executed + report.coverage.skipped, 1000, "every cell accounted for");
}

#[test]
fn wire_protocol_round_trips_over_duplex_and_tcp() {
    let fabric = Fabric::builder()
        .workers(1)
        .register(FnWorkload::new("reader", reader_process, read_four))
        .build();

    // In-process duplex transport.
    let mut duplex = fabric.connect();
    duplex.ping().expect("pong");
    let job = duplex
        .submit(JobSpec::new("wired", "reader", read_plan(2, &[5])))
        .expect("submit over the wire");
    assert_eq!(fabric.wait_job(job, Duration::from_secs(60)), Some(JobState::Done));
    let status = duplex.status(job).expect("status over the wire");
    assert_eq!(status.state, JobState::Done);
    assert_eq!(status.progress.finished, 2);
    assert_eq!(duplex.status(job).expect("snapshots are stable"), fabric.status(job).expect("job exists"));
    let (next, events) = duplex.events(job, 0, 64).expect("events over the wire");
    assert_eq!(next, events.len() as u64, "dense sequence from 0");
    assert!(events.iter().any(|e| matches!(e.kind, JobEventKind::State(JobState::Done))));
    assert!(events.iter().any(|e| matches!(&e.kind, JobEventKind::Finished { injections: 1, .. })));
    let checkpoint = duplex.checkpoint(job).expect("checkpoint over the wire");
    assert_eq!(checkpoint.to_xml(), fabric.checkpoint(job).expect("job exists").to_xml());
    let listed = duplex.jobs().expect("job listing");
    assert_eq!(listed, vec![(job, "wired".to_owned(), JobState::Done)]);

    // Plain TCP, same protocol.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
    let guard = fabric.serve_tcp(listener).expect("server thread");
    let mut tcp = lfi::fabric::FabricClient::tcp(guard.addr()).expect("connect");
    tcp.ping().expect("pong over TCP");
    assert!(tcp.submit(JobSpec::new("nope", "unregistered", Plan::new())).is_err(), "unknown workload is an error");
    let second = tcp
        .submit(JobSpec::new("tcp-job", "reader", read_plan(1, &[5])))
        .expect("submit over TCP");
    assert_ne!(second, job, "ids are never reused");
    assert_eq!(tcp.cancel(second).map(|s| s.is_terminal()), Ok(true), "cancel lands before or after execution");
    tcp.drain().expect("drain over TCP");
    assert!(fabric.is_draining());
    guard.stop();
    let reports = fabric.drain();
    assert_eq!(reports.len(), 2);
}

#[test]
fn journaled_job_survives_a_kill_and_recovers_byte_identically() {
    let reader = || FnWorkload::new("reader", reader_process, read_four);
    let dir = std::env::temp_dir().join(format!("lfi-fabric-journal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("resumable.journal");
    // 40 cells in leases of 1, so the journal accumulates enough acks to
    // cross its compaction threshold while the job completes.
    let spec = || JobSpec::new("resumable", "reader", read_plan(10, &[5, 9, 11, 22])).lease_batch(1);

    // Live fabric: journal from submission, make partial progress, quiesce,
    // then "die" without draining or checkpointing by hand.
    let first = Fabric::builder().workers(1).register(reader()).build();
    let job = first.submit(spec()).expect("workload registered");
    first.journal_job(job, &path).expect("journal attaches");
    while first.status(job).expect("job exists").progress.finished < 6 {
        std::thread::sleep(Duration::from_millis(2));
    }
    first.pause(job);
    assert!(first.wait_idle(Duration::from_secs(60)), "outstanding leases settle after pause");
    assert_eq!(first.journal_error(job), None);
    let live = first.checkpoint(job).expect("job exists");
    let done_before_kill = first.status(job).expect("job exists").progress.finished;
    assert!(done_before_kill < 40, "the kill lands mid-run");
    drop(first);

    // An inert fabric (zero workers) recovers the journal without running
    // anything: the recovered state is byte-identical to the last durable
    // checkpoint of the dead fabric.
    let inert = Fabric::builder().workers(0).register(reader()).build();
    let recovered = inert.recover_job(spec(), &path).expect("journal recovers");
    let store = inert.checkpoint(recovered).expect("job exists");
    assert_eq!(store, live);
    assert_eq!(store.to_xml(), live.to_xml());
    assert_eq!(
        inert.status(recovered).expect("job exists").progress.finished,
        done_before_kill,
        "every journaled ack replayed, nothing else"
    );
    drop(inert);

    // A working fabric recovers the same journal and finishes the job,
    // journaling (and compacting) as it goes.
    let second = Fabric::builder().workers(2).register(reader()).build();
    let resumed = second.recover_job(spec(), &path).expect("journal recovers");
    assert_eq!(second.wait_job(resumed, Duration::from_secs(60)), Some(JobState::Done));
    assert_eq!(second.journal_error(resumed), None);
    let report = second.report(resumed).expect("job exists");
    assert_eq!(report.coverage.executed, 40, "union of pre-kill and post-recovery work");
    let final_xml = second.checkpoint(resumed).expect("job exists").to_xml();
    drop(second);

    // The journal now holds the finished job; a third recovery and a clean
    // uninterrupted run both reproduce the same final checkpoint bytes.
    let third = Fabric::builder().workers(0).register(reader()).build();
    let done = third.recover_job(spec(), &path).expect("finished journal recovers");
    assert_eq!(third.status(done).expect("job exists").state, JobState::Done);
    assert_eq!(third.checkpoint(done).expect("job exists").to_xml(), final_xml);
    drop(third);

    let clean = Fabric::builder().workers(1).register(reader()).build();
    let clean_job = clean.submit(spec()).expect("workload registered");
    assert_eq!(clean.wait_job(clean_job, Duration::from_secs(60)), Some(JobState::Done));
    assert_eq!(clean.checkpoint(clean_job).expect("job exists").to_xml(), final_xml);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_restores_into_a_fresh_fabric() {
    // Run a job partially, pause it, checkpoint it, and hand the XML to a
    // second fabric — the union of both runs covers every cell exactly once.
    let spec = || JobSpec::new("resumable", "reader", read_plan(4, &[5, 9, 11])).lease_batch(4);

    let first = Fabric::builder()
        .workers(1)
        .register(FnWorkload::new("reader", reader_process, read_four))
        .build();
    let job = first.submit(spec()).expect("workload registered");
    assert!(first.pause(job).is_some());
    assert!(first.wait_idle(Duration::from_secs(60)), "outstanding leases settle after pause");
    let parked = first.status(job).expect("job exists");
    assert!(!parked.state.is_terminal(), "paused, not finished");
    assert_eq!(parked.outstanding, 0);
    let xml = first.checkpoint(job).expect("job exists").to_xml();
    drop(first);

    let store = ExplorationStore::from_xml(&xml).expect("checkpoint parses");
    assert_eq!(store.executed.len() + store.frontier.len(), 12, "the checkpoint partitions the universe");

    let second = Fabric::builder()
        .workers(2)
        .register(FnWorkload::new("reader", reader_process, read_four))
        .build();
    let restored = second.submit_restored(spec(), &store).expect("workload registered");
    assert_eq!(second.wait_job(restored, Duration::from_secs(60)), Some(JobState::Done));
    let report = second.report(restored).expect("job exists");
    assert_eq!(report.coverage.universe, 12);
    assert_eq!(report.coverage.executed, 12, "base + resumed work covers every cell");
    assert_eq!(report.coverage.skipped, 0);
    let resumed = second.status(restored).expect("job exists");
    assert_eq!(resumed.progress.finished + store.executed.len(), 12, "no cell ran twice");

    // The stitched-together checkpoint equals one from an uninterrupted run.
    let final_xml = second.checkpoint(restored).expect("job exists").to_xml();
    drop(second);
    let clean = Fabric::builder()
        .workers(1)
        .register(FnWorkload::new("reader", reader_process, read_four))
        .build();
    let clean_job = clean.submit(spec()).expect("workload registered");
    assert_eq!(clean.wait_job(clean_job, Duration::from_secs(60)), Some(JobState::Done));
    assert_eq!(clean.checkpoint(clean_job).expect("job exists").to_xml(), final_xml);
}
