//! Integration coverage for the streaming campaign session: `CaseEvent`
//! ordering and determinism, mid-run cancellation at several parallelism
//! degrees, the Workload hook contract, and the blocking wrappers'
//! equivalence with the stream they wrap.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use lfi::controller::{
    Campaign, CaseEvent, ExecutionPolicy, FnWorkload, SkipReason, TestCase, Workload, WorkloadRegistry,
};
use lfi::runtime::{ExitStatus, NativeLibrary, Process, Signal};
use lfi::scenario::{FaultAction, Plan, PlanEntry, Trigger};

fn setup() -> Process {
    let mut process = Process::new();
    process.load(
        NativeLibrary::builder("libc.so.6")
            .function("read", |ctx| ctx.arg(2))
            .function("malloc", |ctx| if ctx.arg(0) > 1 << 30 { 0 } else { 0x1000 })
            .build(),
    );
    process
}

/// Read a header, allocate accordingly; a short read provokes a fatal
/// allocation failure (SIGABRT), a failed read exits cleanly with 1.
fn workload(process: &mut Process) -> ExitStatus {
    let header = process.call("read", &[3, 0, 8]).unwrap_or(-1);
    if header < 0 {
        return ExitStatus::Exited(1);
    }
    let size = if header == 8 { 64 } else { 1 << 40 };
    if process.call("malloc", &[size]).unwrap_or(0) == 0 {
        return ExitStatus::Crashed(Signal::Abort);
    }
    ExitStatus::Exited(0)
}

/// `count` cases mixing clean runs, random-trigger failures and one crash.
fn mixed_cases(count: usize) -> Vec<TestCase> {
    (0..count)
        .map(|i| {
            let plan = match i % 4 {
                0 => Plan::new(),
                1 => Plan::new().with_seed(100 + i as u64).entry(PlanEntry {
                    function: "read".into(),
                    trigger: Trigger::with_probability(0.5),
                    action: FaultAction::return_value(-1).with_errno(5),
                }),
                2 => Plan::new().entry(PlanEntry {
                    function: "read".into(),
                    trigger: Trigger::on_call(1),
                    action: FaultAction::return_value(-1).with_errno(5),
                }),
                _ => Plan::new().entry(PlanEntry {
                    function: "read".into(),
                    trigger: Trigger::on_call(1),
                    action: FaultAction::return_value(4),
                }),
            };
            TestCase::new(format!("case-{i:02}"), plan)
        })
        .collect()
}

fn stream_events(campaign: Campaign) -> Vec<CaseEvent> {
    campaign.start(FnWorkload::new("mixed-reader", setup, workload)).collect()
}

#[test]
fn serial_event_stream_is_byte_identical_across_reruns() {
    let build = || Campaign::new().cases(mixed_cases(12)).parallelism(1);
    let first = stream_events(build());
    let second = stream_events(build());
    assert_eq!(first, second, "fixed seeds + one worker => identical event sequences");
    // And the per-case ordering contract holds: Started, Injection*, Outcome.
    let mut last_started = None;
    for event in &first {
        match event {
            CaseEvent::Started { index, .. } => {
                assert_eq!(Some(*index), last_started.map(|i: usize| i + 1).or(Some(0)));
                last_started = Some(*index);
            }
            CaseEvent::Injection { index, .. } | CaseEvent::Outcome { index, .. } => {
                assert_eq!(Some(*index), last_started, "case events follow their own Started");
            }
            CaseEvent::Skipped { .. } => unreachable!("nothing halts this run"),
        }
    }
    assert_eq!(first.iter().filter(|e| matches!(e, CaseEvent::Outcome { .. })).count(), 12);
}

#[test]
fn serial_event_stream_is_deterministic_under_stop_on_first_crash() {
    let build = || {
        Campaign::new()
            .cases(mixed_cases(12))
            .policy(ExecutionPolicy::run_all().stop_on_first_crash())
            .parallelism(1)
    };
    let first = stream_events(build());
    let second = stream_events(build());
    assert_eq!(first, second, "the halt point is part of the deterministic stream");
    // Case 3 is the first crash; cases 4.. surface as CrashHalt skips, in
    // ascending order, after the executed prefix.
    let crash_at = first
        .iter()
        .position(|e| matches!(e, CaseEvent::Outcome { outcome, .. } if outcome.status.is_crash()))
        .expect("one case crashes");
    let skips: Vec<usize> = first
        .iter()
        .filter_map(|e| match e {
            CaseEvent::Skipped { index, reason, .. } => {
                assert_eq!(*reason, SkipReason::CrashHalt);
                Some(*index)
            }
            _ => None,
        })
        .collect();
    assert_eq!(skips, (4..12).collect::<Vec<_>>());
    assert!(
        first[crash_at..].iter().all(|e| !matches!(e, CaseEvent::Started { .. })),
        "nothing starts after the crash"
    );
}

#[test]
fn cancellation_mid_run_leaves_a_consistent_report_at_any_parallelism() {
    for workers in [1usize, 4, 8] {
        // Far more cases than the bounded channel can buffer: backpressure
        // guarantees unclaimed cases remain when the cancel lands.
        let total = 48;
        let mut run = Campaign::new().cases(mixed_cases(total)).parallelism(workers).start(FnWorkload::new(
            "mixed-reader",
            setup,
            workload,
        ));
        let cancel = run.cancel_handle();
        // Consume events until a handful of outcomes arrived, then cancel.
        let mut outcomes_seen = 0;
        for event in run.by_ref() {
            if matches!(event, CaseEvent::Outcome { .. }) {
                outcomes_seen += 1;
                if outcomes_seen == 3 {
                    cancel.cancel();
                    break;
                }
            }
        }
        let report = run.into_report();
        // Consistency: every scheduled case is either an outcome or skipped,
        // outcomes stay in case order, and nothing is double-counted.
        assert_eq!(report.outcomes.len() + report.cases_skipped, total, "parallelism({workers})");
        assert!(report.outcomes.len() >= 3, "parallelism({workers}) reported the in-flight outcomes");
        assert!(report.cases_skipped > 0, "parallelism({workers}) skipped the tail");
        let mut names: Vec<usize> = report
            .outcomes
            .iter()
            .map(|o| o.name.trim_start_matches("case-").parse::<usize>().unwrap())
            .collect();
        let sorted = {
            let mut sorted = names.clone();
            sorted.sort_unstable();
            sorted
        };
        assert_eq!(names, sorted, "parallelism({workers}) outcomes are slot-ordered");
        names.dedup();
        assert_eq!(names.len(), report.outcomes.len(), "parallelism({workers}) no duplicate outcomes");
        assert!(report.to_text().contains(&format!("cases skipped: {}", report.cases_skipped)));
    }
}

#[test]
fn cancel_handle_is_idempotent_and_inert_after_drain() {
    // Double-cancel mid-run: the second call is a no-op, the report is as
    // consistent as after a single cancel.
    let mut run =
        Campaign::new()
            .cases(mixed_cases(48))
            .parallelism(4)
            .start(FnWorkload::new("mixed-reader", setup, workload));
    let cancel = run.cancel_handle();
    let mut outcomes_seen = 0;
    let mut cancelled_skips = 0;
    for event in run.by_ref() {
        match event {
            CaseEvent::Outcome { .. } => {
                outcomes_seen += 1;
                if outcomes_seen == 3 {
                    cancel.cancel();
                    cancel.cancel(); // idempotent: already-cancelled is a no-op
                }
            }
            CaseEvent::Skipped { reason, .. } => {
                assert_eq!(reason, SkipReason::Cancelled);
                cancelled_skips += 1;
            }
            _ => {}
        }
    }
    // Cancelling again after the stream drained changes nothing either.
    cancel.cancel();
    let report = run.into_report();
    assert_eq!(report.outcomes.len() + report.cases_skipped, 48);
    assert!(report.cases_skipped > 0, "the tail was skipped");
    assert_eq!(report.cases_skipped, cancelled_skips, "every skip carried SkipReason::Cancelled exactly once");

    // Cancel after the stream already drained naturally: the handle
    // outlives the run's work and stays inert — no skips appear.
    let mut run = Campaign::new()
        .cases(mixed_cases(6))
        .start(FnWorkload::new("mixed-reader", setup, workload));
    let cancel = run.cancel_handle();
    for _ in run.by_ref() {}
    cancel.cancel();
    cancel.cancel();
    let report = run.into_report();
    assert_eq!(report.outcomes.len(), 6);
    assert_eq!(report.cases_skipped, 0, "cancel after drain skips nothing");
}

#[test]
fn blocking_run_equals_the_collected_stream() {
    let blocking = Campaign::new().cases(mixed_cases(10)).run(setup, workload);
    let streamed = Campaign::new()
        .cases(mixed_cases(10))
        .start(FnWorkload::new("mixed-reader", setup, workload))
        .into_report();
    assert_eq!(blocking, streamed);

    // The events the stream yielded reassemble into the same outcomes.
    let events = stream_events(Campaign::new().cases(mixed_cases(10)));
    let outcomes: Vec<_> = events
        .into_iter()
        .filter_map(|e| match e {
            CaseEvent::Outcome { outcome, .. } => Some(outcome),
            _ => None,
        })
        .collect();
    assert_eq!(outcomes, blocking.outcomes);
}

/// Shared hook counters, cloneable into the per-run workload objects.
#[derive(Default)]
struct HookCounters {
    teardowns: AtomicUsize,
    setups: AtomicUsize,
    veto_marked: AtomicBool,
}

/// A workload that records its hook sequence and vetoes marked cases.
#[derive(Clone)]
struct HookRecorder {
    counters: Arc<HookCounters>,
}

impl Workload for HookRecorder {
    fn name(&self) -> &str {
        "hook-recorder"
    }

    fn setup(&self, _case: &TestCase) -> lfi::runtime::PooledProcess {
        self.counters.setups.fetch_add(1, Ordering::SeqCst);
        setup().into()
    }

    fn run(&self, process: &mut Process) -> ExitStatus {
        workload(process)
    }

    fn teardown(&self, _process: &mut Process) {
        self.counters.teardowns.fetch_add(1, Ordering::SeqCst);
    }

    fn health_check(&self, process: &mut Process) -> bool {
        // Passive resolution check plus the veto switch.
        process.fnptr("read").is_ok() && !self.counters.veto_marked.load(Ordering::SeqCst)
    }
}

#[test]
fn workload_hooks_fire_in_contract_order() {
    let counters = Arc::new(HookCounters::default());
    let recorder = HookRecorder { counters: Arc::clone(&counters) };
    let report = Campaign::new().cases(mixed_cases(6)).run_workload(recorder.clone());
    assert_eq!(report.outcomes.len(), 6);
    assert_eq!(counters.setups.load(Ordering::SeqCst), 6);
    assert_eq!(counters.teardowns.load(Ordering::SeqCst), 6, "teardown once per executed case");

    // Flip the veto: every case is set up, health-checked and skipped —
    // teardown never fires for unexecuted cases.
    counters.setups.store(0, Ordering::SeqCst);
    counters.teardowns.store(0, Ordering::SeqCst);
    counters.veto_marked.store(true, Ordering::SeqCst);
    let vetoed = Campaign::new().cases(mixed_cases(4)).run_workload(recorder);
    assert!(vetoed.outcomes.is_empty());
    assert_eq!(vetoed.cases_skipped, 4);
    assert_eq!(counters.setups.load(Ordering::SeqCst), 4);
    assert_eq!(counters.teardowns.load(Ordering::SeqCst), 0);
}

#[test]
fn registry_workloads_drive_streaming_sessions() {
    let mut registry = WorkloadRegistry::new();
    registry.register(FnWorkload::new("mixed-reader", setup, workload));
    let shared = registry.get("mixed-reader").expect("registered");
    let report = Campaign::new().cases(mixed_cases(8)).parallelism(2).start_arc(shared).into_report();
    assert_eq!(report.outcomes.len(), 8);
    assert_eq!(report.crashes().count(), 2, "cases 3 and 7 crash");

    // The apps registry plugs into the same session API.
    let apps = lfi::apps::workloads::registry();
    assert!(apps.names().count() >= 4);
    let pidgin = apps.get("pidgin-login").expect("shipped");
    let clean = Campaign::new()
        .case(TestCase::new("clean-login", Plan::new()))
        .start_arc(pidgin)
        .into_report();
    assert!(clean.outcomes[0].status.is_success());
}

#[test]
fn progress_counters_track_the_stream() {
    let mut run = Campaign::new()
        .cases(mixed_cases(12))
        .start(FnWorkload::new("mixed-reader", setup, workload));
    assert_eq!(run.case_count(), 12);
    for _ in run.by_ref() {}
    let progress = run.progress();
    assert_eq!(progress.cases, 12);
    assert_eq!(progress.started, 12);
    assert_eq!(progress.finished, 12);
    assert_eq!(progress.skipped, 0);
    assert_eq!(progress.crashes, 3, "cases 3, 7 and 11 crash");
    let report = run.into_report();
    assert_eq!(progress.injections, report.total_injections());
}
