//! The lfi-store durability contracts, end to end: XML → binary → XML
//! byte-identity for arbitrary stores, torn-tail recovery at *every* byte
//! offset of a killed append, hostile-bytes robustness (never panic, always
//! a `StoreError` naming path/offset/format), and a journaled explorer
//! kill + resume that reproduces the uninterrupted run batch for batch.

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;

use lfi::corpus::{build_kernel, build_libc_scaled};
use lfi::explore::{CrashCluster, ExplorationDelta, ExplorationStore, FrontierCell, FunctionCoverage, OutcomeClass};
use lfi::intern::Symbol;
use lfi::isa::Platform;
use lfi::profile::{ProfileKey, ProfileStore};
use lfi::profiler::ProfilerOptions;
use lfi::runtime::{ExitStatus, NativeLibrary, Process, Signal};
use lfi::scenario::generator::Exhaustive;
use lfi::scenario::FaultCell;
use lfi::store::{format, ExplorationJournal, Journal, Record};
use lfi::Lfi;

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("{name}-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn cell(function: &str, ordinal: u64, errno: Option<i64>) -> FaultCell {
    FaultCell { function: Symbol::intern(function), call_ordinal: ordinal, retval: -1, errno }
}

/// A small but non-trivial store: frontier, executed cells, coverage, one
/// cluster — enough that every record section of the codec is exercised.
fn base_store() -> ExplorationStore {
    ExplorationStore {
        seed: 7,
        batch_size: 4,
        parallelism: 1,
        halt_on_crash: false,
        case_budget: Some(500),
        injection_budget: None,
        time_budget_ms: None,
        universe: 5,
        batch_index: 0,
        rng_draws: 3,
        probe_done: true,
        crash_found: false,
        cases_executed: 1,
        injections_performed: 0,
        elapsed_ms: 2,
        frontier: vec![
            FrontierCell { cell: cell("read", 1, Some(5)), priority: 0 },
            FrontierCell { cell: cell("write", 1, Some(28)), priority: -1 },
            FrontierCell { cell: cell("close", 2, Some(5)), priority: 3 },
        ],
        executed: vec![cell("open", 1, Some(2))],
        unreached: vec![],
        pruned_functions: vec![Symbol::intern("mmap")],
        coverage: vec![(
            Symbol::intern("open"),
            FunctionCoverage { observed_calls: 4, triggered: [(1, -1, Some(2))].into_iter().collect() },
        )],
        clusters: vec![],
    }
}

/// One batch's worth of change against [`base_store`].
fn delta_one() -> ExplorationDelta {
    ExplorationDelta {
        batch_index: 1,
        rng_draws: 9,
        probe_done: true,
        crash_found: false,
        cases_executed: 3,
        injections_performed: 2,
        elapsed_ms: 11,
        frontier_remove: vec![cell("read", 1, Some(5)), cell("write", 1, Some(28))],
        frontier_upsert: vec![],
        executed: vec![cell("read", 1, Some(5)), cell("write", 1, Some(28))],
        unreached: vec![],
        pruned_functions: vec![],
        coverage: vec![(
            Symbol::intern("read"),
            FunctionCoverage { observed_calls: 2, triggered: [(1, -1, Some(5))].into_iter().collect() },
        )],
        clusters: vec![],
    }
}

/// A second batch: the crash batch, escalating a neighbour cell.
fn delta_two() -> ExplorationDelta {
    ExplorationDelta {
        batch_index: 2,
        rng_draws: 15,
        probe_done: true,
        crash_found: true,
        cases_executed: 4,
        injections_performed: 3,
        elapsed_ms: 23,
        frontier_remove: vec![cell("close", 2, Some(5))],
        frontier_upsert: vec![FrontierCell { cell: cell("close", 1, Some(5)), priority: 100 }],
        executed: vec![cell("close", 2, Some(5))],
        unreached: vec![],
        pruned_functions: vec![],
        coverage: vec![(
            Symbol::intern("close"),
            FunctionCoverage { observed_calls: 2, triggered: [(2, -1, Some(5))].into_iter().collect() },
        )],
        clusters: vec![CrashCluster {
            function: Symbol::intern("close"),
            stack: vec![Symbol::intern("flush"), Symbol::intern("close")],
            outcome: OutcomeClass::Crash(Signal::Segv),
            count: 1,
            example: cell("close", 2, Some(5)),
            example_case: "exhaustive_close_e5_c2".to_owned(),
        }],
    }
}

// ---------------------------------------------------------------------------
// Torn-tail torture: truncate at every byte offset
// ---------------------------------------------------------------------------

/// Kill-mid-append torture test: a journal holding snapshot + two deltas is
/// truncated at *every* byte offset.  Recovery must never panic; anywhere
/// inside a torn record it must restore exactly the previous durable state,
/// and the recovered journal must be appendable again.
#[test]
fn recovery_at_every_truncation_offset_restores_the_last_durable_state() {
    let dir = temp_dir("lfi-store-torture");
    let path = dir.join("torture.lfij");

    let s0 = base_store();
    let mut journal = ExplorationJournal::create(&path, &s0).unwrap();
    let len0 = fs::metadata(&path).unwrap().len();
    journal.append_delta(&delta_one()).unwrap();
    let s1 = journal.state().clone();
    let len1 = fs::metadata(&path).unwrap().len();
    journal.append_delta(&delta_two()).unwrap();
    let s2 = journal.state().clone();
    let len2 = fs::metadata(&path).unwrap().len();
    drop(journal);
    assert!(len0 < len1 && len1 < len2);
    assert_ne!(s0, s1);
    assert_ne!(s1, s2);

    let bytes = fs::read(&path).unwrap();
    assert_eq!(bytes.len() as u64, len2);

    let truncated = dir.join("truncated.lfij");
    for cut in 0..=bytes.len() {
        fs::write(&truncated, &bytes[..cut]).unwrap();
        match ExplorationJournal::open(&truncated) {
            Ok(recovered) => {
                let cut = cut as u64;
                assert!(cut >= len0, "a torn leading snapshot must not recover (cut {cut})");
                let expected = if cut >= len2 {
                    &s2
                } else if cut >= len1 {
                    &s1
                } else {
                    &s0
                };
                assert_eq!(recovered.state(), expected, "wrong durable state at cut {cut}");
                // Recovery truncates the torn tail off the file itself.
                let durable_len = if cut >= len2 {
                    len2
                } else if cut >= len1 {
                    len1
                } else {
                    len0
                };
                assert_eq!(fs::metadata(&truncated).unwrap().len(), durable_len, "tail not truncated at cut {cut}");
            }
            Err(error) => {
                assert!((cut as u64) < len0, "valid prefix refused at cut {cut}: {error}");
                let message = error.to_string();
                assert!(message.contains("truncated.lfij"), "error must name the path: {message}");
            }
        }
    }

    // A journal recovered mid-append stays appendable: re-apply the lost
    // delta and the state catches back up to the pre-kill state.
    fs::write(&truncated, &bytes[..len1 as usize + 3]).unwrap();
    let mut recovered = ExplorationJournal::open(&truncated).unwrap();
    assert_eq!(recovered.state(), &s1, "torn second delta rolls back to the first");
    recovered.append_delta(&delta_two()).unwrap();
    assert_eq!(recovered.state(), &s2);
    drop(recovered);
    assert_eq!(ExplorationJournal::open(&truncated).unwrap().state(), &s2, "re-appended delta is durable");

    // The sniffing loader recovers the same durable state from a torn file.
    fs::write(&truncated, &bytes[..len2 as usize - 1]).unwrap();
    assert_eq!(lfi::store::load_exploration(&truncated).unwrap(), s1);

    fs::remove_dir_all(&dir).ok();
}

/// Compaction folds the journal back to a single snapshot without changing
/// the recovered state, and the compacted file is smaller than the log it
/// replaces.
#[test]
fn compaction_preserves_state_and_shrinks_the_journal() {
    let dir = temp_dir("lfi-store-compact");
    let path = dir.join("compact.lfij");

    let mut journal = ExplorationJournal::create(&path, &base_store()).unwrap().compact_every(2);
    journal.append_delta(&delta_one()).unwrap();
    assert_eq!(journal.deltas_since_snapshot(), 1, "below the threshold: still a log");
    journal.append_delta(&delta_two()).unwrap();
    assert_eq!(journal.deltas_since_snapshot(), 0, "threshold reached: compacted");
    let state = journal.state().clone();
    drop(journal);

    let recovered = ExplorationJournal::open(&path).unwrap();
    assert_eq!(recovered.state(), &state);

    // The compacted file is exactly header + one snapshot record.
    let (_, records) = Journal::open(&path).unwrap();
    assert_eq!(records.len(), 1);
    assert!(matches!(records[0], Record::ExplorationSnapshot(_)));

    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Journaled explorer kill + resume
// ---------------------------------------------------------------------------

const LIBC_EXPORTS: usize = 120;

fn lfi_over_libc() -> Lfi {
    let mut lfi = Lfi::with_options(ProfilerOptions::with_heuristics());
    lfi.add_library(build_libc_scaled(Platform::LinuxX86, LIBC_EXPORTS).compiled.object);
    lfi.set_kernel(build_kernel(Platform::LinuxX86));
    lfi
}

fn setup() -> Process {
    let mut process = Process::new();
    process.load(
        NativeLibrary::builder("libc.so.6")
            .function("open", |_| 3)
            .function("write", |ctx| ctx.arg(2))
            .function("fsync", |_| 0)
            .function("close", |_| 0)
            .build(),
    );
    process
}

/// The log-structured writer of `tests/exploration.rs`: dies on the
/// undocumented EIO from the second `close`.
fn workload(process: &mut Process) -> ExitStatus {
    if process.call("open", &[0, 0, 0]).unwrap_or(-1) < 0 {
        return ExitStatus::Exited(2);
    }
    for _ in 0..4 {
        if process.call("write", &[3, 0, 64]).unwrap_or(-1) < 0 {
            return ExitStatus::Exited(1);
        }
    }
    if process.call("fsync", &[3]).unwrap_or(-1) < 0 {
        return ExitStatus::Exited(1);
    }
    for _ in 0..2 {
        if process.call("close", &[3]).unwrap_or(-1) < 0 {
            if process.state().errno() == 5 {
                return ExitStatus::Crashed(Signal::Segv);
            }
            return ExitStatus::Exited(1);
        }
    }
    ExitStatus::Exited(0)
}

/// The incremental-checkpoint contract over the journal: an exploration
/// that appends one O(delta) record per batch, is killed, and recovers from
/// the journal resumes with the *identical* remaining batch sequence — the
/// same fixed-seed byte-identity the XML snapshot path guarantees, now at
/// delta cost.
#[test]
fn journaled_explorer_kill_and_resume_reproduces_the_uninterrupted_run() {
    let dir = temp_dir("lfi-store-explorer");
    let journal_path = dir.join("exploration.lfij");
    let lfi = lfi_over_libc();
    let build = || lfi.explore(&Exhaustive, &["libc.so.6"]).unwrap().seed(77).batch_size(6);

    // The uninterrupted run, batch report by batch report.
    let mut full = build();
    let mut full_reports = Vec::new();
    while let Some(report) = full.step(setup, workload) {
        full_reports.push(report);
    }
    assert!(full_reports.len() > 3, "enough batches to kill one mid-run");

    // The journaled run: snapshot at creation, one delta per batch.
    let mut live = build();
    let mut journal = ExplorationJournal::create(&journal_path, &live.store()).unwrap();
    let mut reports = Vec::new();
    for _ in 0..3 {
        reports.push(live.step(setup, workload).unwrap());
        journal.append_delta(&live.take_delta()).unwrap();
    }
    assert_eq!(journal.deltas_since_snapshot(), 3, "one O(delta) record per batch, no compaction yet");
    let live_store = live.store();
    assert_eq!(journal.state(), &live_store, "the folded journal state tracks the live explorer exactly");
    drop(journal);
    drop(live); // the kill

    // Recovery is byte-identical to the last durable point, through both
    // the typed journal and the format-sniffing facade loader.
    let recovered = ExplorationJournal::open(&journal_path).unwrap();
    assert_eq!(recovered.state(), &live_store);
    assert_eq!(recovered.state().to_xml(), live_store.to_xml());
    assert_eq!(&lfi.load_exploration(&journal_path).unwrap(), recovered.state());

    // Resuming from the recovered store finishes the run identically.
    let mut resumed = lfi.resume_exploration(recovered.state(), &["libc.so.6"]).unwrap();
    while let Some(report) = resumed.step(setup, workload) {
        reports.push(report);
    }
    assert_eq!(reports, full_reports, "journaled kill+resume reproduces the identical batch sequence");
    assert_eq!(resumed.coverage_summary(), full.coverage_summary());
    assert_eq!(resumed.clusters(), full.clusters());

    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Property tests: byte-identity and hostility
// ---------------------------------------------------------------------------

fn arb_cell() -> impl Strategy<Value = FaultCell> {
    ("[a-z_]{2,10}", 1u64..20, -64i64..64, proptest::option::of(1i64..64)).prop_map(
        |(function, call_ordinal, retval, errno)| FaultCell {
            function: Symbol::intern(&function),
            call_ordinal,
            retval,
            errno,
        },
    )
}

fn arb_outcome() -> impl Strategy<Value = OutcomeClass> {
    prop_oneof![
        Just(OutcomeClass::Success),
        (1i32..120).prop_map(OutcomeClass::Failure),
        Just(OutcomeClass::Crash(Signal::Segv)),
        Just(OutcomeClass::Crash(Signal::Abort)),
    ]
}

fn arb_coverage() -> impl Strategy<Value = FunctionCoverage> {
    (0u64..60, proptest::collection::btree_set((1u64..9, -64i64..64, proptest::option::of(1i64..64)), 0..4))
        .prop_map(|(observed_calls, triggered)| FunctionCoverage { observed_calls, triggered })
}

fn arb_cluster() -> impl Strategy<Value = CrashCluster> {
    (arb_cell(), proptest::collection::vec("[a-z_]{2,8}", 0..4), arb_outcome(), 1u64..9, "[a-z0-9_]{1,16}").prop_map(
        |(example, stack, outcome, count, example_case)| CrashCluster {
            function: example.function,
            stack: stack.iter().map(|s| Symbol::intern(s)).collect(),
            outcome,
            count,
            example,
            example_case,
        },
    )
}

fn arb_exploration_store() -> impl Strategy<Value = ExplorationStore> {
    let config = (any::<u64>(), 1usize..32, 1usize..8, any::<bool>());
    let budgets =
        (proptest::option::of(1u64..10_000), proptest::option::of(1u64..10_000), proptest::option::of(1u64..100_000));
    let progress = (0u64..50, 0u64..5_000, any::<bool>(), any::<bool>(), 0u64..10_000);
    let cells = (
        proptest::collection::vec((arb_cell(), -5i32..5), 0..8),
        proptest::collection::vec(arb_cell(), 0..8),
        proptest::collection::vec(arb_cell(), 0..8),
        proptest::collection::btree_set("[a-z_]{2,8}", 0..4),
    );
    let folds = (
        proptest::collection::vec(("[a-z_]{2,8}", arb_coverage()), 0..4),
        proptest::collection::vec(arb_cluster(), 0..4),
    );
    (config, budgets, progress, cells, folds).prop_map(
        |(
            (seed, batch_size, parallelism, halt_on_crash),
            (case_budget, injection_budget, time_budget_ms),
            (batch_index, rng_draws, probe_done, crash_found, cases_executed),
            (frontier, executed, unreached, pruned),
            (coverage, clusters),
        )| {
            // Coverage is keyed by function name: dedup through a map.
            let coverage: std::collections::BTreeMap<String, FunctionCoverage> = coverage.into_iter().collect();
            ExplorationStore {
                seed,
                batch_size,
                parallelism,
                halt_on_crash,
                case_budget,
                injection_budget,
                time_budget_ms,
                universe: frontier.len() + executed.len() + 7,
                batch_index,
                rng_draws,
                probe_done,
                crash_found,
                cases_executed,
                injections_performed: cases_executed / 2,
                elapsed_ms: cases_executed * 3,
                frontier: frontier.into_iter().map(|(cell, priority)| FrontierCell { cell, priority }).collect(),
                executed,
                unreached,
                pruned_functions: pruned.iter().map(|name| Symbol::intern(name)).collect(),
                coverage: coverage.into_iter().map(|(name, entry)| (Symbol::intern(&name), entry)).collect(),
                clusters,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// XML → binary → XML is byte-identical for arbitrary exploration
    /// stores: the binary codec loses nothing the XML interchange format
    /// carries.
    #[test]
    fn exploration_stores_round_trip_xml_binary_xml_byte_identically(store in arb_exploration_store()) {
        let xml = store.to_xml();
        let decoded = lfi::store::decode_exploration_store(&lfi::store::encode_exploration_store(&store)).unwrap();
        prop_assert_eq!(&decoded, &store);
        prop_assert_eq!(decoded.to_xml(), xml.clone());
        prop_assert_eq!(lfi::store::exploration_from_xml(&xml).unwrap(), store);
    }

    /// XML → binary → XML is byte-identical for arbitrary profile stores.
    #[test]
    fn profile_stores_round_trip_xml_binary_xml_byte_identically(
        entries in proptest::collection::vec((lfi_test_profiles::arb_profile(), any::<u64>(), any::<bool>()), 0..5),
    ) {
        let store = ProfileStore::new();
        for (profile, code_hash, keep_platform) in entries {
            let platform = if keep_platform { profile.platform.clone() } else { None };
            store.insert(ProfileKey::new(profile.library.clone(), platform, code_hash), profile);
        }
        let xml = store.to_xml();
        let decoded = lfi::store::decode_profile_store(&lfi::store::encode_profile_store(&store)).unwrap();
        prop_assert_eq!(decoded.to_xml(), xml.clone());
        prop_assert_eq!(lfi::store::profile_store_from_xml(&xml).unwrap().to_xml(), xml);
    }

    /// Raw hostile bytes through every decoder: always a `StoreError`,
    /// never a panic.
    #[test]
    fn hostile_bytes_never_panic_in_the_decoders(bytes in proptest::collection::vec(0u8..=255, 0..300)) {
        let _ = lfi::store::decode_exploration_store(&bytes);
        let _ = lfi::store::decode_exploration_delta(&bytes);
        let _ = lfi::store::decode_profile_store(&bytes);
        let _ = lfi::store::decode_profile_entry(&bytes);
        let _ = lfi::store::decode_ack(&bytes);
        let text = String::from_utf8_lossy(&bytes);
        let _ = lfi::store::exploration_from_xml(&text);
        let _ = lfi::store::profile_store_from_xml(&text);
    }

    /// Fuzzed prefixes of a *valid* journal file — optionally with one byte
    /// flipped — through every file loader: Ok or a path-naming Err, never
    /// a panic.
    #[test]
    fn fuzzed_prefixes_of_valid_files_never_panic(
        cut in any::<prop::sample::Index>(),
        flip in proptest::option::of((any::<prop::sample::Index>(), 1u8..=255)),
    ) {
        let mut bytes = Vec::new();
        format::write_header(&mut bytes);
        let (kind, payload) = Record::ExplorationSnapshot(base_store()).encode();
        format::write_frame(&mut bytes, kind, &payload);
        let (kind, payload) = Record::ExplorationDelta(delta_one()).encode();
        format::write_frame(&mut bytes, kind, &payload);

        let cut = cut.index(bytes.len() + 1);
        let mut bytes = bytes[..cut].to_vec();
        if let Some((at, mask)) = flip {
            if !bytes.is_empty() {
                let at = at.index(bytes.len());
                bytes[at] ^= mask;
            }
        }

        let dir = temp_dir("lfi-store-fuzz");
        let path = dir.join("fuzzed.lfij");
        fs::write(&path, &bytes).unwrap();
        if let Err(error) = lfi::store::load_exploration(&path) {
            prop_assert!(error.to_string().contains("fuzzed.lfij"), "error must name the path: {}", error);
        }
        let _ = lfi::store::load_profile_store(&path);
        let _ = ExplorationJournal::open(&path);
        let _ = Journal::open(&path);
        fs::remove_dir_all(&dir).ok();
    }
}

/// The profile generators, shared in spirit with `tests/property_tests.rs`
/// (each integration-test binary is standalone, so the strategies live
/// here too).
mod lfi_test_profiles {
    use lfi::profile::{ErrorReturn, FaultProfile, FunctionProfile, SideEffect};
    use proptest::prelude::*;

    fn arb_side_effect() -> impl Strategy<Value = SideEffect> {
        (0u32..3, "[a-z]{3,10}", 0u32..0xffff, -64i64..64).prop_map(|(kind, module, offset, value)| match kind {
            0 => SideEffect::tls(module, offset, value),
            1 => SideEffect::global(module, offset, value),
            _ => SideEffect::output_arg(module, offset % 8, value),
        })
    }

    pub fn arb_profile() -> impl Strategy<Value = FaultProfile> {
        let function = (
            "[a-z_][a-z0-9_]{0,12}",
            proptest::collection::vec((-64i64..64, proptest::collection::vec(arb_side_effect(), 0..3)), 0..4),
        )
            .prop_map(|(name, errors)| FunctionProfile {
                name,
                error_returns: errors
                    .into_iter()
                    .map(|(retval, side_effects)| ErrorReturn { retval, side_effects })
                    .collect(),
            });
        ("lib[a-z]{2,8}", proptest::collection::vec(function, 0..6)).prop_map(|(library, functions)| FaultProfile {
            library,
            platform: Some("Linux/x86".to_owned()),
            functions,
        })
    }
}
