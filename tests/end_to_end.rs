//! End-to-end integration tests: the full Figure 1 pipeline — profile the
//! libraries of an application, generate scenarios, synthesize interceptors,
//! run a workload, and use the log/replay outputs — exercised across crate
//! boundaries through the public `lfi` API.

use lfi::apps::{base_process, new_world, MysqlServer, PidginLogin};
use lfi::asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
use lfi::controller::{Campaign, Injector, TestCase};
use lfi::corpus::{build_kernel, build_libc_scaled};
use lfi::isa::Platform;
use lfi::profile::FaultProfile;
use lfi::profiler::ProfilerOptions;
use lfi::runtime::{ExitStatus, NativeLibrary, Process};
use lfi::scenario::generator::{ScenarioGenerator, TriggerLoad};
use lfi::scenario::Plan;
use lfi::Lfi;

fn demo_library() -> lfi::objfile::SharedObject {
    LibraryCompiler::new()
        .compile(
            &LibrarySpec::new("libdemo.so", Platform::LinuxX86)
                .function(
                    FunctionSpec::scalar("demo_read", 3)
                        .success(0)
                        .fault(FaultSpec::returning(-1).with_errno(5))
                        .fault(FaultSpec::returning(-2).with_errno(4)),
                )
                .function(
                    FunctionSpec::pointer("demo_alloc", 1)
                        .success(0x4000)
                        .fault(FaultSpec::returning(0).with_errno(12)),
                ),
        )
        .object
}

fn demo_runtime() -> NativeLibrary {
    NativeLibrary::builder("libdemo.so")
        .function("demo_read", |ctx| ctx.arg(2))
        .constant("demo_alloc", 0x4000)
        .build()
}

#[test]
fn profile_scenario_inject_log_replay_pipeline() {
    // Profile.
    let mut lfi = Lfi::new();
    lfi.add_library(demo_library());
    let report = lfi.profile("libdemo.so").unwrap();
    assert_eq!(report.profile.function_count(), 2);

    // The profile round-trips through its XML form (what the controller would
    // read from disk).
    let xml = report.profile.to_xml();
    let parsed = FaultProfile::from_xml(&xml).unwrap();
    assert_eq!(parsed, report.profile);

    // Generate the exhaustive scenario and check it drives injections.
    let plan = lfi.exhaustive_scenario(&["libdemo.so"]).unwrap();
    assert!(plan.len() >= 3);
    let plan_xml = plan.to_xml();
    let plan_back = Plan::from_xml(&plan_xml).unwrap();
    assert_eq!(plan_back, plan);

    // Inject into a running process.
    let injector = Injector::new(plan);
    let mut process = Process::new();
    process.load(demo_runtime());
    process.preload(injector.synthesize_interceptor());

    let mut injected_failures = 0;
    for i in 0..10 {
        let result = process.call("demo_read", &[3, 0, 64 + i]).unwrap();
        if result < 0 {
            injected_failures += 1;
        }
    }
    assert!(injected_failures >= 2, "exhaustive scenario injected {injected_failures} failures");
    let log = injector.log();
    // Without the unsound heuristics the profile also contains success
    // constants, so the exhaustive plan may inject non-negative values too:
    // at least every observed failure must have a log record.
    assert!(log.injection_count() >= injected_failures);

    // The replay script reproduces exactly the same observable behaviour.
    let replay = injector.replay_plan();
    let replay_injector = Injector::new(replay);
    let mut process2 = Process::new();
    process2.load(demo_runtime());
    process2.preload(replay_injector.synthesize_interceptor());
    for i in 0..10 {
        let original = {
            // Recompute what the first process returned by consulting the log.
            let record = log.injections.iter().find(|r| r.call_number == i + 1 && r.function == "demo_read");
            record.and_then(|r| r.retval).unwrap_or(64 + i as i64)
        };
        let replayed = process2.call("demo_read", &[3, 0, 64 + i as i64]).unwrap();
        assert_eq!(replayed, original, "call {i} diverged under replay");
    }
}

#[test]
fn campaign_over_generated_test_cases_finds_the_pidgin_crash() {
    // Build the libc profile the scenario generator needs.
    let mut lfi = Lfi::with_options(ProfilerOptions::with_heuristics());
    lfi.add_library(build_libc_scaled(Platform::LinuxX86, 80).compiled.object);
    lfi.set_kernel(build_kernel(Platform::LinuxX86));
    let profile = lfi.profile("libc.so.6").unwrap().profile;

    // One test case per seed, as an automated campaign would generate.
    let cases: Vec<TestCase> = (0..20)
        .map(|seed| {
            TestCase::new(
                format!("random-io-{seed}"),
                lfi::scenario::ready_made::random_io_faults(&profile, 0.10, seed).expect("0.10 is a valid probability"),
            )
        })
        .collect();

    // Four worker threads; the shared PidginLogin workload builds each test
    // case its own world + process pair in its setup hook.
    let report = Campaign::new().cases(cases).parallelism(4).run_workload(PidginLogin::new());
    assert_eq!(report.outcomes.len(), 20);
    // The §6.1 result: at least one random scenario crashes the client.
    assert!(report.crashes().count() >= 1, "no crash found: {}", report.to_text());
    // Crashing outcomes carry non-empty replay scripts.
    for crash in report.crashes() {
        assert!(!crash.replay.is_empty());
        assert_eq!(crash.status, ExitStatus::Crashed(lfi::runtime::Signal::Abort));
    }
}

#[test]
fn interceptors_for_three_libraries_coexist_like_the_apache_setup() {
    // §6.4 interposes on libc, libapr and libaprutil at the same time.
    let world = new_world();
    let mut process = base_process(&world, true);

    let libc_plan = TriggerLoad::new(["read", "write"], 4, 1).generate(&[FaultProfile::new("libc.so.6")]);
    let apr_plan =
        TriggerLoad::new(["apr_file_read", "apr_socket_send"], 4, 2).generate(&[FaultProfile::new("libapr-1.so.0")]);
    let aprutil_plan =
        TriggerLoad::new(["apu_brigade_write"], 2, 3).generate(&[FaultProfile::new("libaprutil-1.so.0")]);
    let libc_injector = Injector::new(libc_plan);
    let apr_injector = Injector::new(apr_plan);
    let aprutil_injector = Injector::new(aprutil_plan);
    process.preload(libc_injector.synthesize_interceptor_named("lfi_libc.so"));
    process.preload(apr_injector.synthesize_interceptor_named("lfi_apr.so"));
    process.preload(aprutil_injector.synthesize_interceptor_named("lfi_aprutil.so"));

    let mut server = lfi::apps::ApacheServer::start(&mut process);
    for _ in 0..50 {
        server.handle_request(&mut process, lfi::apps::RequestKind::Php);
    }
    // All three interceptors observed traffic, none interfered with another.
    assert!(libc_injector.log().intercepted_calls > 0);
    assert!(apr_injector.log().intercepted_calls > 0);
    assert!(aprutil_injector.log().intercepted_calls > 0);
}

#[test]
fn stripped_and_unstripped_libraries_produce_the_same_profile() {
    let object = demo_library();
    let stripped = object.stripped();

    let mut lfi_full = Lfi::new();
    lfi_full.add_library(object);
    let full = lfi_full.profile("libdemo.so").unwrap().profile;

    let mut lfi_stripped = Lfi::new();
    lfi_stripped.add_library(stripped);
    let stripped = lfi_stripped.profile("libdemo.so").unwrap().profile;

    assert_eq!(full, stripped);
}

#[test]
fn exhaustive_scenario_iterates_error_codes_on_consecutive_calls() {
    let mut lfi = Lfi::with_options(ProfilerOptions::with_heuristics());
    lfi.add_library(demo_library());
    let plan = lfi.exhaustive_scenario(&["libdemo.so"]).unwrap();

    let injector = Injector::new(plan);
    let mut process = Process::new();
    process.load(demo_runtime());
    process.preload(injector.synthesize_interceptor());

    // Consecutive calls to demo_read walk through its error codes, then pass
    // through untouched.
    let first = process.call("demo_read", &[0, 0, 10]).unwrap();
    let second = process.call("demo_read", &[0, 0, 10]).unwrap();
    let third = process.call("demo_read", &[0, 0, 10]).unwrap();
    let mut injected: Vec<i64> = vec![first, second];
    injected.sort_unstable();
    assert_eq!(injected, vec![-2, -1]);
    assert_eq!(third, 10);
}

#[test]
fn mysql_suite_runs_under_an_lfi_generated_scenario() {
    let mut lfi = Lfi::with_options(ProfilerOptions::with_heuristics());
    lfi.add_library(build_libc_scaled(Platform::LinuxX86, 80).compiled.object);
    lfi.set_kernel(build_kernel(Platform::LinuxX86));
    let plan = lfi.random_scenario(&["libc.so.6"], 0.03, 5).unwrap();

    let world = new_world();
    let mut process = base_process(&world, false);
    let injector = Injector::new(plan);
    process.preload(injector.synthesize_interceptor());
    let mut server = MysqlServer::start(&mut process);
    let report = server.run_test_suite(&mut process, 150);
    assert_eq!(report.cases, 150);
    assert!(injector.log().injection_count() > 0);
    // Error-handling coverage exceeds what the clean suite can reach.
    assert!(report.overall_coverage() > 0.73);
}
