//! Integration coverage for the `Filtered`/`Composite` generator
//! combinators feeding `Campaign::from_generator`: the allow/deny/
//! max_entries interplay must shape the campaign's case list and its report,
//! not just the raw plan.

use lfi::controller::Campaign;
use lfi::profile::{ErrorReturn, FaultProfile, FunctionProfile};
use lfi::runtime::{ExitStatus, NativeLibrary, Process, Signal};
use lfi::scenario::generator::{Composite, Exhaustive, Filtered, Random, ScenarioGenerator};

fn profiles() -> Vec<FaultProfile> {
    let mut profile = FaultProfile::new("libc.so.6");
    profile.push_function(FunctionProfile {
        name: "read".into(),
        error_returns: vec![ErrorReturn::bare(-1), ErrorReturn::bare(4)],
    });
    profile.push_function(FunctionProfile {
        name: "write".into(),
        error_returns: vec![ErrorReturn::bare(-1), ErrorReturn::bare(-2)],
    });
    profile.push_function(FunctionProfile { name: "malloc".into(), error_returns: vec![ErrorReturn::bare(0)] });
    vec![profile]
}

fn setup() -> Process {
    let mut process = Process::new();
    process.load(
        NativeLibrary::builder("libc.so.6")
            .function("read", |ctx| ctx.arg(2))
            .function("write", |ctx| ctx.arg(2))
            .function("malloc", |ctx| if ctx.arg(0) > 1 << 30 { 0 } else { 0x1000 })
            .build(),
    );
    process
}

/// Read a header, write it back, allocate; a short read provokes a huge
/// allocation whose failure aborts.
fn workload(process: &mut Process) -> ExitStatus {
    let header = process.call("read", &[3, 0, 8]).unwrap_or(-1);
    if header < 0 {
        return ExitStatus::Exited(1);
    }
    if process.call("write", &[3, 0, 8]).unwrap_or(-1) < 0 {
        return ExitStatus::Exited(1);
    }
    let size = if header == 8 { 64 } else { 1 << 40 };
    if process.call("malloc", &[size]).unwrap_or(0) == 0 {
        return ExitStatus::Crashed(Signal::Abort);
    }
    ExitStatus::Exited(0)
}

#[test]
fn filtered_allow_deny_cap_shape_the_campaign() {
    let profiles = profiles();

    // allow ∩ ¬deny: read survives, write is denied, malloc never allowed.
    let generator = Filtered::new(Exhaustive).allow(["read", "write"]).deny(["write"]);
    let campaign = Campaign::from_generator(&generator, &profiles);
    assert_eq!(campaign.case_list().len(), 2, "read's two faults");
    assert!(campaign.case_list().iter().all(|case| case.plan.entries[0].function == "read"));
    let report = campaign.run(setup, workload);
    assert_eq!(report.outcomes.len(), 2);
    assert_eq!(report.failures().count(), 1, "read -> -1 is handled");
    assert_eq!(report.crashes().count(), 1, "read -> 4 provokes the fatal malloc");

    // max_entries caps *after* filtering: the cap applies to surviving
    // entries, so denying read leaves write's faults to fill it.
    let capped = Filtered::new(Exhaustive).deny(["read"]).max_entries(2);
    let campaign = Campaign::from_generator(&capped, &profiles);
    assert_eq!(campaign.case_list().len(), 2);
    assert!(campaign.case_list().iter().all(|case| case.plan.entries[0].function == "write"));
    let report = campaign.run(setup, workload);
    assert_eq!(report.failures().count(), 2);
    assert_eq!(report.crashes().count(), 0);

    // An allow-list that filtering reduces to nothing yields an empty
    // campaign, which runs to an empty report.
    let empty = Filtered::new(Exhaustive).allow(["read"]).deny(["read"]);
    let campaign = Campaign::from_generator(&empty, &profiles);
    assert_eq!(campaign.case_list().len(), 0);
    assert_eq!(campaign.run(setup, workload).outcomes.len(), 0);
}

#[test]
fn composite_of_filtered_generators_feeds_one_campaign() {
    let profiles = profiles();
    // Exhaustive read faults + random write faults, in that order; the
    // composite inherits the random part's seed.
    let generator = Composite::new()
        .push(Filtered::new(Exhaustive).allow(["read"]).max_entries(1))
        .push(Filtered::new(Random::new(1.0, 31).unwrap()).allow(["write"]));
    let plan = generator.generate(&profiles);
    assert_eq!(plan.seed, Some(31));

    let campaign = Campaign::from_generator(&generator, &profiles);
    assert_eq!(campaign.case_list().len(), 2);
    assert_eq!(campaign.case_list()[0].plan.entries[0].function, "read");
    assert_eq!(campaign.case_list()[1].plan.entries[0].function, "write");
    // Every split-out case carries the composite's seed, so the random
    // trigger stays reproducible case by case.
    assert!(campaign.case_list().iter().all(|case| case.plan.seed == Some(31)));

    let report = campaign.run(setup, workload);
    assert_eq!(report.outcomes.len(), 2);
    // read -> -1 and write -> {-1,-2} (p=1.0) both fail cleanly.
    assert_eq!(report.failures().count(), 2);
    assert_eq!(report.total_injections(), 2);

    // The same composite runs identically twice (fixed seed end to end).
    let again = Campaign::from_generator(&generator, &profiles).run(setup, workload);
    assert_eq!(again, report);
}
