//! End-to-end exploration over the libc-120-exports corpus: the
//! coverage-guided `Explorer` must find a seeded crash cell while executing
//! a fraction of the exhaustive campaign, and a mid-run kill +
//! `ExplorationStore` resume must reproduce the identical remaining batch
//! sequence.

use lfi::corpus::{build_kernel, build_libc_scaled};
use lfi::explore::ExplorationStore;
use lfi::isa::Platform;
use lfi::profiler::ProfilerOptions;
use lfi::runtime::{ExitStatus, NativeLibrary, Process, Signal};
use lfi::scenario::generator::Exhaustive;
use lfi::Lfi;

const LIBC_EXPORTS: usize = 120;

fn lfi_over_libc() -> Lfi {
    let mut lfi = Lfi::with_options(ProfilerOptions::with_heuristics());
    lfi.add_library(build_libc_scaled(Platform::LinuxX86, LIBC_EXPORTS).compiled.object);
    lfi.set_kernel(build_kernel(Platform::LinuxX86));
    lfi
}

fn setup() -> Process {
    let mut process = Process::new();
    process.load(
        NativeLibrary::builder("libc.so.6")
            .function("open", |_| 3)
            .function("write", |ctx| ctx.arg(2))
            .function("fsync", |_| 0)
            .function("close", |_| 0)
            .build(),
    );
    process
}

/// A log-structured writer: open a segment, append four records, fsync,
/// then close the data and index descriptors.  Every injected failure is
/// handled as a clean error exit — except the §3.3 undocumented EIO from
/// `close`, which the writer does not expect and dies on.  The seeded crash
/// cell is therefore (close, errno EIO, 2nd call).
fn workload(process: &mut Process) -> ExitStatus {
    if process.call("open", &[0, 0, 0]).unwrap_or(-1) < 0 {
        return ExitStatus::Exited(2);
    }
    for _ in 0..4 {
        if process.call("write", &[3, 0, 64]).unwrap_or(-1) < 0 {
            return ExitStatus::Exited(1);
        }
    }
    if process.call("fsync", &[3]).unwrap_or(-1) < 0 {
        return ExitStatus::Exited(1);
    }
    for _ in 0..2 {
        if process.call("close", &[3]).unwrap_or(-1) < 0 {
            if process.state().errno() == 5 {
                // EIO on close: unflushed data silently lost — crash.
                return ExitStatus::Crashed(Signal::Segv);
            }
            return ExitStatus::Exited(1);
        }
    }
    ExitStatus::Exited(0)
}

#[test]
fn explorer_finds_the_seeded_crash_in_a_quarter_of_the_exhaustive_budget() {
    let lfi = lfi_over_libc();
    let exhaustive_cases = lfi.campaign(&Exhaustive, &["libc.so.6"]).unwrap().case_list().len();

    let mut explorer = lfi
        .explore(&Exhaustive, &["libc.so.6"])
        .unwrap()
        .seed(2009)
        .batch_size(12)
        .halt_on_crash(true);
    assert_eq!(explorer.universe_len(), exhaustive_cases, "same fault space, adaptive order");
    let report = explorer.run(setup, workload);

    assert!(explorer.crash_found(), "the seeded (close, EIO, call 2) cell crashes the writer");
    let crash = report.crash_clusters().next().expect("one crash cluster");
    assert_eq!(crash.function.as_str(), "close");
    assert_eq!(crash.outcome.to_string(), "crash:SIGSEGV");
    assert_eq!(crash.example.errno, Some(5));
    assert_eq!(crash.example.call_ordinal, 2);
    assert_eq!(crash.stack.last().map(|s| s.as_str()), Some("close"));

    // The probe pruned every export the writer never touches, so the crash
    // is found within a quarter of the exhaustive campaign.
    assert!(
        report.cases_executed as usize * 4 <= exhaustive_cases,
        "{} cases executed vs {} exhaustive",
        report.cases_executed,
        exhaustive_cases
    );
    assert!(report.coverage.pruned_functions > 100, "almost all of the 120 exports are unreachable");
}

#[test]
fn mid_run_kill_and_store_resume_reproduce_identical_batches() {
    let lfi = lfi_over_libc();
    let build = || lfi.explore(&Exhaustive, &["libc.so.6"]).unwrap().seed(77).batch_size(6);

    // The uninterrupted run, batch report by batch report.
    let mut full = build();
    let mut full_reports = Vec::new();
    while let Some(report) = full.step(setup, workload) {
        full_reports.push(report);
    }
    assert!(full_reports.len() > 3, "enough batches to kill one mid-run");

    // The killed run: three batches, then a snapshot through the XML round
    // trip — as a new process reloading the store would see it.
    let mut killed = build();
    let mut killed_reports = Vec::new();
    for _ in 0..3 {
        killed_reports.push(killed.step(setup, workload).unwrap());
    }
    let xml = killed.store().to_xml();
    drop(killed);
    let store = ExplorationStore::from_xml(&xml).unwrap();
    let mut resumed = lfi.resume_exploration(&store, &["libc.so.6"]).unwrap();
    while let Some(report) = resumed.step(setup, workload) {
        killed_reports.push(report);
    }

    // Byte-identical batch sequence: same case names, same plans, same
    // outcomes, same order.
    assert_eq!(killed_reports, full_reports);
    assert_eq!(resumed.coverage_summary(), full.coverage_summary());
    assert_eq!(resumed.clusters(), full.clusters());

    // The exploration as a whole walked the reachable slice of the space.
    let summary = full.coverage_summary();
    assert_eq!(summary.frontier_remaining, 0);
    assert!(summary.triggered > 0);
    assert!(summary.executed < summary.universe / 4, "pruning keeps execution well under the universe");
}
