//! Closed-loop campaign control end to end: the `lfi-rules` engine drives
//! an `Explorer` through `Lfi::rules()` with the built-in crash-adjacent
//! heuristic switched off, and the pinned control-plane contract holds —
//! fixed-seed serial runs produce byte-identical decision logs, a tripped
//! circuit breaker provably suppresses further injections for its symbol,
//! and rule-driven escalation finds the seeded libc crash within the
//! built-in heuristic's case budget.

use lfi::asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
use lfi::controller::FnWorkload;
use lfi::corpus::{build_kernel, build_libc_scaled};
use lfi::isa::Platform;
use lfi::profiler::ProfilerOptions;
use lfi::rules::{Action, CircuitBreaker, ClosedLoop, Condition, Metric, Rule, RuleSet};
use lfi::runtime::{ExitStatus, NativeLibrary, Process, Signal};
use lfi::scenario::generator::Exhaustive;
use lfi::Lfi;

const LIBC_EXPORTS: usize = 120;

fn lfi_over_libc() -> Lfi {
    let mut lfi = Lfi::with_options(ProfilerOptions::with_heuristics());
    lfi.add_library(build_libc_scaled(Platform::LinuxX86, LIBC_EXPORTS).compiled.object);
    lfi.set_kernel(build_kernel(Platform::LinuxX86));
    lfi
}

fn setup() -> Process {
    let mut process = Process::new();
    process.load(
        NativeLibrary::builder("libc.so.6")
            .function("open", |_| 3)
            .function("write", |ctx| ctx.arg(2))
            .function("fsync", |_| 0)
            .function("close", |_| 0)
            .build(),
    );
    process
}

/// The log-structured writer of `tests/exploration.rs`: survives every
/// documented failure, dies on the §3.3 undocumented EIO from `close`.
fn workload(process: &mut Process) -> ExitStatus {
    if process.call("open", &[0, 0, 0]).unwrap_or(-1) < 0 {
        return ExitStatus::Exited(2);
    }
    for _ in 0..4 {
        if process.call("write", &[3, 0, 64]).unwrap_or(-1) < 0 {
            return ExitStatus::Exited(1);
        }
    }
    if process.call("fsync", &[3]).unwrap_or(-1) < 0 {
        return ExitStatus::Exited(1);
    }
    for _ in 0..2 {
        if process.call("close", &[3]).unwrap_or(-1) < 0 {
            if process.state().errno() == 5 {
                return ExitStatus::Crashed(Signal::Segv);
            }
            return ExitStatus::Exited(1);
        }
    }
    ExitStatus::Exited(0)
}

/// The acceptance rule set: escalate sibling errnos after a crash cluster,
/// then trip the per-symbol circuit breaker on the second distinct one.
fn policy() -> RuleSet {
    RuleSet::new()
        .rule(
            Rule::per_symbol(
                "escalate-on-crash",
                Condition::at_least(Metric::CrashClusters, 1.0),
                [Action::EscalateSiblings],
            )
            .once(),
        )
        .machine(CircuitBreaker::tripping_after(2).cooldown(1000))
}

/// One fixed-seed rule-driven exploration over libc-120.
fn drive(lfi: &Lfi) -> (ClosedLoop, lfi::explore::ExplorationReport) {
    let mut closed = lfi
        .rules(&Exhaustive, &["libc.so.6"], policy())
        .unwrap()
        .configure(|e| e.seed(2009).batch_size(12).halt_on_crash(true));
    let writer = FnWorkload::shared("log-writer", setup, workload);
    let report = closed.run_workload(&writer);
    (closed, report)
}

#[test]
fn decision_log_is_byte_identical_across_fixed_seed_reruns() {
    let lfi = lfi_over_libc();
    let (first_loop, _) = drive(&lfi);
    let (second_loop, _) = drive(&lfi);
    let first = first_loop.decision_log();
    assert!(!first.is_empty(), "the seeded crash fires the escalation rule");
    assert_eq!(first, second_loop.decision_log(), "pinned contract: byte-identical logs");
    // The metrics sink is as reproducible as the log.
    assert_eq!(first_loop.harness().metrics().to_ndjson(), second_loop.harness().metrics().to_ndjson());
}

#[test]
fn rule_driven_escalation_stays_within_the_builtin_heuristic_budget() {
    let lfi = lfi_over_libc();

    // The built-in crash-adjacent heuristic as the budget yardstick.
    let mut builtin = lfi
        .explore(&Exhaustive, &["libc.so.6"])
        .unwrap()
        .seed(2009)
        .batch_size(12)
        .halt_on_crash(true);
    let yardstick = builtin.run(setup, workload);
    assert!(builtin.crash_found());

    // The same exploration, heuristic off, refinement supplied by rules.
    let (closed, report) = drive(&lfi);
    assert!(closed.explorer().crash_found(), "rules find the seeded crash too");
    let crash = report.crash_clusters().next().expect("one crash cluster");
    assert_eq!(crash.function.as_str(), "close");
    assert_eq!(crash.example.errno, Some(5), "the undocumented EIO");
    assert!(
        report.cases_executed <= yardstick.cases_executed && report.cases_executed <= 13,
        "{} rule-driven cases vs {} builtin",
        report.cases_executed,
        yardstick.cases_executed
    );
    // The escalation decision is on the log, cell attribution included.
    let log = closed.decision_log();
    assert!(log.contains("rule/escalate-on-crash"), "log:\n{log}");
    assert!(log.contains("action=escalate-siblings"), "log:\n{log}");
    assert!(log.contains("sym=close"), "log:\n{log}");
}

#[test]
fn tripped_breaker_suppresses_further_injections_for_the_symbol() {
    // `flaky` crashes under every injected fault — two distinct crash
    // clusters (SIGSEGV and SIGABRT) — while `steady` fails cleanly.
    let mut lfi = Lfi::with_options(ProfilerOptions::with_heuristics());
    lfi.add_library(
        LibraryCompiler::new()
            .compile(
                &LibrarySpec::new("libcrashy.so", Platform::LinuxX86)
                    .function(FunctionSpec::scalar("steady", 1).success(0).fault(FaultSpec::returning(-1)))
                    .function(
                        FunctionSpec::scalar("flaky", 1)
                            .success(0)
                            .fault(FaultSpec::returning(-2))
                            .fault(FaultSpec::returning(-3))
                            .fault(FaultSpec::returning(-4))
                            .fault(FaultSpec::returning(-5)),
                    ),
            )
            .object,
    );
    let runtime = NativeLibrary::builder("libcrashy.so")
        .function("steady", |_| 0)
        .function("flaky", |_| 0)
        .build();
    let app = FnWorkload::shared(
        "crashy-app",
        move || {
            let mut process = Process::new();
            process.load(runtime.clone());
            process
        },
        |process: &mut Process| {
            let _ = process.call("steady", &[1]);
            // Four calls so every fault ordinal the generator planned fires.
            for _ in 0..4 {
                match process.call("flaky", &[1]) {
                    Ok(-2) | Ok(-4) => return ExitStatus::Crashed(Signal::Segv),
                    Ok(-3) | Ok(-5) => return ExitStatus::Crashed(Signal::Abort),
                    Ok(n) if n < 0 => return ExitStatus::Exited(1),
                    _ => {}
                }
            }
            ExitStatus::Exited(0)
        },
    );

    let set = RuleSet::new().machine(CircuitBreaker::tripping_after(2).cooldown(1000));
    let mut closed = lfi
        .rules(&Exhaustive, &["libcrashy.so"], set)
        .unwrap()
        .configure(|e| e.seed(7).batch_size(8));
    let report = closed.run_workload(&app);

    // The breaker tripped on the second distinct cluster and muted `flaky`.
    let log = closed.decision_log();
    assert!(log.contains("machine/circuit-breaker:Closed->Open"), "log:\n{log}");
    assert!(log.contains("sym=flaky") && log.contains("action=mute"), "log:\n{log}");
    let harness = closed.harness();
    assert!(harness.is_muted("flaky"));
    assert!(!harness.is_muted("steady"));

    // Suppression is provable: of `flaky`'s four fault cells, at most three
    // ran before the trip (both clusters appear within any three of them),
    // and the rest were parked, not executed.  `steady` was untouched.
    let (flaky_injections, steady_injections) = harness.with_engine(|engine| {
        let flaky = engine.state().symbol_named("flaky").map(|s| s.injections).unwrap_or(0);
        let steady = engine.state().symbol_named("steady").map(|s| s.injections).unwrap_or(0);
        (flaky, steady)
    });
    assert!((2..=3).contains(&flaky_injections), "{flaky_injections} flaky injections");
    assert_eq!(steady_injections, 1, "the healthy symbol keeps running");
    assert!(closed.explorer().parked_len() >= 1, "unexecuted flaky cells are parked");
    assert!(report.cases_executed >= 4, "probe + steady + the pre-trip flaky cases");
    assert!(closed.explorer().is_muted(lfi::intern::Symbol::intern("flaky")));
}
