//! Fault injection on the fault injector itself: malformed inputs, missing
//! libraries, stripped binaries, exhausted interposition chains and empty
//! profiles must produce errors (or graceful degradation), never panics.

use lfi::controller::Injector;
use lfi::isa::Platform;
use lfi::objfile::{ObjectBuilder, SharedObject};
use lfi::profile::FaultProfile;
use lfi::profiler::{Profiler, ProfilerError};
use lfi::runtime::{Process, RuntimeError};
use lfi::scenario::generator::{Random, ScenarioGenerator, TriggerLoad};
use lfi::scenario::{FaultAction, Plan, PlanEntry, ScenarioError, Trigger};
use lfi::Lfi;

#[test]
fn malformed_profile_xml_is_rejected_not_panicked() {
    let cases = [
        "",
        "garbage",
        "<plan />",
        "<profile><function /></profile>",
        "<profile><function name='f'><error-codes retval='NaN' /></function></profile>",
        "<profile><function name='f'><error-codes retval='-1'><side-effect type='weird'>1</side-effect></error-codes></function></profile>",
        "<profile><function name='f'>",
    ];
    for case in cases {
        assert!(FaultProfile::from_xml(case).is_err(), "case {case:?} unexpectedly parsed");
    }
}

#[test]
fn malformed_plan_xml_is_rejected_not_panicked() {
    let cases = [
        "",
        "<profile />",
        "<plan><function /></plan>",
        "<plan><function name='f' inject='soon' /></plan>",
        "<plan><function name='f' errno='ENOSUCHERRNO' /></plan>",
        "<plan><function name='f'><modify argument='0' op='frobnicate' value='1' /></function></plan>",
        "<plan><function name='f'><choice /></function></plan>",
    ];
    for case in cases {
        let result = Plan::from_xml(case);
        assert!(
            matches!(
                result,
                Err(ScenarioError::Xml(_) | ScenarioError::Schema { .. } | ScenarioError::InvalidNumber { .. })
            ),
            "case {case:?}"
        );
    }
}

#[test]
fn corrupted_object_files_are_rejected_at_every_truncation_point() {
    let object = ObjectBuilder::new("libtrunc.so", Platform::LinuxX86)
        .export("f", vec![lfi::isa::Inst::Ret])
        .import("g", Some("libg.so"))
        .build();
    let bytes = object.to_bytes();
    for cut in 0..bytes.len() {
        assert!(SharedObject::from_bytes(&bytes[..cut]).is_err());
    }
    // Flipping the magic is also rejected.
    let mut corrupted = bytes.clone();
    corrupted[0] ^= 0xff;
    assert!(SharedObject::from_bytes(&corrupted).is_err());
}

#[test]
fn profiling_unknown_or_empty_libraries_degrades_gracefully() {
    let profiler = Profiler::new();
    assert!(matches!(profiler.profile_library("libnothere.so"), Err(ProfilerError::UnknownLibrary { .. })));

    // A library with no exports produces an empty—but valid—profile.
    let mut lfi = Lfi::new();
    lfi.add_library(ObjectBuilder::new("libempty.so", Platform::LinuxX86).build());
    let report = lfi.profile("libempty.so").unwrap();
    assert_eq!(report.profile.function_count(), 0);
    assert_eq!(report.profile.total_faults(), 0);
    // Scenario generation over an empty profile yields an empty plan.
    let plan = lfi.exhaustive_scenario(&["libempty.so"]).unwrap();
    assert!(plan.is_empty());
    let random = lfi.random_scenario(&["libempty.so"], 0.5, 1).unwrap();
    assert!(random.is_empty());
}

#[test]
fn calls_to_missing_symbols_are_reported() {
    let mut process = Process::new();
    assert!(matches!(process.call("read", &[]), Err(RuntimeError::UnresolvedSymbol { .. })));
}

#[test]
fn interceptor_without_an_original_library_still_injects_and_passes_through() {
    // The plan intercepts a function no loaded library defines; uninjected
    // calls degrade to a no-op success instead of crashing the harness.
    let plan = Plan::new().entry(PlanEntry {
        function: "ghost".into(),
        trigger: Trigger::on_call(2),
        action: FaultAction::return_value(-1),
    });
    let injector = Injector::new(plan);
    let mut process = Process::new();
    process.preload(injector.synthesize_interceptor());
    assert_eq!(process.call("ghost", &[]).unwrap(), 0);
    assert_eq!(process.call("ghost", &[]).unwrap(), -1);
    assert_eq!(process.call("ghost", &[]).unwrap(), 0);
    assert_eq!(injector.log().injection_count(), 1);
}

#[test]
fn empty_and_degenerate_plans_are_harmless() {
    let injector = Injector::new(Plan::new());
    assert!(injector.intercepted_functions().is_empty());
    let library = injector.synthesize_interceptor();
    assert_eq!(library.symbol_count(), 0);
    assert!(injector.log().injections.is_empty());
    assert!(injector.replay_plan().is_empty());

    // Trigger-load generation with no functions or no triggers is empty.
    assert!(TriggerLoad::new(Vec::<String>::new(), 100, 1).generate(&[]).is_empty());
    assert!(TriggerLoad::new(["read"], 0, 1).generate(&[]).is_empty());
}

#[test]
fn invalid_probabilities_are_rejected_with_typed_errors() {
    // The random generator rejects NaN and out-of-range probabilities up
    // front instead of silently producing degenerate plans.
    for bad in [f64::NAN, -0.01, 1.01, f64::INFINITY] {
        assert!(
            matches!(Random::new(bad, 1), Err(ScenarioError::InvalidProbability { .. })),
            "probability {bad} was accepted"
        );
    }
    // The facade surfaces the same error through its one-chain API.
    let mut lfi = Lfi::new();
    lfi.add_library(ObjectBuilder::new("libempty.so", Platform::LinuxX86).build());
    assert!(lfi.random_scenario(&["libempty.so"], f64::NAN, 1).is_err());
}

#[test]
fn probability_bounds_are_clamped() {
    // Out-of-range probabilities are clamped rather than panicking inside the
    // RNG.
    let plan = Plan::new().with_seed(1).entry(PlanEntry {
        function: "f".into(),
        trigger: Trigger::with_probability(42.0),
        action: FaultAction::return_value(-1),
    });
    let injector = Injector::new(plan);
    let mut process = Process::new();
    process.preload(injector.synthesize_interceptor());
    assert_eq!(process.call("f", &[]).unwrap(), -1);

    let plan = Plan::new().with_seed(1).entry(PlanEntry {
        function: "f".into(),
        trigger: Trigger::with_probability(-3.0),
        action: FaultAction::return_value(-1),
    });
    let injector = Injector::new(plan);
    let mut process = Process::new();
    process.preload(injector.synthesize_interceptor());
    assert_eq!(process.call("f", &[]).unwrap(), 0);
}

#[test]
fn stack_trace_triggers_never_fire_without_a_matching_stack() {
    let plan = Plan::new().entry(PlanEntry {
        function: "read".into(),
        trigger: Trigger::on_call(1).frame("frame_that_never_exists"),
        action: FaultAction::return_value(-1),
    });
    let injector = Injector::new(plan);
    let mut process = Process::new();
    process.load(
        lfi::runtime::NativeLibrary::builder("libc.so.6")
            .function("read", |ctx| ctx.arg(2))
            .build(),
    );
    process.preload(injector.synthesize_interceptor());
    for _ in 0..5 {
        assert_eq!(process.call("read", &[0, 0, 9]).unwrap(), 9);
    }
    assert_eq!(injector.log().injection_count(), 0);
}
