//! Property-based tests over the reproduction's core data structures and
//! invariants, using the public `lfi` API.

use std::collections::BTreeSet;

use proptest::prelude::*;

use lfi::asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
use lfi::disasm::{Cfg, Disassembler};
use lfi::isa::encode::{decode_function, encode_function};
use lfi::isa::vm::{ConstEnv, Vm, VmOptions};
use lfi::isa::{BinAluOp, Cond, Inst, IsaError, Loc, Operand, Platform, Reg};
use lfi::objfile::{ObjectBuilder, ReturnType, SharedObject, Storage};
use lfi::profile::{ErrorReturn, FaultProfile, FunctionProfile, ProfileKey, ProfileStore, SideEffect};
use lfi::profiler::Profiler;
use lfi::scenario::{ArgOp, FaultAction, Plan, PlanEntry, Trigger};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg)
}

fn arb_loc() -> impl Strategy<Value = Loc> {
    prop_oneof![
        arb_reg().prop_map(Loc::Reg),
        (-256i32..256).prop_map(Loc::Stack),
        (0u8..8).prop_map(Loc::Arg),
        (0u32..0x10000).prop_map(Loc::Global),
        (0u32..0x10000).prop_map(Loc::Tls),
    ]
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![any::<i64>().prop_map(Operand::Imm), arb_loc().prop_map(Operand::Loc)]
}

fn arb_alu() -> impl Strategy<Value = BinAluOp> {
    prop_oneof![
        Just(BinAluOp::Add),
        Just(BinAluOp::Sub),
        Just(BinAluOp::And),
        Just(BinAluOp::Or),
        Just(BinAluOp::Xor),
        Just(BinAluOp::Mul),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![Just(Cond::Eq), Just(Cond::Ne), Just(Cond::Lt), Just(Cond::Le), Just(Cond::Gt), Just(Cond::Ge)]
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_loc(), any::<i64>()).prop_map(|(dst, imm)| Inst::MovImm { dst, imm }),
        (arb_loc(), arb_loc()).prop_map(|(dst, src)| Inst::Mov { dst, src }),
        (arb_alu(), arb_loc(), arb_operand()).prop_map(|(op, dst, src)| Inst::Alu { op, dst, src }),
        arb_loc().prop_map(|dst| Inst::Neg { dst }),
        (arb_loc(), arb_operand()).prop_map(|(a, b)| Inst::Cmp { a, b }),
        (0u32..64).prop_map(|target| Inst::Jmp { target }),
        (arb_cond(), 0u32..64).prop_map(|(cond, target)| Inst::JmpCond { cond, target }),
        arb_loc().prop_map(|loc| Inst::JmpIndirect { loc }),
        (0u32..32).prop_map(|sym| Inst::Call { sym }),
        arb_loc().prop_map(|loc| Inst::CallIndirect { loc }),
        (arb_reg(), arb_reg(), -128i32..128).prop_map(|(dst, base, offset)| Inst::Load { dst, base, offset }),
        (arb_reg(), -128i32..0x2000, arb_operand()).prop_map(|(base, offset, src)| Inst::Store { base, offset, src }),
        arb_reg().prop_map(|dst| Inst::LeaPicBase { dst }),
        (0u32..32).prop_map(|num| Inst::Syscall { num }),
        Just(Inst::Ret),
        Just(Inst::Nop),
    ]
}

fn arb_side_effect() -> impl Strategy<Value = SideEffect> {
    (0u32..3, "[a-z]{3,10}", 0u32..0xffff, -64i64..64).prop_map(|(kind, module, offset, value)| match kind {
        0 => SideEffect::tls(module, offset, value),
        1 => SideEffect::global(module, offset, value),
        _ => SideEffect::output_arg(module, offset % 8, value),
    })
}

fn arb_profile() -> impl Strategy<Value = FaultProfile> {
    let function = (
        "[a-z_][a-z0-9_]{0,12}",
        proptest::collection::vec((-64i64..64, proptest::collection::vec(arb_side_effect(), 0..3)), 0..4),
    )
        .prop_map(|(name, errors)| FunctionProfile {
            name,
            error_returns: errors
                .into_iter()
                .map(|(retval, side_effects)| ErrorReturn { retval, side_effects })
                .collect(),
        });
    ("lib[a-z]{2,8}", proptest::collection::vec(function, 0..6)).prop_map(|(library, functions)| FaultProfile {
        library,
        platform: Some("Linux/x86".to_owned()),
        functions,
    })
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    let entry = (
        "[a-z_][a-z0-9_]{0,12}",
        proptest::option::of(1u64..50),
        proptest::option::of(0.0f64..1.0),
        proptest::option::of(-64i64..64),
        proptest::option::of(1i64..64),
        any::<bool>(),
        proptest::collection::vec(("[a-z_]{1,8}", 0u8..6, -32i64..32), 0..3),
    )
        .prop_map(|(function, inject, probability, retval, errno, call_original, mods)| PlanEntry {
            function,
            trigger: Trigger { inject_at_call: inject, probability, stack_trace: Vec::new() },
            action: FaultAction {
                retval,
                errno,
                side_effects: Vec::new(),
                call_original,
                arg_modifications: mods
                    .into_iter()
                    .map(|(_, argument, value)| lfi::scenario::ArgModification { argument, op: ArgOp::Sub, value })
                    .collect(),
                random_choices: Vec::new(),
            },
        });
    (proptest::collection::vec(entry, 0..8), proptest::option::of(any::<u64>()))
        .prop_map(|(entries, seed)| Plan { entries, seed })
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Instruction encode/decode is a lossless round trip for any body.
    #[test]
    fn instruction_encoding_round_trips(body in proptest::collection::vec(arb_inst(), 0..40)) {
        let bytes = encode_function(&body);
        let decoded = decode_function(&bytes).unwrap();
        prop_assert_eq!(decoded, body);
    }

    /// Truncating an encoded stream anywhere never panics: it either decodes
    /// a prefix of the body or reports an error.
    #[test]
    fn truncated_instruction_streams_never_panic(body in proptest::collection::vec(arb_inst(), 1..20), cut in any::<prop::sample::Index>()) {
        let bytes = encode_function(&body);
        let cut = cut.index(bytes.len() + 1);
        let _ = decode_function(&bytes[..cut]);
    }

    /// The pre-decoded dispatch loop is outcome-identical to the reference
    /// interpreter over arbitrary bodies, arguments, call environments and
    /// step limits: same outcomes (return value, TLS/global write maps,
    /// store events, step counts) and the same dynamic errors, including
    /// step-limit exhaustion, indirect jumps out of range and falling off
    /// the end of the body.
    #[test]
    fn decoded_bodies_match_the_reference_interpreter(
        body in proptest::collection::vec(arb_inst(), 0..40),
        args in proptest::collection::vec(-8i64..8, 0..4),
        call_result in -4i64..4,
        syscall_result in -4i64..4,
        step_limit in 1u64..1500,
    ) {
        let vm = Vm::with_options(Platform::LinuxX86, VmOptions { step_limit });
        match vm.compile(&body) {
            Ok(decoded) => {
                let reference = vm.run(&body, &args, &mut ConstEnv { call_result, syscall_result });
                let fast = vm.run_decoded(&decoded, &args, &mut ConstEnv { call_result, syscall_result });
                prop_assert_eq!(reference, fast);
            }
            // The one admitted divergence: the decoded compiler rejects
            // out-of-range *static* jump targets eagerly, where the reference
            // errors only if the jump is reached.  When it does, the rejected
            // target must actually exist in the body and be out of range.
            Err(IsaError::JumpOutOfRange { target, len }) => {
                prop_assert_eq!(len, body.len());
                prop_assert!(target >= len as i64);
                prop_assert!(body.iter().any(|inst| matches!(
                    *inst,
                    Inst::Jmp { target: t } | Inst::JmpCond { target: t, .. } if i64::from(t) == target
                )));
            }
            Err(other) => prop_assert!(false, "unexpected compile error: {:?}", other),
        }
    }

    /// Object files survive a serialize/parse round trip.
    #[test]
    fn object_files_round_trip(
        name in "lib[a-z]{2,10}\\.so",
        bodies in proptest::collection::vec(proptest::collection::vec(arb_inst(), 0..12), 0..6),
        deps in proptest::collection::vec("lib[a-z]{2,8}\\.so", 0..3),
        stripped in any::<bool>(),
    ) {
        let mut builder = ObjectBuilder::new(name, Platform::LinuxX86)
            .data_symbol("errno", 0x12fff4, Storage::Tls);
        for dep in &deps {
            builder = builder.dependency(dep.clone());
        }
        for (i, body) in bodies.iter().enumerate() {
            builder = builder.export_with_signature(format!("f{i}"), ReturnType::Scalar, 2, body.clone());
        }
        let mut object = builder.build();
        if stripped {
            object = object.stripped();
        }
        let parsed = SharedObject::from_bytes(&object.to_bytes()).unwrap();
        prop_assert_eq!(parsed, object);
    }

    /// Every CFG edge targets the start of a block, every instruction belongs
    /// to exactly one block, and blocks tile the function body.
    #[test]
    fn cfgs_are_well_formed(body in proptest::collection::vec(arb_inst(), 0..40)) {
        let cfg = Cfg::build(body.clone());
        let mut covered = 0usize;
        let starts: BTreeSet<usize> = cfg.blocks().iter().map(|b| b.start).collect();
        for block in cfg.blocks() {
            prop_assert!(block.start < block.end);
            covered += block.len();
            for succ in &block.successors {
                let target = cfg.block(*succ);
                prop_assert!(starts.contains(&target.start));
            }
        }
        prop_assert_eq!(covered, body.len());
        for index in 0..body.len() {
            prop_assert!(cfg.block_containing(index).is_some());
        }
    }

    /// Fault profiles survive the XML round trip.
    #[test]
    fn fault_profiles_round_trip_through_xml(profile in arb_profile()) {
        let xml = profile.to_xml();
        let parsed = FaultProfile::from_xml(&xml).unwrap();
        prop_assert_eq!(parsed, profile);
    }

    /// Profile stores — arbitrary profiles under arbitrary keys — survive
    /// the XML round trip losslessly.
    #[test]
    fn profile_stores_round_trip_through_xml(
        entries in proptest::collection::vec((arb_profile(), any::<u64>(), any::<bool>()), 0..5),
    ) {
        let store = ProfileStore::new();
        for (profile, code_hash, keep_platform) in entries {
            let platform = if keep_platform { profile.platform.clone() } else { None };
            store.insert(ProfileKey::new(profile.library.clone(), platform, code_hash), profile);
        }
        let xml = store.to_xml();
        let parsed = ProfileStore::from_xml(&xml).unwrap();
        prop_assert_eq!(parsed, store);
    }

    /// Fault scenarios survive the XML round trip.
    #[test]
    fn plans_round_trip_through_xml(plan in arb_plan()) {
        let xml = plan.to_xml();
        let parsed = Plan::from_xml(&xml).unwrap();
        prop_assert_eq!(parsed, plan);
    }

    /// Interning is a bijection on the names seen so far: every name resolves
    /// back to itself, re-interning is stable, and distinct names get
    /// distinct symbols.
    #[test]
    fn symbols_round_trip_arbitrary_names(
        names in proptest::collection::btree_set("[a-zA-Z_][a-zA-Z0-9_.$@-]{0,20}", 1..16),
    ) {
        use lfi::intern::Symbol;
        let symbols: Vec<Symbol> = names.iter().map(|name| Symbol::intern(name)).collect();
        for (name, &symbol) in names.iter().zip(&symbols) {
            prop_assert_eq!(symbol.as_str(), name.as_str());
            prop_assert_eq!(Symbol::lookup(name), Some(symbol));
            prop_assert_eq!(Symbol::intern(name), symbol, "re-interning must be stable");
        }
        let distinct: BTreeSet<lfi::intern::Symbol> = symbols.iter().copied().collect();
        prop_assert_eq!(distinct.len(), names.len(), "distinct names must get distinct symbols");
    }

    /// Plans that reference functions no library defines never disturb the
    /// functions that do exist: armed triggers on phantom functions leave
    /// real calls passing through (and injecting) exactly as planned.
    #[test]
    fn plans_with_unknown_functions_execute_as_passthrough(
        unknown in proptest::collection::btree_set("zz_[a-z0-9_]{1,12}", 1..8),
        fire_at in 1u64..5,
    ) {
        use lfi::controller::Injector;
        use lfi::runtime::{NativeLibrary, Process};

        let mut plan = Plan::new();
        for name in &unknown {
            plan = plan.entry(PlanEntry {
                function: name.clone(),
                trigger: Trigger::on_call(1),
                action: FaultAction::return_value(-1),
            });
        }
        plan = plan.entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(fire_at),
            action: FaultAction::return_value(-1).with_errno(9),
        });

        let mut process = Process::new();
        process.load(NativeLibrary::builder("libc.so.6").function("read", |ctx| ctx.arg(2)).build());
        let injector = Injector::new(plan);
        process.preload(injector.synthesize_interceptor());

        for call in 1..=6u64 {
            let expected = if call == fire_at { -1 } else { 8 };
            prop_assert_eq!(process.call("read", &[3, 0, 8]).unwrap(), expected);
        }
        let log = injector.log();
        prop_assert_eq!(log.injection_count(), 1);
        prop_assert_eq!(log.injections[0].function_name(), "read");
    }

    /// Filtering combinators are pure restrictions: whatever the allow/deny
    /// lists and entry cap, and however many filtered generators a Composite
    /// stacks, the result never contains a plan entry that the unfiltered
    /// generators did not produce.
    #[test]
    fn composite_filtering_never_invents_plan_entries(
        profile in arb_profile(),
        allowed in proptest::collection::btree_set("[a-z_][a-z0-9_]{0,12}", 0..6),
        denied in proptest::collection::btree_set("[a-z_][a-z0-9_]{0,12}", 0..6),
        cap in 0usize..10,
        seed in 0u64..100,
    ) {
        use lfi::scenario::generator::{Composite, Exhaustive, Filtered, Random, ScenarioGenerator};

        // Make the allow-list meaningful: mix arbitrary names with real
        // function names from the profile.
        let mut allowed: Vec<String> = allowed.into_iter().collect();
        allowed.extend(profile.functions.iter().take(2).map(|f| f.name.clone()));
        let denied: Vec<String> = denied.into_iter().collect();
        let profiles = [profile];

        let exhaustive_entries = Exhaustive.generate(&profiles).entries;
        let random_entries = Random::new(0.5, seed).unwrap().generate(&profiles).entries;

        let composite = Composite::new()
            .push(Filtered::new(Exhaustive).allow(allowed.clone()).deny(denied.clone()).max_entries(cap))
            .push(Filtered::new(Random::new(0.5, seed).unwrap()).allow(allowed.clone()).deny(denied.clone()));
        let plan = composite.generate(&profiles);

        for entry in &plan.entries {
            prop_assert!(
                exhaustive_entries.contains(entry) || random_entries.contains(entry),
                "composite invented entry {:?}",
                entry
            );
            prop_assert!(allowed.contains(&entry.function));
            prop_assert!(!denied.contains(&entry.function), "deny-list ignored for {}", entry.function);
        }
        // The cap bounds the filtered-exhaustive half of the composite.
        let exhaustive_survivors = plan.entries.iter().filter(|e| e.trigger.probability.is_none()).count();
        prop_assert!(exhaustive_survivors <= cap);
    }

    /// Soundness of the profiler on corpus-style functions: every error value
    /// observed by *executing* a compiled function over its reachable fault
    /// paths is present in the statically derived profile (no false
    /// negatives for direct faults).
    #[test]
    fn profiler_finds_every_directly_returned_error(
        codes in proptest::collection::btree_set(-400i64..-1, 1..6),
        success in 0i64..3,
    ) {
        let mut spec = FunctionSpec::scalar("f", 1).success(success);
        for code in &codes {
            spec = spec.fault(FaultSpec::returning(*code).with_errno(5));
        }
        let compiled = LibraryCompiler::new()
            .compile(&LibrarySpec::new("libprop.so", Platform::LinuxX86).function(spec));

        // Execute every path in the SimISA interpreter.
        let body = decode_function(&compiled.object.code_for_name("f").unwrap().code).unwrap();
        let vm = Vm::new(Platform::LinuxX86);
        let mut observed = BTreeSet::new();
        for selector in 0..=codes.len() as i64 {
            let outcome = vm.run(&body, &[selector], &mut ConstEnv::default()).unwrap();
            observed.insert(outcome.return_value);
        }

        // Statically profile the same binary.
        let mut profiler = Profiler::new();
        profiler.add_library(compiled.object.clone());
        let profile = profiler.profile_library("libprop.so").unwrap().profile;
        let found = profile.function("f").unwrap().error_values();
        for value in observed {
            prop_assert!(found.contains(&value), "executed value {value} missing from profile {found:?}");
        }
    }

    /// The disassembler accepts every object the library compiler emits.
    #[test]
    fn compiled_libraries_always_disassemble(
        functions in proptest::collection::vec((proptest::collection::btree_set(-64i64..-1, 0..3), 0usize..20), 1..6),
    ) {
        let mut spec = LibrarySpec::new("libgen.so", Platform::LinuxX86);
        for (i, (codes, padding)) in functions.iter().enumerate() {
            let mut f = FunctionSpec::scalar(format!("f{i}"), 2).success(0).padded(*padding);
            for code in codes {
                f = f.fault(FaultSpec::returning(*code));
            }
            spec = spec.function(f);
        }
        let compiled = LibraryCompiler::new().compile(&spec);
        let disassembly = Disassembler::new().disassemble_object(&compiled.object).unwrap();
        prop_assert_eq!(disassembly.functions.len(), functions.len());
        prop_assert_eq!(disassembly.code_size, compiled.object.code_size());
    }

    /// Argument-modification operators behave like their arithmetic/bitwise
    /// definitions for all inputs.
    #[test]
    fn arg_ops_match_reference_semantics(argument in any::<i64>(), value in any::<i64>()) {
        prop_assert_eq!(ArgOp::Set.apply(argument, value), value);
        prop_assert_eq!(ArgOp::Add.apply(argument, value), argument.wrapping_add(value));
        prop_assert_eq!(ArgOp::Sub.apply(argument, value), argument.wrapping_sub(value));
        prop_assert_eq!(ArgOp::And.apply(argument, value), argument & value);
        prop_assert_eq!(ArgOp::Or.apply(argument, value), argument | value);
    }

    /// Every argument constraint the profiler infers for a direct fault path
    /// is satisfied by the very argument value that drives execution down that
    /// path — constraints never contradict the dynamic behaviour (§3.1
    /// extension, checked against the SimISA interpreter).
    #[test]
    fn inferred_argument_constraints_are_consistent_with_execution(
        codes in proptest::collection::btree_set(-400i64..-1, 1..6),
    ) {
        let mut spec = FunctionSpec::scalar("g", 2).success(0);
        for code in &codes {
            spec = spec.fault(FaultSpec::returning(*code));
        }
        let compiled = LibraryCompiler::new()
            .compile(&LibrarySpec::new("libarg.so", Platform::LinuxX86).function(spec));
        let mut profiler = Profiler::new();
        profiler.add_library(compiled.object.clone());
        let constraints = profiler.argument_constraints("libarg.so").unwrap();
        let per_value = constraints.get("g").cloned().unwrap_or_default();

        let body = decode_function(&compiled.object.code_for_name("g").unwrap().code).unwrap();
        let vm = Vm::new(Platform::LinuxX86);
        for selector in 0..=codes.len() as i64 {
            let outcome = vm.run(&body, &[selector, 0], &mut ConstEnv::default()).unwrap();
            if let Some(gates) = per_value.get(&outcome.return_value) {
                for gate in gates {
                    prop_assert!(
                        gate.holds(&[selector, 0]),
                        "constraint {} contradicts execution: arg0={} returned {}",
                        gate, selector, outcome.return_value
                    );
                }
            }
        }
    }

    /// Combining a static profile with parsed documentation never loses a
    /// statically found value and never invents one that neither source
    /// mentions (§6.3 extension).
    #[test]
    fn combined_profiles_are_exact_unions(
        codes in proptest::collection::btree_set(-400i64..-1, 1..5),
        doc_only in proptest::collection::btree_set(-900i64..-401, 0..4),
        seed in 0u64..500,
    ) {
        use lfi::docs::{CombinedProfile, DocParser, DocumentationSet, ManPage};

        let mut spec = FunctionSpec::scalar("h", 1).success(0);
        for code in &codes {
            spec = spec.fault(FaultSpec::returning(*code));
        }
        let compiled = LibraryCompiler::new()
            .compile(&LibrarySpec::new("libdoc.so", Platform::LinuxX86).function(spec));
        let mut profiler = Profiler::new();
        profiler.add_library(compiled.object.clone());
        let profile = profiler.profile_library("libdoc.so").unwrap().profile;

        let mut manual = DocumentationSet::new("libdoc.so");
        let mut page = ManPage::new("libdoc.so", "h");
        for value in codes.iter().chain(doc_only.iter()) {
            page = page.with_error_return(*value);
        }
        manual.push(page);
        let _ = seed; // the manual is rendered losslessly; the seed feeds nothing here
        let parsed = DocParser::new().parse_set("libdoc.so", &manual.render()).unwrap();
        let combined = CombinedProfile::combine(&profile, &parsed);
        let combined_values = combined.error_sets().get("h").cloned().unwrap_or_default();

        let static_values = profile.function("h").unwrap().error_values();
        let doc_values: BTreeSet<i64> = codes.union(&doc_only).copied().collect();
        let expected: BTreeSet<i64> = static_values.union(&doc_values).copied().collect();
        prop_assert_eq!(combined_values, expected);
    }
}
