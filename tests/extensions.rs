//! Integration tests for the reproduction's extension features, exercised
//! across crate boundaries through the public `lfi` API:
//!
//! * the documentation pipeline (manual rendering → parsing → combined
//!   static+documentation profiles, §6.3 extension);
//! * argument-constraint inference (§3.1 extension);
//! * runtime resolution of function-pointer calls by the interceptor
//!   (§3.1 extension);
//! * failure handling of all three when fed garbage.

use std::collections::BTreeSet;

use lfi::asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
use lfi::controller::Injector;
use lfi::corpus::{build_kernel, build_libc_scaled, build_table2_library, TABLE2};
use lfi::docs::{CombinedProfile, DocError, DocParser, DocumentationSet, Provenance, StylePolicy};
use lfi::isa::Platform;
use lfi::profiler::{score_profile, score_sets, Profiler, ProfilerOptions};
use lfi::runtime::{NativeLibrary, Process, RuntimeError};
use lfi::scenario::Plan;
use lfi::Lfi;

fn libc_profiler(exports: usize) -> (Profiler, lfi::corpus::CorpusLibrary) {
    let platform = Platform::LinuxX86;
    let library = build_libc_scaled(platform, exports);
    let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
    profiler.add_library(library.compiled.object.clone());
    profiler.set_kernel(build_kernel(platform));
    (profiler, library)
}

// ---------------------------------------------------------------------------
// Documentation pipeline
// ---------------------------------------------------------------------------

#[test]
fn combined_profile_is_a_superset_of_the_static_profile_and_never_adds_false_negatives() {
    let entry = *TABLE2.iter().find(|e| e.name == "libdaemon").unwrap();
    let library = build_table2_library(&entry, 21);
    let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
    profiler.add_library(library.compiled.object.clone());
    let static_profile = profiler.profile_library(library.name()).unwrap().profile;

    let manual = DocumentationSet::from_error_map(library.name(), &library.documentation, StylePolicy::realistic(), 5);
    let mut parsed = DocParser::new().parse_set(library.name(), &manual.render()).unwrap();
    parsed.resolve_cross_references().unwrap();
    let combined = CombinedProfile::combine(&static_profile, &parsed);

    // Superset: every statically found value survives the combination.
    let combined_sets = combined.error_sets();
    for function in &static_profile.functions {
        for value in function.error_values() {
            assert!(combined_sets[&function.name].contains(&value), "{}:{value} lost", function.name);
        }
    }

    // Against execution truth, combining can only reduce false negatives.
    let static_score = score_profile(&static_profile, &library.execution_truth);
    let combined_score = score_sets(&combined_sets, &library.execution_truth);
    assert!(combined_score.false_negatives <= static_score.false_negatives);

    // Lowering to a FaultProfile and injecting from it works end to end.
    let lowered = combined.to_fault_profile(&static_profile);
    assert!(lowered.total_faults() >= static_profile.total_faults());
    let xml = lowered.to_xml();
    assert!(lfi::profile::FaultProfile::from_xml(&xml).is_ok());
}

#[test]
fn perfect_documentation_confirms_every_static_value_it_lists() {
    let (profiler, library) = libc_profiler(40);
    let profile = profiler.profile_library("libc.so.6").unwrap().profile;
    let manual = DocumentationSet::from_error_map("libc.so.6", &library.documentation, StylePolicy::perfect(), 3);
    let parsed = DocParser::new().parse_set("libc.so.6", &manual.render()).unwrap();
    let combined = CombinedProfile::combine(&profile, &parsed);
    // Every documented function that the profiler also analyzed must have at
    // least one value confirmed by both sources.
    let mut confirmed = 0usize;
    for (function, values) in &combined.functions {
        if library.documentation.contains_key(function) && profile.function(function).is_some() {
            confirmed += values.values().filter(|p| **p == Provenance::Both).count();
        }
    }
    assert!(confirmed > 0, "perfect documentation should agree with the profiler somewhere");
}

#[test]
fn documentation_parser_failures_are_reported_not_panicked() {
    assert!(matches!(
        DocParser::new().parse_page("complete nonsense, not a man page"),
        Err(DocError::NoSections { .. })
    ));
    // A manual whose cross-reference points nowhere fails resolution cleanly.
    let mut set = DocumentationSet::new("libx.so");
    set.push(
        lfi::docs::ManPage::new("libx.so", "orphan")
            .with_style(lfi::docs::ReturnValueStyle::CrossReference("missing".into())),
    );
    let mut parsed = DocParser::new().parse_set("libx.so", &set.render()).unwrap();
    assert!(matches!(parsed.resolve_cross_references(), Err(DocError::UnresolvedCrossReference { .. })));
}

// ---------------------------------------------------------------------------
// Argument constraints
// ---------------------------------------------------------------------------

#[test]
fn argument_constraints_agree_with_the_compiled_ground_truth() {
    // Every fault path of a compiled corpus function is selected by arg0, so
    // any constraint the profiler infers for that path's return value must be
    // satisfied by the selector that drives it.
    let compiled = LibraryCompiler::new().compile(
        &LibrarySpec::new("libsel.so", Platform::LinuxX86).function(
            FunctionSpec::scalar("sel", 2)
                .success(0)
                .fault(FaultSpec::returning(-3).with_errno(9))
                .fault(FaultSpec::returning(-7))
                .fault(FaultSpec::returning(-9)),
        ),
    );
    let mut profiler = Profiler::new();
    profiler.add_library(compiled.object.clone());
    let constraints = profiler.argument_constraints("libsel.so").unwrap();
    let per_value = constraints.get("sel").expect("sel has argument-gated values");

    let ground_truth = compiled.functions.iter().find(|f| f.name == "sel").unwrap();
    for path in &ground_truth.paths {
        let Some(retval) = path.outcome.retval else { continue };
        if !path.outcome.reachable {
            continue;
        }
        if let Some(gates) = per_value.get(&retval) {
            let args = [path.selector, 0];
            for gate in gates {
                assert!(
                    gate.holds(&args),
                    "constraint {gate} for value {retval} contradicts selector {}",
                    path.selector
                );
            }
        }
    }
}

#[test]
fn argument_constraints_on_unknown_libraries_error_cleanly() {
    let profiler = Profiler::new();
    assert!(profiler.argument_constraints("libghost.so").is_err());
}

#[test]
fn unconstrained_functions_are_omitted_from_the_constraint_map() {
    // Functions with a single unconditional path (getpid, strlen, free) have
    // nothing to gate and must not appear in the constraint map, while the
    // dispatched fallible functions do.
    let (profiler, _) = libc_profiler(40);
    let constraints = profiler.argument_constraints("libc.so.6").unwrap();
    for infallible in ["getpid", "strlen", "free"] {
        assert!(!constraints.contains_key(infallible), "{infallible} has no error path to gate");
    }
    assert!(constraints.contains_key("read"), "dispatched error paths are argument-gated");
}

// ---------------------------------------------------------------------------
// Function-pointer interception, end to end
// ---------------------------------------------------------------------------

#[test]
fn exhaustive_scenario_injects_through_function_pointers() {
    // Full pipeline: profile → exhaustive scenario → interceptor; the
    // application then calls exclusively through a callback table.
    let compiled = LibraryCompiler::new().compile(
        &LibrarySpec::new("libcb.so", Platform::LinuxX86)
            .function(
                FunctionSpec::scalar("cb_read", 3)
                    .success(0)
                    .fault(FaultSpec::returning(-1).with_errno(5)),
            )
            .function(
                FunctionSpec::scalar("cb_send", 3)
                    .success(0)
                    .fault(FaultSpec::returning(-2).with_errno(32)),
            ),
    );
    let mut lfi = Lfi::new();
    lfi.add_library(compiled.object);
    let plan = lfi.exhaustive_scenario(&["libcb.so"]).unwrap();
    let injector = Injector::new(plan);

    let mut process = Process::new();
    process.load(
        NativeLibrary::builder("libcb.so")
            .function("cb_read", |ctx| ctx.arg(2))
            .function("cb_send", |ctx| ctx.arg(2))
            .build(),
    );
    process.preload(injector.synthesize_interceptor());

    let read_ptr = process.fnptr("cb_read").unwrap();
    let send_ptr = process.fnptr("cb_send").unwrap();
    let mut observed = BTreeSet::new();
    for _ in 0..4 {
        observed.insert(process.call_ptr(read_ptr, &[1, 0, 16]).unwrap());
        observed.insert(process.call_ptr(send_ptr, &[1, 0, 16]).unwrap());
    }
    assert!(observed.contains(&-1), "cb_read's own error code is injected through the pointer");
    assert!(observed.contains(&-2), "cb_send's own error code is injected through the pointer");
    assert!(injector.log().injection_count() >= 2);

    // The replay script reproduces the same injections for pointer calls.
    let replay = injector.replay_plan();
    assert!(!replay.is_empty());
    let replay_xml = replay.to_xml();
    assert_eq!(Plan::from_xml(&replay_xml).unwrap(), replay);
}

#[test]
fn stale_function_pointers_and_missing_symbols_fail_cleanly() {
    let mut process = Process::new();
    process.load(NativeLibrary::builder("libcb.so").constant("cb_read", 0).build());
    assert!(matches!(process.fnptr("cb_missing"), Err(RuntimeError::UnresolvedSymbol { .. })));
    let ptr = process.fnptr("cb_read").unwrap();
    // A fresh process knows nothing about another process's pointers.
    let mut other = Process::new();
    other.load(NativeLibrary::builder("libcb.so").constant("cb_read", 0).build());
    assert!(matches!(other.call_ptr(ptr, &[]), Err(RuntimeError::InvalidFunctionPointer { .. })));
}
