//! # lfi — a Rust reproduction of "LFI: A Practical and General Library-Level Fault Injector" (DSN 2009)
//!
//! This crate is the umbrella for the reproduction's workspace.  It re-exports
//! every component crate under a short module name and re-exports the facade
//! type [`Lfi`] at the top level, so applications can depend on a single
//! crate.  The application under test is a first-class
//! [`Workload`](controller::Workload) — a named setup/run pair (§5's start
//! script + workload) — and campaigns are streaming sessions: the whole
//! Figure 1 pipeline — profile → scenario → campaign → events → report — is
//! one chain:
//!
//! ```
//! use lfi::asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
//! use lfi::controller::{CaseEvent, FnWorkload};
//! use lfi::isa::Platform;
//! use lfi::runtime::{ExitStatus, NativeLibrary, Process};
//! use lfi::scenario::generator::Exhaustive;
//! use lfi::Lfi;
//!
//! // Build a (synthetic) shared library and its runtime behaviour.
//! let lib = LibraryCompiler::new().compile(
//!     &LibrarySpec::new("libdemo.so", Platform::LinuxX86)
//!         .function(FunctionSpec::scalar("demo_read", 3).success(0).fault(FaultSpec::returning(-1).with_errno(5))),
//! );
//! let runtime = NativeLibrary::builder("libdemo.so").function("demo_read", |ctx| ctx.arg(2)).build();
//!
//! // The application under test: fresh process per case + the workload.
//! let workload = FnWorkload::new(
//!     "demo-reader",
//!     move || {
//!         let mut process = Process::new();
//!         process.load(runtime.clone());
//!         process
//!     },
//!     |process: &mut Process| match process.call("demo_read", &[3, 0, 8]) {
//!         Ok(n) if n >= 0 => ExitStatus::Exited(0),
//!         _ => ExitStatus::Exited(1),
//!     },
//! );
//!
//! // Profile, generate an exhaustive faultload, and *start* the campaign:
//! // the session streams CaseEvents and collapses into the report.
//! let mut lfi = Lfi::with_options(lfi::profiler::ProfilerOptions::with_heuristics());
//! lfi.add_library(lib.object);
//! let mut run = lfi.campaign(&Exhaustive, &["libdemo.so"]).unwrap().parallelism(2).start(workload);
//! let outcomes = run.by_ref().filter(|e| matches!(e, CaseEvent::Outcome { .. })).count();
//! assert_eq!(outcomes, 1);
//! let report = run.into_report();
//! assert_eq!(report.outcomes.len(), 1);
//! assert_eq!(report.total_injections(), 1);
//! ```
//!
//! The pipeline mirrors the paper's architecture (Figure 1):
//!
//! | paper component | crate |
//! |---|---|
//! | library binaries (ELF/PE)          | [`objfile`] (+ [`isa`], [`asm`]) |
//! | disassembler / CFG recovery        | [`disasm`] |
//! | LFI profiler                       | [`profiler`], output in [`profile`] |
//! | structured documentation parser    | [`docs`] |
//! | fault scenarios ("faultloads")     | [`scenario`]: the `ScenarioGenerator` trait, generators, combinators |
//! | LFI controller / interceptors      | [`controller`]: `Injector`, the `Workload` trait + registry, and the `Campaign` builder with streaming `CampaignRun` sessions, over [`runtime`] |
//! | adaptive fault-space exploration   | [`explore`]: coverage-guided `Explorer` + resumable `ExplorationStore` |
//! | closed-loop campaign control       | [`rules`]: rule engine + per-symbol state machines + metrics over the `CaseEvent` stream (see [`Lfi::rules`](core::Lfi::rules)) |
//! | multi-tenant campaign service      | [`fabric`]: `Fabric` work-stealing fleet, crash-safe job handoff, wire protocol (see [`Lfi::fabric`](core::Lfi::fabric)) |
//! | evaluated libraries & applications | [`corpus`], [`apps`] |
//! | end-to-end facade & experiments    | [`core`] (re-exported as [`Lfi`]) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lfi_core::Lfi;

/// The end-to-end facade and the evaluation experiment drivers.
pub mod core {
    pub use lfi_core::*;
}

/// Interned symbols: the shared symbol table behind the dispatch fast path.
pub mod intern {
    pub use lfi_intern::*;
}

/// SimISA: the synthetic instruction set, platform ABIs and interpreter.
pub mod isa {
    pub use lfi_isa::*;
}

/// SimObj: the synthetic shared-object format.
pub mod objfile {
    pub use lfi_objfile::*;
}

/// The synthetic library compiler (`FunctionSpec` → SimISA).
pub mod asm {
    pub use lfi_asm::*;
}

/// Disassembly and control-flow-graph recovery.
pub mod disasm {
    pub use lfi_disasm::*;
}

/// Fault-profile data model and XML representation.
pub mod profile {
    pub use lfi_profile::*;
}

/// Structured library documentation, its parser, and combined
/// static+documentation profiles.
pub mod docs {
    pub use lfi_docs::*;
}

/// The LFI profiler: reverse constant propagation, side-effect analysis,
/// accuracy scoring.
pub mod profiler {
    pub use lfi_profiler::*;
}

/// The fault-scenario language, generators and ready-made libc scenarios.
pub mod scenario {
    pub use lfi_scenario::*;
}

/// The simulated process runtime (dynamic linker, dispatch chains, errno).
pub mod runtime {
    pub use lfi_runtime::*;
}

/// The LFI controller: interceptor synthesis, trigger evaluation, logs,
/// replay scripts, campaigns.
pub mod controller {
    pub use lfi_controller::*;
}

/// Coverage-guided, resumable fault-space exploration over campaigns.
pub mod explore {
    pub use lfi_explore::*;
}

/// Closed-loop campaign control: a rule engine, per-symbol state machines
/// (circuit breakers) and a structured metrics sink evaluated live over the
/// `CaseEvent` stream, with decisions fed back into the explorer frontier or
/// a fabric job's controls.
pub mod rules {
    pub use lfi_rules::*;
}

/// The multi-tenant campaign service: named jobs over one shared
/// work-stealing worker fleet, with crash-safe lease handoff and a
/// line-delimited wire protocol (in-process duplex or TCP).
pub mod fabric {
    pub use lfi_fabric::*;
}

/// Journaled binary persistence: checksummed record files, write-ahead
/// delta journals with compaction and torn-tail recovery, and
/// format-sniffing load/save for the profile and exploration stores.
pub mod store {
    pub use lfi_store::*;
}

/// The synthetic library corpus (libc, kernel image, Table 1/2 libraries).
pub mod corpus {
    pub use lfi_corpus::*;
}

/// The simulated applications (Pidgin, MySQL, Apache) and their workloads.
pub mod apps {
    pub use lfi_apps::*;
}
