//! Drivers that regenerate every table and figure of the paper's evaluation
//! (§6) plus the §3 statistics.  Each driver returns a structured result with
//! a `render()` method that prints the same rows the paper prints; the
//! `repro` binary in `lfi-bench` and the Criterion benches both call into
//! this module, and EXPERIMENTS.md records the outputs.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use lfi_apps::apache::ab::run_ab;
use lfi_apps::apache::{most_called_functions, ApacheServer, RequestKind};
use lfi_apps::mysql::sysbench::{run_oltp, OltpMode};
use lfi_apps::mysql::MysqlServer;
use lfi_apps::{base_process, new_world};
use lfi_controller::{Campaign, ExecutionPolicy, Injector, TestCase};
use lfi_corpus::survey::{DetailChannel, SurveyConfig, TABLE1_EXPECTED};
use lfi_corpus::{
    build_kernel, build_libc_scaled, build_libpcre, build_table2_corpus, libc_errno_documentation, Table2Entry,
};
use lfi_disasm::{CodeStats, Disassembler};
use lfi_docs::{CombinedProfile, DocParser, DocumentationSet, StylePolicy};
use lfi_isa::Platform;
use lfi_objfile::ReturnType;
use lfi_profile::{FaultProfile, SideEffectKind};
use lfi_profiler::{score_profile, score_sets, AccuracyReport, Profiler, ProfilerOptions};
use lfi_runtime::ExitStatus;
use lfi_scenario::generator::{Random, ReadyMade, ScenarioGenerator, TriggerLoad};

// ---------------------------------------------------------------------------
// Table 1 — how libraries expose error details
// ---------------------------------------------------------------------------

/// One measured cell of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Return type (row label in the paper).
    pub return_type: ReturnType,
    /// Error-detail channel (column label in the paper).
    pub channel: DetailChannel,
    /// Measured fraction of all surveyed functions.
    pub measured: f64,
    /// The fraction the paper reports.
    pub paper: f64,
}

/// The result of the Table 1 survey.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Result {
    /// Number of functions surveyed.
    pub functions: usize,
    /// Measured cells.
    pub rows: Vec<Table1Row>,
}

impl Table1Result {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Table 1: error-detail channels over {} functions", self.functions);
        let _ = writeln!(out, "{:<10} {:<18} {:>10} {:>10}", "Return", "Details via", "measured", "paper");
        for row in &self.rows {
            let channel = match row.channel {
                DetailChannel::None => "none",
                DetailChannel::GlobalLocation => "global location",
                DetailChannel::Arguments => "arguments",
            };
            let _ = writeln!(
                out,
                "{:<10} {:<18} {:>9.1}% {:>9.1}%",
                row.return_type.to_string(),
                channel,
                row.measured * 100.0,
                row.paper * 100.0
            );
        }
        out
    }
}

/// Runs the Table 1 survey: generate the corpus, profile every library and
/// classify each exported function by (return type, error-detail channel).
pub fn table1_survey(config: SurveyConfig) -> Table1Result {
    let corpus = lfi_corpus::survey_corpus(config);
    let mut counts: BTreeMap<(u8, u8), usize> = BTreeMap::new();
    let mut functions = 0usize;

    for library in &corpus {
        let mut profiler = Profiler::new();
        profiler.add_library(library.object.clone());
        let report = profiler.profile_library(library.object.name()).expect("survey library profiles");
        for (_, symbol) in library.object.exported_symbols() {
            let Some(signature) = symbol.signature else { continue };
            functions += 1;
            let channel = report
                .profile
                .function(&symbol.name)
                .map(|f| classify_channel(f.error_returns.iter().flat_map(|e| e.side_effects.iter())))
                .unwrap_or(DetailChannel::None);
            *counts.entry((return_type_tag(signature.return_type), channel_tag(channel))).or_insert(0) += 1;
        }
    }

    let rows = TABLE1_EXPECTED
        .iter()
        .map(|cell| {
            let count = counts
                .get(&(return_type_tag(cell.return_type), channel_tag(cell.channel)))
                .copied()
                .unwrap_or(0);
            Table1Row {
                return_type: cell.return_type,
                channel: cell.channel,
                measured: if functions == 0 { 0.0 } else { count as f64 / functions as f64 },
                paper: cell.fraction,
            }
        })
        .collect();
    Table1Result { functions, rows }
}

fn classify_channel<'a>(effects: impl Iterator<Item = &'a lfi_profile::SideEffect>) -> DetailChannel {
    let mut channel = DetailChannel::None;
    for effect in effects {
        match effect.kind {
            SideEffectKind::OutputArg => return DetailChannel::Arguments,
            SideEffectKind::Tls | SideEffectKind::Global => channel = DetailChannel::GlobalLocation,
        }
    }
    channel
}

fn return_type_tag(rt: ReturnType) -> u8 {
    match rt {
        ReturnType::Void => 0,
        ReturnType::Scalar => 1,
        ReturnType::Pointer => 2,
    }
}

fn channel_tag(c: DetailChannel) -> u8 {
    match c {
        DetailChannel::None => 0,
        DetailChannel::GlobalLocation => 1,
        DetailChannel::Arguments => 2,
    }
}

// ---------------------------------------------------------------------------
// Table 2 — profiler accuracy vs documentation
// ---------------------------------------------------------------------------

/// One row of the measured Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// The library and the paper's numbers.
    pub entry: Table2Entry,
    /// The accuracy measured against the corpus documentation model.
    pub measured: AccuracyReport,
    /// Profiling time for this library.
    pub profiling_time: Duration,
    /// Code size of the library, in bytes.
    pub code_size: usize,
    /// Exported functions.
    pub exports: usize,
}

/// The result of the Table 2 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Result {
    /// One row per library, in the paper's order.
    pub rows: Vec<Table2Row>,
}

impl Table2Result {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Table 2: profiler accuracy (paper values in parentheses)\n{:<16} {:<14} {:>9} {:>12} {:>12} {:>12}",
            "Library", "Platform", "Accuracy", "TPs", "FNs", "FPs"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:<16} {:<14} {:>7}% ({:>3}%) {:>5} ({:>4}) {:>5} ({:>3}) {:>5} ({:>3})",
                row.entry.name,
                row.entry.platform.to_string(),
                row.measured.accuracy_percent(),
                (row.entry.expected_accuracy() * 100.0).round() as u32,
                row.measured.true_positives,
                row.entry.true_positives,
                row.measured.false_negatives,
                row.entry.false_negatives,
                row.measured.false_positives,
                row.entry.false_positives,
            );
        }
        out
    }
}

/// Runs the Table 2 experiment over the whole named corpus.
pub fn table2_accuracy(seed: u64) -> Table2Result {
    let corpus = build_table2_corpus(seed);
    let rows = corpus
        .iter()
        .map(|(entry, library)| {
            let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
            profiler.add_library(library.compiled.object.clone());
            let report = profiler.profile_library(library.name()).expect("corpus library profiles");
            let measured = score_profile(&report.profile, &library.documentation);
            Table2Row {
                entry: *entry,
                measured,
                profiling_time: report.stats.duration,
                code_size: report.stats.code_size_bytes,
                exports: report.stats.functions_analyzed,
            }
        })
        .collect();
    Table2Result { rows }
}

/// The libpcre manual-inspection experiment of §6.3: accuracy against
/// execution-derived ground truth.
pub fn libpcre_accuracy(seed: u64) -> AccuracyReport {
    let library = build_libpcre(seed);
    let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
    profiler.add_library(library.compiled.object.clone());
    let report = profiler.profile_library(library.name()).expect("libpcre profiles");
    score_profile(&report.profile, &library.execution_truth)
}

// ---------------------------------------------------------------------------
// §6.3 extension — combining static analysis with parsed documentation
// ---------------------------------------------------------------------------

/// One row of the combined static+documentation accuracy experiment.
///
/// The paper notes that "should structured documentation exist and a
/// documentation parser be available, it can be combined with LFI's static
/// analysis to yield higher accuracy" (§6.3).  This experiment measures all
/// three profiles — static-only, documentation-only, and their union — against
/// execution-derived ground truth for every Table 2 library, with the manual
/// rendered realistically (vague pages, cross-references, a few stale values)
/// and recovered by [`lfi_docs::DocParser`].
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedAccuracyRow {
    /// The library and the paper's Table 2 numbers.
    pub entry: Table2Entry,
    /// Static analysis alone, scored against execution truth.
    pub static_only: AccuracyReport,
    /// Parsed documentation alone, scored against execution truth.
    pub documentation_only: AccuracyReport,
    /// The union of the two sources, scored against execution truth.
    pub combined: AccuracyReport,
}

/// The result of the combined-accuracy experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedAccuracyResult {
    /// One row per Table 2 library.
    pub rows: Vec<CombinedAccuracyRow>,
}

impl CombinedAccuracyResult {
    /// Aggregate accuracy over the whole corpus for each source.
    pub fn aggregate(&self) -> (AccuracyReport, AccuracyReport, AccuracyReport) {
        let mut static_only = AccuracyReport::default();
        let mut documentation_only = AccuracyReport::default();
        let mut combined = AccuracyReport::default();
        for row in &self.rows {
            static_only.absorb(row.static_only);
            documentation_only.absorb(row.documentation_only);
            combined.absorb(row.combined);
        }
        (static_only, documentation_only, combined)
    }

    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Combined static+documentation accuracy vs execution truth (§6.3 extension)\n{:<16} {:<14} {:>10} {:>10} {:>10}",
            "Library", "Platform", "Static", "Docs", "Combined"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:<16} {:<14} {:>9}% {:>9}% {:>9}%",
                row.entry.name,
                row.entry.platform.to_string(),
                row.static_only.accuracy_percent(),
                row.documentation_only.accuracy_percent(),
                row.combined.accuracy_percent(),
            );
        }
        let (static_only, docs, combined) = self.aggregate();
        let _ = writeln!(
            out,
            "{:<16} {:<14} {:>9}% {:>9}% {:>9}%",
            "aggregate",
            "",
            static_only.accuracy_percent(),
            docs.accuracy_percent(),
            combined.accuracy_percent(),
        );
        out
    }
}

/// Runs the combined-accuracy experiment over the Table 2 corpus.
pub fn combined_accuracy(seed: u64) -> CombinedAccuracyResult {
    let corpus = build_table2_corpus(seed);
    let rows = corpus
        .iter()
        .enumerate()
        .map(|(index, (entry, library))| {
            let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
            profiler.add_library(library.compiled.object.clone());
            let report = profiler.profile_library(library.name()).expect("corpus library profiles");

            // Render the library's manual realistically and parse it back.
            let manual = DocumentationSet::from_error_map(
                library.name(),
                &library.documentation,
                StylePolicy::realistic(),
                seed.wrapping_add(index as u64),
            );
            let mut parsed = DocParser::new()
                .parse_set(library.name(), &manual.render())
                .expect("generated manual parses");
            parsed.resolve_cross_references().expect("generated manuals have resolvable references");

            let combined_profile = CombinedProfile::combine(&report.profile, &parsed);
            CombinedAccuracyRow {
                entry: *entry,
                static_only: score_profile(&report.profile, &library.execution_truth),
                documentation_only: score_sets(&parsed.error_sets(), &library.execution_truth),
                combined: score_sets(&combined_profile.error_sets(), &library.execution_truth),
            }
        })
        .collect();
    CombinedAccuracyResult { rows }
}

// ---------------------------------------------------------------------------
// §3.1 ablation — the two unsound filtering heuristics
// ---------------------------------------------------------------------------

/// Aggregate numbers for one profiler configuration in the heuristics
/// ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeuristicsCell {
    /// Total error values reported across the corpus (each one is a fault the
    /// exhaustive scenario would inject).
    pub reported_values: usize,
    /// Accuracy against the documentation model.
    pub vs_documentation: AccuracyReport,
    /// Accuracy against execution-derived ground truth.
    pub vs_execution: AccuracyReport,
}

/// The result of the heuristics ablation: the §3.1 filtering heuristics are
/// unsound (they can drop genuine faults), so the paper disables them by
/// default; this experiment quantifies the trade-off on the Table 2 corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeuristicsAblationResult {
    /// Both heuristics disabled (the paper's default).
    pub conservative: HeuristicsCell,
    /// Both heuristics enabled.
    pub with_heuristics: HeuristicsCell,
}

impl HeuristicsAblationResult {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Heuristics ablation over the Table 2 corpus (§3.1)");
        let _ = writeln!(
            out,
            "{:<26} {:>16} {:>16} {:>16}",
            "Configuration", "reported values", "acc. vs docs", "acc. vs truth"
        );
        for (label, cell) in
            [("conservative (default)", self.conservative), ("heuristics enabled", self.with_heuristics)]
        {
            let _ = writeln!(
                out,
                "{:<26} {:>16} {:>15}% {:>15}%",
                label,
                cell.reported_values,
                cell.vs_documentation.accuracy_percent(),
                cell.vs_execution.accuracy_percent()
            );
        }
        out
    }
}

/// Runs the heuristics ablation over the Table 2 corpus.
pub fn heuristics_ablation(seed: u64) -> HeuristicsAblationResult {
    let corpus = build_table2_corpus(seed);
    let measure = |options: ProfilerOptions| -> HeuristicsCell {
        let mut reported_values = 0usize;
        let mut vs_documentation = AccuracyReport::default();
        let mut vs_execution = AccuracyReport::default();
        for (_, library) in &corpus {
            let mut profiler = Profiler::with_options(options);
            profiler.add_library(library.compiled.object.clone());
            let report = profiler.profile_library(library.name()).expect("corpus library profiles");
            reported_values += report.profile.functions.iter().map(|f| f.error_values().len()).sum::<usize>();
            vs_documentation.absorb(score_profile(&report.profile, &library.documentation));
            vs_execution.absorb(score_profile(&report.profile, &library.execution_truth));
        }
        HeuristicsCell { reported_values, vs_documentation, vs_execution }
    };
    HeuristicsAblationResult {
        conservative: measure(ProfilerOptions::conservative()),
        with_heuristics: measure(ProfilerOptions::with_heuristics()),
    }
}

// ---------------------------------------------------------------------------
// §3.1 extension — argument-dependent error values
// ---------------------------------------------------------------------------

/// One example of an argument-gated error value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgDependenceExample {
    /// The exported function.
    pub function: String,
    /// The gated error return value.
    pub value: i64,
    /// Human-readable constraints ("arg0 == 2 && arg1 != 0").
    pub constraints: String,
}

/// The result of the argument-dependence analysis over one library.
///
/// §3.1 lists argument-dependent error codes (the `read`/`EWOULDBLOCK`
/// example) as a source of false positives that symbolic reasoning about
/// arguments could eliminate; this experiment runs the reproduction's
/// lightweight constraint inference ([`lfi_profiler::ArgConstraint`]) over a
/// profiled library and reports how much of the fault profile is
/// argument-gated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgDependenceResult {
    /// The analyzed library.
    pub library: String,
    /// Exported functions analyzed.
    pub functions_analyzed: usize,
    /// Functions with at least one argument-gated error value.
    pub functions_with_constraints: usize,
    /// Total error values in the fault profile.
    pub total_error_values: usize,
    /// Error values gated by at least one argument constraint.
    pub constrained_values: usize,
    /// A few example constraints, for the report.
    pub examples: Vec<ArgDependenceExample>,
}

impl ArgDependenceResult {
    /// Renders the summary in the repro harness's format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Argument-dependent error values in {} (§3.1 extension)", self.library);
        let _ = writeln!(
            out,
            "  exported functions analyzed: {}   with argument-gated errors: {}",
            self.functions_analyzed, self.functions_with_constraints
        );
        let _ = writeln!(
            out,
            "  error values in profile: {}   argument-gated: {} ({:.0}%)",
            self.total_error_values,
            self.constrained_values,
            if self.total_error_values == 0 {
                0.0
            } else {
                self.constrained_values as f64 / self.total_error_values as f64 * 100.0
            }
        );
        for example in &self.examples {
            let _ = writeln!(
                out,
                "  e.g. {} returns {} only when {}",
                example.function, example.value, example.constraints
            );
        }
        out
    }
}

/// Runs the argument-dependence analysis over the libc corpus.
pub fn argument_dependence(exports: usize) -> ArgDependenceResult {
    let platform = Platform::LinuxX86;
    let library = build_libc_scaled(platform, exports);
    let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
    profiler.add_library(library.compiled.object.clone());
    profiler.set_kernel(build_kernel(platform));
    let report = profiler.profile_library(library.name()).expect("libc profiles");
    let constraints = profiler.argument_constraints(library.name()).expect("libc constraint analysis");

    let total_error_values: usize = report.profile.functions.iter().map(|f| f.error_values().len()).sum();
    let mut constrained_values = 0usize;
    let mut examples = Vec::new();
    for function in &report.profile.functions {
        let Some(per_value) = constraints.get(&function.name) else {
            continue;
        };
        for value in function.error_values() {
            if let Some(gates) = per_value.get(&value) {
                constrained_values += 1;
                if examples.len() < 3 {
                    let rendered: Vec<String> = gates.iter().map(ToString::to_string).collect();
                    examples.push(ArgDependenceExample {
                        function: function.name.clone(),
                        value,
                        constraints: rendered.join(" && "),
                    });
                }
            }
        }
    }
    ArgDependenceResult {
        library: library.name().to_owned(),
        functions_analyzed: report.stats.functions_analyzed,
        functions_with_constraints: constraints.len(),
        total_error_values,
        constrained_values,
        examples,
    }
}

// ---------------------------------------------------------------------------
// Tables 3 and 4 — runtime overhead
// ---------------------------------------------------------------------------

/// The trigger counts used by the paper's overhead experiments.
pub const TRIGGER_COUNTS: &[usize] = &[0, 10, 100, 500, 1000];

/// One measured cell of Table 3 or 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadRow {
    /// Number of triggers in the fault plan (0 = baseline, no LFI).
    pub triggers: usize,
    /// Measured metric: seconds for Table 3, transactions/second for Table 4.
    pub value: f64,
}

/// The result of an overhead experiment: one series per workload.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadResult {
    /// Experiment title.
    pub title: String,
    /// Metric label (e.g. "seconds" or "txns/sec").
    pub metric: String,
    /// Workload label → measured series.
    pub series: Vec<(String, Vec<OverheadRow>)>,
}

impl OverheadResult {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} ({})", self.title, self.metric);
        let mut header = format!("{:<18}", "Triggers");
        for (label, _) in &self.series {
            header.push_str(&format!("{label:>16}"));
        }
        let _ = writeln!(out, "{header}");
        let rows = self.series.first().map_or(0, |(_, rows)| rows.len());
        for index in 0..rows {
            let triggers = self.series[0].1[index].triggers;
            let label = if triggers == 0 {
                "Baseline (no LFI)".to_owned()
            } else {
                format!("{triggers} triggers")
            };
            let mut line = format!("{label:<18}");
            for (_, series) in &self.series {
                line.push_str(&format!("{:>16.3}", series[index].value));
            }
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// The worst relative overhead across every series, in percent (Table 3/4
    /// should stay in the low single digits).
    pub fn max_overhead_percent(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for (_, rows) in &self.series {
            let Some(baseline) = rows.iter().find(|r| r.triggers == 0) else {
                continue;
            };
            for row in rows {
                let overhead = if self.metric.contains("txns") {
                    (baseline.value - row.value) / baseline.value
                } else {
                    (row.value - baseline.value) / baseline.value
                };
                worst = worst.max(overhead * 100.0);
            }
        }
        worst
    }
}

fn apache_profiles() -> Vec<FaultProfile> {
    let platform = Platform::LinuxX86;
    let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
    profiler.add_library(build_libc_scaled(platform, 80).compiled.object);
    profiler.add_library(lfi_corpus::libc::build_apr_scaled(platform, 40).compiled.object);
    profiler.add_library(lfi_corpus::libc::build_aprutil_scaled(platform, 30).compiled.object);
    profiler.set_kernel(build_kernel(platform));
    profiler
        .profile_all()
        .expect("apache libraries profile")
        .into_iter()
        .map(|r| r.profile)
        .collect()
}

/// How many times each Table 3/4 cell is measured.  The best of the
/// repetitions is reported, which suppresses host-side noise (allocator
/// growth, page faults, scheduling) that would otherwise dwarf the small
/// trigger-evaluation overhead the experiment is trying to expose.
pub const OVERHEAD_REPS: usize = 3;

/// Table 3: Apache + AB completion time for `requests` requests, for both
/// workloads and every trigger count.
pub fn table3_apache_overhead(requests: u64, seed: u64) -> OverheadResult {
    let profiles = apache_profiles();
    // One untimed end-to-end pass grows the heap and touches every code path
    // before any timed cell runs, so the first (baseline) cell is not
    // penalized for being first.
    for kind in [RequestKind::StaticHtml, RequestKind::Php] {
        let world = new_world();
        let mut process = base_process(&world, true);
        let mut server = ApacheServer::start(&mut process);
        let _ = run_ab(&mut server, &mut process, kind, requests / 4 + 1);
    }
    let mut series = Vec::new();
    for (label, kind) in [("Static HTML", RequestKind::StaticHtml), ("PHP", RequestKind::Php)] {
        let mut rows = Vec::new();
        for &triggers in TRIGGER_COUNTS {
            let mut best = f64::INFINITY;
            for _ in 0..OVERHEAD_REPS {
                let world = new_world();
                let mut process = base_process(&world, true);
                if triggers > 0 {
                    let top = most_called_functions(triggers.min(300));
                    let plan = TriggerLoad::new(top, triggers, seed).generate(&profiles);
                    let injector = Injector::new(plan);
                    process.preload(injector.synthesize_interceptor());
                }
                let mut server = ApacheServer::start(&mut process);
                // Warm up the server's own caches before the timed run.
                let _ = run_ab(&mut server, &mut process, kind, requests / 10 + 1);
                let report = run_ab(&mut server, &mut process, kind, requests);
                best = best.min(report.completion_seconds());
            }
            rows.push(OverheadRow { triggers, value: best });
        }
        series.push((label.to_owned(), rows));
    }
    OverheadResult {
        title: format!("Table 3: Apache httpd + AB, completion time of {requests} requests"),
        metric: "seconds".to_owned(),
        series,
    }
}

/// Table 4: MySQL + SysBench OLTP throughput for both workloads and every
/// trigger count.
pub fn table4_mysql_overhead(transactions: u64, seed: u64) -> OverheadResult {
    let platform = Platform::LinuxX86;
    let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
    profiler.add_library(build_libc_scaled(platform, 80).compiled.object);
    profiler.set_kernel(build_kernel(platform));
    let profiles = vec![profiler.profile_library("libc.so.6").expect("libc profiles").profile];
    let top: Vec<&str> = vec!["send", "malloc", "free", "write", "read", "recv", "fsync", "open", "close", "socket"];

    // Untimed end-to-end warm-up pass (see `table3_apache_overhead`).
    for mode in [OltpMode::ReadOnly, OltpMode::ReadWrite] {
        let world = new_world();
        let mut process = base_process(&world, false);
        let mut server = MysqlServer::start(&mut process);
        for i in 0..100 {
            let _ = server.insert(&mut process, i, true);
        }
        let _ = run_oltp(&mut server, &mut process, mode, transactions / 4 + 1);
    }
    let mut series = Vec::new();
    for (label, mode) in [("Read-only", OltpMode::ReadOnly), ("Read/Write", OltpMode::ReadWrite)] {
        let mut rows = Vec::new();
        for &triggers in TRIGGER_COUNTS {
            let mut best = 0.0f64;
            for _ in 0..OVERHEAD_REPS {
                let world = new_world();
                let mut process = base_process(&world, false);
                if triggers > 0 {
                    let plan = TriggerLoad::new(top.iter().copied(), triggers, seed).generate(&profiles);
                    let injector = Injector::new(plan);
                    process.preload(injector.synthesize_interceptor());
                }
                let mut server = MysqlServer::start(&mut process);
                for i in 0..100 {
                    let _ = server.insert(&mut process, i, true);
                }
                // Warm-up transactions before the timed run.
                let _ = run_oltp(&mut server, &mut process, mode, transactions / 10 + 1);
                let report = run_oltp(&mut server, &mut process, mode, transactions);
                best = best.max(report.throughput());
            }
            rows.push(OverheadRow { triggers, value: best });
        }
        series.push((label.to_owned(), rows));
    }
    OverheadResult {
        title: format!("Table 4: MySQL + SysBench OLTP, {transactions} transactions"),
        metric: "txns/sec".to_owned(),
        series,
    }
}

// ---------------------------------------------------------------------------
// §6.2 — profiling efficiency
// ---------------------------------------------------------------------------

/// One row of the profiling-time experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct EfficiencyRow {
    /// Library name.
    pub library: String,
    /// Exported functions.
    pub exports: usize,
    /// Code size in bytes.
    pub code_size: usize,
    /// Profiling time.
    pub duration: Duration,
    /// Longest propagation chain observed.
    pub max_hops: usize,
}

/// The result of the efficiency experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct EfficiencyResult {
    /// One row per profiled library, smallest first.
    pub rows: Vec<EfficiencyRow>,
}

impl EfficiencyResult {
    /// Renders the §6.2 summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Profiling efficiency (§6.2)\n{:<18} {:>10} {:>12} {:>12} {:>6}",
            "Library", "exports", "code bytes", "time (ms)", "hops"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:<18} {:>10} {:>12} {:>12.2} {:>6}",
                row.library,
                row.exports,
                row.code_size,
                row.duration.as_secs_f64() * 1000.0,
                row.max_hops
            );
        }
        out
    }
}

/// Profiles a small, a large and a very large library and reports times —
/// the libdmx (0.2 s) … libxml2 (20 s) range of §6.2.
pub fn profiling_efficiency(seed: u64) -> EfficiencyResult {
    let entries = [lfi_corpus::named::libdmx_entry(), lfi_corpus::named::libxml2_linux_entry()];
    let mut rows = Vec::new();
    for entry in entries {
        let library = lfi_corpus::build_table2_library(&entry, seed);
        let mut profiler = Profiler::new();
        profiler.add_library(library.compiled.object.clone());
        let report = profiler.profile_library(library.name()).expect("library profiles");
        rows.push(EfficiencyRow {
            library: format!("{}.so", entry.name),
            exports: report.stats.functions_analyzed,
            code_size: report.stats.code_size_bytes,
            duration: report.stats.duration,
            max_hops: report.stats.max_propagation_hops,
        });
    }
    // Full-scale libc rounds out the range.
    let libc = build_libc_scaled(Platform::LinuxX86, lfi_corpus::libc::LIBC_EXPORTS);
    let mut profiler = Profiler::new();
    profiler.add_library(libc.compiled.object.clone());
    profiler.set_kernel(build_kernel(Platform::LinuxX86));
    let report = profiler.profile_library("libc.so.6").expect("libc profiles");
    rows.push(EfficiencyRow {
        library: "libc.so.6".to_owned(),
        exports: report.stats.functions_analyzed,
        code_size: report.stats.code_size_bytes,
        duration: report.stats.duration,
        max_hops: report.stats.max_propagation_hops,
    });
    rows.sort_by_key(|r| r.code_size);
    EfficiencyResult { rows }
}

// ---------------------------------------------------------------------------
// §6.1 — effectiveness: the Pidgin bug and MySQL coverage
// ---------------------------------------------------------------------------

/// The result of the Pidgin bug hunt.
#[derive(Debug, Clone, PartialEq)]
pub struct PidginHuntResult {
    /// Number of login attempts executed before the first crash.
    pub attempts_until_crash: Option<usize>,
    /// The exit status of the crashing run.
    pub crash_status: Option<ExitStatus>,
    /// Whether the replay script reproduced the same crash.
    pub replay_reproduced: bool,
    /// Number of injections recorded in the crashing run.
    pub injections_in_crash: usize,
}

impl PidginHuntResult {
    /// Renders the §6.1 narrative.
    pub fn render(&self) -> String {
        match (self.attempts_until_crash, self.crash_status) {
            (Some(attempts), Some(status)) => format!(
                "Pidgin bug hunt: crash after {attempts} login attempt(s): {status}; {} injection(s); replay reproduced: {}\n",
                self.injections_in_crash, self.replay_reproduced
            ),
            _ => "Pidgin bug hunt: no crash observed\n".to_owned(),
        }
    }
}

/// Runs Pidgin login test cases under a stop-on-first-crash policy and
/// returns the report.  The [`lfi_apps::PidginLogin`] workload builds a
/// fresh simulated world per case in its `setup` hook.
fn pidgin_campaign(cases: Vec<TestCase>) -> lfi_controller::CampaignReport {
    Campaign::new()
        .cases(cases)
        .policy(ExecutionPolicy::run_all().stop_on_first_crash())
        .run_workload(lfi_apps::PidginLogin::new())
}

/// Hunts for the Pidgin DNS-resolver bug with the §6.1 configuration: a
/// campaign of random I/O fault scenarios over libc with 10% injection
/// probability, stopped at the first crash (bounded by `max_attempts` test
/// cases).
pub fn pidgin_bug_hunt(max_attempts: usize, seed: u64) -> PidginHuntResult {
    let platform = Platform::LinuxX86;
    let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
    profiler.add_library(build_libc_scaled(platform, 80).compiled.object);
    profiler.set_kernel(build_kernel(platform));
    let libc_profile = profiler.profile_library("libc.so.6").expect("libc profiles").profile;

    // One test case per seed, as an automated campaign would generate them.
    // Faultloads are generated in batches so a crash found early (the
    // common outcome) does not pay for plans the stop-on-first-crash policy
    // would only discard.
    const BATCH: usize = 16;
    let probability = 0.10;
    let mut attempts_run = 0usize;
    for batch_start in (0..max_attempts).step_by(BATCH) {
        let cases: Vec<TestCase> = (batch_start..(batch_start + BATCH).min(max_attempts))
            .map(|attempt| {
                let generator = ReadyMade::random_io(probability, seed.wrapping_add(attempt as u64))
                    .expect("0.10 is a valid probability");
                TestCase::new(
                    format!("random-io-{attempt:03}"),
                    generator.generate(std::slice::from_ref(&libc_profile)),
                )
            })
            .collect();
        let report = pidgin_campaign(cases);
        attempts_run += report.outcomes.len();
        let crash = report.crashes().next().cloned();
        if let Some(crash) = crash {
            // Reproduce with the replay script, as the paper does before
            // attaching gdb.
            let replay_report = pidgin_campaign(vec![TestCase::new("replay", crash.replay.clone())]);
            return PidginHuntResult {
                attempts_until_crash: Some(attempts_run),
                crash_status: Some(crash.status),
                replay_reproduced: replay_report.outcomes.first().is_some_and(|o| o.status == crash.status),
                injections_in_crash: crash.injection_count(),
            };
        }
    }
    PidginHuntResult {
        attempts_until_crash: None,
        crash_status: None,
        replay_reproduced: false,
        injections_in_crash: 0,
    }
}

/// The result of the MySQL coverage experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct MysqlCoverageResult {
    /// Overall coverage of the unmodified test suite.
    pub baseline_overall: f64,
    /// Overall coverage with LFI's random libc scenario active.
    pub injected_overall: f64,
    /// ibuf-module coverage without injection.
    pub baseline_ibuf: f64,
    /// ibuf-module coverage with injection.
    pub injected_ibuf: f64,
    /// SIGSEGV crashes observed during the injected run.
    pub crashes: usize,
}

impl MysqlCoverageResult {
    /// Renders the §6.1 coverage table.
    pub fn render(&self) -> String {
        format!(
            "MySQL test-suite coverage (§6.1)\n{:<24} {:>10} {:>10}\n{:<24} {:>9.1}% {:>9.1}%\n{:<24} {:>9.1}% {:>9.1}%\ncrashes during injected run: {}\n",
            "", "baseline", "with LFI",
            "overall", self.baseline_overall * 100.0, self.injected_overall * 100.0,
            "innodb ibuf module", self.baseline_ibuf * 100.0, self.injected_ibuf * 100.0,
            self.crashes
        )
    }
}

/// Runs the MySQL test suite with and without a random libc fault scenario
/// and reports the coverage improvement (§6.1).
pub fn mysql_coverage(cases: usize, seed: u64) -> MysqlCoverageResult {
    let platform = Platform::LinuxX86;
    let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
    profiler.add_library(build_libc_scaled(platform, 80).compiled.object);
    profiler.set_kernel(build_kernel(platform));
    let libc_profile = profiler.profile_library("libc.so.6").expect("libc profiles").profile;

    // Baseline run.
    let world = new_world();
    let mut process = base_process(&world, false);
    let mut server = MysqlServer::start(&mut process);
    let baseline = server.run_test_suite(&mut process, cases);

    // Injected run: random scenario over all of libc, fully automatic.
    let plan = Random::new(0.05, seed).expect("0.05 is a valid probability").generate(&[libc_profile]);
    let world = new_world();
    let mut process = base_process(&world, false);
    let injector = Injector::new(plan);
    process.preload(injector.synthesize_interceptor());
    let mut server = MysqlServer::start(&mut process);
    let injected = server.run_test_suite(&mut process, cases);

    MysqlCoverageResult {
        baseline_overall: baseline.overall_coverage(),
        injected_overall: injected.overall_coverage(),
        baseline_ibuf: baseline.coverage.module("innodb_ibuf"),
        injected_ibuf: injected.coverage.module("innodb_ibuf"),
        crashes: injected.crashes,
    }
}

// ---------------------------------------------------------------------------
// §3.1 statistics, doc mismatches, Figure 2
// ---------------------------------------------------------------------------

/// The indirect-call / indirect-branch statistics of §3.1.
pub fn indirect_statistics(config: SurveyConfig) -> CodeStats {
    let corpus = lfi_corpus::survey_corpus(config);
    let mut stats = CodeStats::default();
    for library in &corpus {
        let disassembly = Disassembler::new()
            .disassemble_object(&library.object)
            .expect("survey library disassembles");
        stats += disassembly.stats();
    }
    stats
}

/// Renders the §3.1 statistics the way the paper quotes them.
pub fn render_indirect_statistics(stats: &CodeStats) -> String {
    format!(
        "Indirection statistics (§3.1): {} functions, {} branches ({} indirect, {:.2}%), {} calls ({} indirect, {:.2}%)\n",
        stats.functions,
        stats.total_branches(),
        stats.indirect_branches,
        stats.indirect_branch_fraction() * 100.0,
        stats.total_calls(),
        stats.indirect_calls,
        stats.indirect_call_fraction() * 100.0
    )
}

/// One documentation-mismatch finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocMismatch {
    /// Function whose documentation is incomplete.
    pub function: String,
    /// Values the binary can produce that the documentation omits.
    pub undocumented: Vec<i64>,
}

/// Reproduces the documentation-mismatch anecdotes: `close` can set EIO,
/// `modify_ldt` can set ENOMEM, `htmlParseDocument` can return 1 (§3.1,
/// §3.3).
pub fn doc_mismatches(seed: u64) -> Vec<DocMismatch> {
    let platform = Platform::LinuxX86;
    let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
    profiler.add_library(build_libc_scaled(platform, 80).compiled.object);
    profiler.set_kernel(build_kernel(platform));
    let libc_profile = profiler.profile_library("libc.so.6").expect("libc profiles").profile;
    let docs = libc_errno_documentation();

    let mut findings = Vec::new();
    for function in ["close", "modify_ldt"] {
        let Some(profile) = libc_profile.function(function) else {
            continue;
        };
        let Some(documented) = docs.get(function) else { continue };
        let found: Vec<i64> = profile
            .error_returns
            .iter()
            .flat_map(|e| e.side_effects.iter())
            .filter(|s| s.kind == SideEffectKind::Tls)
            .map(|s| s.value)
            .filter(|v| !documented.contains(v))
            .collect();
        if !found.is_empty() {
            let mut undocumented = found;
            undocumented.sort_unstable();
            undocumented.dedup();
            findings.push(DocMismatch { function: function.to_owned(), undocumented });
        }
    }

    // libxml2's htmlParseDocument: documented 0/-1, can also return 1.
    let libxml2 = lfi_corpus::named::build_libxml2_with_doc_mismatch(seed);
    let undocumented = libxml2.undocumented_behaviour();
    if let Some(values) = undocumented.get("htmlParseDocument") {
        findings.push(DocMismatch {
            function: "htmlParseDocument".to_owned(),
            undocumented: values.iter().copied().collect(),
        });
    }
    findings
}

/// Renders the doc-mismatch findings.
pub fn render_doc_mismatches(findings: &[DocMismatch]) -> String {
    let mut out = String::from("Documentation mismatches found by the profiler (§3.1/§3.3)\n");
    for finding in findings {
        let _ = writeln!(out, "  {}: undocumented values {:?}", finding.function, finding.undocumented);
    }
    out
}

/// Figure 2: the control flow graph of one exported library function, in
/// Graphviz DOT form.
pub fn figure2_cfg_dot() -> String {
    // The paper's Figure 2 shows a small exported function (`_Z4blahi`) with a
    // diamond of constant returns; the libdmx corpus functions have the same
    // shape.
    let library = lfi_corpus::build_table2_library(&lfi_corpus::named::libdmx_entry(), 1);
    let object = &library.compiled.object;
    let (_, symbol) = object.exported_symbols().next().expect("libdmx has exports");
    let name = symbol.name.clone();
    let function = Disassembler::new().disassemble_function(object, &name).expect("function disassembles");
    function.cfg.to_dot(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper_distribution_on_a_small_corpus() {
        let result = table1_survey(SurveyConfig { libraries: 2, functions_per_library: 250, seed: 3 });
        assert_eq!(result.functions, 500);
        for row in &result.rows {
            assert!((row.measured - row.paper).abs() < 0.06, "{row:?}");
        }
        assert!(result.render().contains("Table 1"));
    }

    #[test]
    fn table2_small_entries_match_paper_counts() {
        // Full Table 2 runs in the repro binary; spot-check two small
        // libraries here.
        let rows = table2_accuracy(11);
        let libdmx = rows.rows.iter().find(|r| r.entry.name == "libdmx").unwrap();
        assert_eq!(libdmx.measured.true_positives, libdmx.entry.true_positives);
        assert_eq!(libdmx.measured.false_negatives, libdmx.entry.false_negatives);
        let libgtkspell = rows.rows.iter().find(|r| r.entry.name == "libgtkspell").unwrap();
        assert_eq!(libgtkspell.measured.accuracy_percent(), 100);
        assert!(rows.render().contains("libdmx"));
    }

    #[test]
    fn libpcre_accuracy_is_84_percent() {
        let report = libpcre_accuracy(7);
        assert_eq!(report.accuracy_percent(), 84);
    }

    #[test]
    fn heuristics_trade_spurious_faults_for_accuracy_vs_documentation() {
        let result = heuristics_ablation(11);
        // Disabling the heuristics can only report more (or equally many)
        // values: they are pure filters.
        assert!(result.conservative.reported_values >= result.with_heuristics.reported_values);
        // The extra values are success returns and boolean predicates, which
        // the documentation does not list as faults, so accuracy against
        // documentation improves when the heuristics are on.
        assert!(result.with_heuristics.vs_documentation.accuracy() >= result.conservative.vs_documentation.accuracy());
        assert!(result.render().contains("conservative"));
    }

    #[test]
    fn argument_dependence_finds_gated_error_values() {
        let result = argument_dependence(60);
        assert!(result.functions_analyzed >= 40);
        assert!(result.functions_with_constraints > 0);
        assert!(result.constrained_values > 0);
        assert!(result.constrained_values <= result.total_error_values);
        assert!(!result.examples.is_empty());
        assert!(result.render().contains("argument-gated"));
    }

    #[test]
    fn combining_documentation_with_static_analysis_raises_accuracy() {
        let result = combined_accuracy(11);
        assert_eq!(result.rows.len(), 18);
        let (static_only, docs_only, combined) = result.aggregate();
        // The paper's claim: the combination beats static analysis alone.  It
        // should also beat the (realistically imperfect) documentation alone,
        // and never fall below either source.
        assert!(combined.accuracy() > static_only.accuracy(), "{combined:?} vs {static_only:?}");
        assert!(combined.accuracy() >= docs_only.accuracy(), "{combined:?} vs {docs_only:?}");
        // The union can only lose accuracy through false positives, never
        // through new false negatives.
        assert!(combined.false_negatives <= static_only.false_negatives);
        assert!(combined.false_negatives <= docs_only.false_negatives);
        assert!(result.render().contains("aggregate"));
    }

    #[test]
    fn overhead_experiments_have_small_overhead_and_the_right_shape() {
        let table3 = table3_apache_overhead(120, 5);
        assert_eq!(table3.series.len(), 2);
        assert_eq!(table3.series[0].1.len(), TRIGGER_COUNTS.len());
        assert!(table3.render().contains("Baseline"));

        let table4 = table4_mysql_overhead(60, 5);
        // Read-only throughput exceeds read/write throughput at baseline.
        let ro = table4.series[0].1[0].value;
        let rw = table4.series[1].1[0].value;
        assert!(ro > rw, "read-only {ro} vs read-write {rw}");
        assert!(table4.render().contains("txns/sec"));
    }

    #[test]
    fn pidgin_hunt_finds_and_replays_the_crash() {
        let result = pidgin_bug_hunt(50, 2009);
        assert!(result.attempts_until_crash.is_some());
        assert!(result.replay_reproduced);
        assert!(result.render().contains("crash"));
    }

    #[test]
    fn mysql_coverage_improves_with_injection() {
        let result = mysql_coverage(200, 17);
        assert!(result.baseline_overall > 0.70 && result.baseline_overall < 0.76);
        assert!(result.injected_overall >= result.baseline_overall + 0.01);
        assert!(result.injected_ibuf > result.baseline_ibuf);
        assert!(result.render().contains("ibuf"));
    }

    #[test]
    fn indirect_statistics_show_rare_indirection() {
        let stats = indirect_statistics(SurveyConfig { libraries: 2, functions_per_library: 200, seed: 1 });
        assert!(stats.indirect_branch_fraction() < 0.05);
        assert!(stats.indirect_call_fraction() < 0.05);
        assert!(render_indirect_statistics(&stats).contains("Indirection"));
    }

    #[test]
    fn doc_mismatches_include_the_papers_anecdotes() {
        let findings = doc_mismatches(3);
        let close = findings.iter().find(|f| f.function == "close").unwrap();
        assert_eq!(close.undocumented, vec![5]); // EIO
        let modify_ldt = findings.iter().find(|f| f.function == "modify_ldt").unwrap();
        assert!(modify_ldt.undocumented.contains(&12)); // ENOMEM
        let html = findings.iter().find(|f| f.function == "htmlParseDocument").unwrap();
        assert_eq!(html.undocumented, vec![1]);
        assert!(render_doc_mismatches(&findings).contains("close"));
    }

    #[test]
    fn figure2_is_valid_dot_with_multiple_blocks() {
        let dot = figure2_cfg_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.matches("label=").count() >= 2);
    }
}
