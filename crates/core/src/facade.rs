use lfi_objfile::SharedObject;
use lfi_profile::FaultProfile;
use lfi_profiler::{LibraryProfileReport, Profiler, ProfilerError, ProfilerOptions};
use lfi_scenario::{generate, Plan};

/// The top-level LFI facade: "profile the target application's shared
/// libraries … then conduct fault injection experiments using various fault
/// scenarios" (§2).
///
/// `Lfi` owns a [`Profiler`]; the controller side is exposed through
/// [`lfi_controller::Injector`] and [`lfi_controller::run_campaign`], which
/// take the plans this facade generates.
///
/// ```
/// use lfi_asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
/// use lfi_core::Lfi;
/// use lfi_isa::Platform;
///
/// let lib = LibraryCompiler::new().compile(
///     &LibrarySpec::new("libdemo.so", Platform::LinuxX86)
///         .function(FunctionSpec::scalar("demo_read", 3).success(0).fault(FaultSpec::returning(-1).with_errno(5))),
/// );
/// let mut lfi = Lfi::new();
/// lfi.add_library(lib.object);
/// let report = lfi.profile("libdemo.so").unwrap();
/// let plan = lfi.exhaustive_scenario(&["libdemo.so"]).unwrap();
/// assert_eq!(report.profile.function_count(), 1);
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Lfi {
    profiler: Profiler,
}

impl Lfi {
    /// Creates a facade with the paper's default (conservative) profiler
    /// options.
    pub fn new() -> Self {
        Self { profiler: Profiler::new() }
    }

    /// Creates a facade with explicit profiler options.
    pub fn with_options(options: ProfilerOptions) -> Self {
        Self { profiler: Profiler::with_options(options) }
    }

    /// Registers a library binary of the target application.
    pub fn add_library(&mut self, object: SharedObject) {
        self.profiler.add_library(object);
    }

    /// Registers the kernel image used to resolve syscall error codes.
    pub fn set_kernel(&mut self, object: SharedObject) {
        self.profiler.set_kernel(object);
    }

    /// Access to the underlying profiler.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Profiles one registered library.
    ///
    /// # Errors
    ///
    /// See [`Profiler::profile_library`].
    pub fn profile(&self, library: &str) -> Result<LibraryProfileReport, ProfilerError> {
        self.profiler.profile_library(library)
    }

    /// Profiles every registered library in parallel.
    ///
    /// # Errors
    ///
    /// See [`Profiler::profile_all`].
    pub fn profile_all(&self) -> Result<Vec<LibraryProfileReport>, ProfilerError> {
        self.profiler.profile_all()
    }

    fn profiles_of(&self, libraries: &[&str]) -> Result<Vec<FaultProfile>, ProfilerError> {
        libraries
            .iter()
            .map(|name| self.profile(name).map(|report| report.profile))
            .collect()
    }

    /// Generates the exhaustive scenario over the given libraries (§4).
    ///
    /// # Errors
    ///
    /// Fails when any named library is unknown or cannot be disassembled.
    pub fn exhaustive_scenario(&self, libraries: &[&str]) -> Result<Plan, ProfilerError> {
        Ok(generate::exhaustive(&self.profiles_of(libraries)?))
    }

    /// Generates the random scenario over the given libraries (§4).
    ///
    /// # Errors
    ///
    /// Fails when any named library is unknown or cannot be disassembled.
    pub fn random_scenario(
        &self,
        libraries: &[&str],
        probability: f64,
        seed: u64,
    ) -> Result<Plan, ProfilerError> {
        Ok(generate::random(&self.profiles_of(libraries)?, probability, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
    use lfi_isa::Platform;

    fn demo() -> SharedObject {
        LibraryCompiler::new()
            .compile(
                &LibrarySpec::new("libdemo.so", Platform::LinuxX86)
                    .function(FunctionSpec::scalar("a", 1).success(0).fault(FaultSpec::returning(-1)))
                    .function(FunctionSpec::scalar("b", 1).success(0).fault(FaultSpec::returning(-2)).fault(FaultSpec::returning(-3))),
            )
            .object
    }

    #[test]
    fn facade_profiles_and_generates_scenarios() {
        let mut lfi = Lfi::with_options(ProfilerOptions::with_heuristics());
        lfi.add_library(demo());
        lfi.set_kernel(lfi_corpus::build_kernel(Platform::LinuxX86));
        let report = lfi.profile("libdemo.so").unwrap();
        assert_eq!(report.profile.function_count(), 2);
        let exhaustive = lfi.exhaustive_scenario(&["libdemo.so"]).unwrap();
        assert_eq!(exhaustive.len(), 3);
        let random = lfi.random_scenario(&["libdemo.so"], 0.1, 1).unwrap();
        assert_eq!(random.len(), 2);
        assert!(lfi.profile_all().is_ok());
        assert!(lfi.profile("libmissing.so").is_err());
        assert!(lfi.profiler().library("libdemo.so").is_some());
    }
}
