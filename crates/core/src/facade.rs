use std::error::Error;
use std::fmt;

use lfi_controller::Campaign;
use lfi_explore::{ExplorationStore, Explorer};
use lfi_objfile::SharedObject;
use lfi_profile::{FaultProfile, ProfileKey, ProfileStore};
use lfi_profiler::{LibraryProfileReport, Profiler, ProfilerError, ProfilerOptions, ProfilingStats};
use lfi_rules::{ClosedLoop, RuleSet};
use lfi_scenario::generator::{Exhaustive, Random, ScenarioGenerator};
use lfi_scenario::{Plan, ScenarioError};

/// Errors surfaced by the [`Lfi`] facade: profiling failures and scenario
/// generator misconfiguration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LfiError {
    /// Profiling a registered library failed.
    Profiler(ProfilerError),
    /// A scenario generator rejected its configuration.
    Scenario(ScenarioError),
}

impl fmt::Display for LfiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LfiError::Profiler(e) => write!(f, "profiling failed: {e}"),
            LfiError::Scenario(e) => write!(f, "scenario generation failed: {e}"),
        }
    }
}

impl Error for LfiError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LfiError::Profiler(e) => Some(e),
            LfiError::Scenario(e) => Some(e),
        }
    }
}

impl From<ProfilerError> for LfiError {
    fn from(value: ProfilerError) -> Self {
        LfiError::Profiler(value)
    }
}

impl From<ScenarioError> for LfiError {
    fn from(value: ScenarioError) -> Self {
        LfiError::Scenario(value)
    }
}

/// The top-level LFI facade: "profile the target application's shared
/// libraries … then conduct fault injection experiments using various fault
/// scenarios" (§2).
///
/// `Lfi` owns a [`Profiler`] and a [`ProfileStore`]: every generated profile
/// is stored under a key derived from the whole profiling configuration —
/// every registered library's content fingerprint, the profiler options and
/// the kernel image — so campaigns and repeated
/// [`Lfi::profile`]/[`Lfi::profiles_of`] calls replay prior results instead
/// of re-analyzing.  Scenario generation is pluggable through
/// [`ScenarioGenerator`] ([`Lfi::scenario`]), and [`Lfi::campaign`] hands the
/// generated faultload straight to a fluent [`Campaign`] builder whose
/// `start` turns a [`Workload`](lfi_controller::Workload) into a streaming
/// session, so the whole Figure 1 pipeline — profile → scenario → campaign →
/// events → report — is one chain:
///
/// ```
/// use lfi_asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
/// use lfi_controller::{CaseEvent, FnWorkload};
/// use lfi_core::Lfi;
/// use lfi_isa::Platform;
/// use lfi_profiler::ProfilerOptions;
/// use lfi_runtime::{ExitStatus, NativeLibrary, Process};
/// use lfi_scenario::generator::Exhaustive;
///
/// // The target application's shared library...
/// let lib = LibraryCompiler::new().compile(
///     &LibrarySpec::new("libdemo.so", Platform::LinuxX86)
///         .function(FunctionSpec::scalar("demo_read", 3).success(0).fault(FaultSpec::returning(-1).with_errno(5))),
/// );
/// // ...and its runtime behaviour, as the dynamic linker would load it.
/// let runtime = NativeLibrary::builder("libdemo.so").function("demo_read", |ctx| ctx.arg(2)).build();
///
/// let mut lfi = Lfi::with_options(ProfilerOptions::with_heuristics());
/// lfi.add_library(lib.object);
/// let mut run = lfi
///     .campaign(&Exhaustive, &["libdemo.so"])     // profile + generate + build
///     .unwrap()
///     .parallelism(2)                             // independent processes per case
///     .start(FnWorkload::new(
///         "demo-reader",
///         move || {
///             let mut process = Process::new();
///             process.load(runtime.clone());
///             process
///         },
///         |process| match process.call("demo_read", &[3, 0, 8]) {
///             Ok(n) if n >= 0 => ExitStatus::Exited(0),
///             _ => ExitStatus::Exited(1),
///         },
///     ));
/// // The session streams incremental events; collapse the rest on demand.
/// let injections = run.by_ref().filter(|e| matches!(e, CaseEvent::Injection { .. })).count();
/// assert_eq!(injections, 1);
/// let report = run.into_report();
/// assert_eq!(report.outcomes.len(), 1);
/// assert_eq!(report.failures().count(), 1);
/// assert_eq!(report.total_injections(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Lfi {
    profiler: Profiler,
    store: ProfileStore,
}

impl Lfi {
    /// Creates a facade with the paper's default (conservative) profiler
    /// options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a facade with explicit profiler options.
    pub fn with_options(options: ProfilerOptions) -> Self {
        Self { profiler: Profiler::with_options(options), store: ProfileStore::new() }
    }

    /// Registers a library binary of the target application.
    ///
    /// Registering a new or modified object invalidates the whole
    /// [`ProfileStore`]: import resolution may consult *any* registered
    /// library, so a changed library set can change any stored profile.
    /// Re-registering a byte-identical object keeps the store warm.
    pub fn add_library(&mut self, object: SharedObject) {
        if self.profiler.add_library(object) {
            self.store.clear();
        }
    }

    /// Registers the kernel image used to resolve syscall error codes.
    /// Registering a different image invalidates the [`ProfileStore`].
    pub fn set_kernel(&mut self, object: SharedObject) {
        if self.profiler.set_kernel(object) {
            self.store.clear();
        }
    }

    /// Access to the underlying profiler.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// The store of previously generated profiles — export it with
    /// [`ProfileStore::to_xml`] to persist profiling work across runs.
    pub fn profile_store(&self) -> &ProfileStore {
        &self.store
    }

    /// Replaces the profile store, e.g. with one restored through
    /// [`ProfileStore::from_xml`].  Entries only replay when their key —
    /// library name, platform, and a hash folding *every* registered
    /// library's content fingerprint with the profiler options and kernel
    /// image — matches the current configuration, so loading a stale store
    /// is safe: any changed dependency misses.
    pub fn load_profile_store(&mut self, store: ProfileStore) {
        self.store = store;
    }

    /// Saves the profile store to `path` in the `lfi-store` binary snapshot
    /// format (magic + version + CRC-checked record).  XML via
    /// [`ProfileStore::to_xml`] remains the human-readable interchange
    /// format; the binary file is the fast path for large stores.
    ///
    /// # Errors
    ///
    /// [`lfi_store::StoreError`] naming the path on IO failure.
    pub fn save_profile_store(&self, path: impl AsRef<std::path::Path>) -> Result<(), lfi_store::StoreError> {
        lfi_store::save_profile_store(path, &self.store)
    }

    /// Loads and installs a profile store from `path`, sniffing the on-disk
    /// format by magic — binary snapshots decode through the checked codec,
    /// anything else parses as the XML interchange format.  The same
    /// staleness contract as [`Lfi::load_profile_store`] applies.
    ///
    /// # Errors
    ///
    /// [`lfi_store::StoreError`] naming the path, byte offset and detected
    /// format; truncated or hostile input never panics.
    pub fn load_profile_store_file(&mut self, path: impl AsRef<std::path::Path>) -> Result<(), lfi_store::StoreError> {
        self.store = lfi_store::load_profile_store(path)?;
        Ok(())
    }

    /// Loads an [`ExplorationStore`] checkpoint from `path`, sniffing the
    /// format by magic: a binary snapshot, a recovered exploration journal
    /// (snapshot plus durable deltas), or the XML interchange format.
    /// Pair with [`Lfi::resume_exploration`] to continue the run.
    ///
    /// # Errors
    ///
    /// [`lfi_store::StoreError`] naming the path, byte offset and detected
    /// format; truncated or hostile input never panics.
    pub fn load_exploration(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<ExplorationStore, lfi_store::StoreError> {
        lfi_store::load_exploration(path)
    }

    /// Saves an [`ExplorationStore`] checkpoint to `path` as a binary
    /// snapshot — the counterpart of [`Lfi::load_exploration`].
    ///
    /// # Errors
    ///
    /// [`lfi_store::StoreError`] naming the path on IO failure.
    pub fn save_exploration(
        &self,
        path: impl AsRef<std::path::Path>,
        store: &ExplorationStore,
    ) -> Result<(), lfi_store::StoreError> {
        lfi_store::save_exploration(path, store)
    }

    /// The store key under which `library`'s profile is (or would be)
    /// cached, when the library is registered.
    ///
    /// The hash folds the *entire* profiling configuration — every registered
    /// library's name and content fingerprint (import resolution may route
    /// through any of them), the profiler options and the kernel image — with
    /// the stable FNV-1a from [`lfi_objfile::stable_hash`], *not*
    /// `DefaultHasher`: a changed dependency must miss even through
    /// [`Lfi::load_profile_store`], and a persisted store must keep replaying
    /// across toolchain upgrades.
    fn profile_key(&self, library: &str) -> Option<ProfileKey> {
        use lfi_objfile::stable_hash::{fold, fold_u64, OFFSET_BASIS};
        let object = self.profiler.library(library)?;
        let mut hash = OFFSET_BASIS;
        for name in self.profiler.library_names() {
            hash = fold(hash, name.as_bytes());
            hash = fold_u64(hash, self.profiler.library_fingerprint(name).unwrap_or(0));
        }
        hash = fold_u64(hash, self.profiler.options().stable_hash());
        hash = fold_u64(hash, u64::from(self.profiler.kernel_fingerprint().is_some()));
        hash = fold_u64(hash, self.profiler.kernel_fingerprint().unwrap_or(0));
        Some(ProfileKey::new(library, Some(object.platform().to_string()), hash))
    }

    /// A report replayed from the store: the stored profile with stats that
    /// say so (`served_from_store`, zero analysis time).
    fn replay_report(&self, library: &str, profile: &FaultProfile) -> LibraryProfileReport {
        let stats = ProfilingStats {
            functions_analyzed: profile.function_count(),
            code_size_bytes: self.profiler.library(library).map_or(0, SharedObject::code_size),
            served_from_store: true,
            ..ProfilingStats::default()
        };
        LibraryProfileReport { profile: profile.clone(), stats }
    }

    /// Profiles one registered library, replaying the [`ProfileStore`] when
    /// it already holds a profile for this exact binary, options and kernel.
    ///
    /// # Errors
    ///
    /// See [`Profiler::profile_library`].
    pub fn profile(&self, library: &str) -> Result<LibraryProfileReport, ProfilerError> {
        let Some(key) = self.profile_key(library) else {
            return Err(ProfilerError::UnknownLibrary { name: library.to_owned() });
        };
        if let Some(stored) = self.store.get(&key) {
            return Ok(self.replay_report(library, &stored));
        }
        let report = self.profiler.profile_library(library)?;
        self.store.insert(key, report.profile.clone());
        Ok(report)
    }

    /// Profiles every registered library: stored profiles replay instantly,
    /// the rest run through the profiler's worker pool as one batch.
    ///
    /// # Errors
    ///
    /// See [`Profiler::profile_all`].
    pub fn profile_all(&self) -> Result<Vec<LibraryProfileReport>, ProfilerError> {
        let names: Vec<String> = self.profiler.library_names().map(str::to_owned).collect();
        let mut reports: Vec<Option<LibraryProfileReport>> = names.iter().map(|_| None).collect();
        let mut missing: Vec<&str> = Vec::new();
        let mut missing_slots: Vec<(usize, ProfileKey)> = Vec::new();
        for (slot, name) in names.iter().enumerate() {
            let key = self.profile_key(name).expect("library_names() yields registered libraries");
            if let Some(stored) = self.store.get(&key) {
                reports[slot] = Some(self.replay_report(name, &stored));
            } else {
                missing.push(name);
                missing_slots.push((slot, key));
            }
        }
        for ((slot, key), report) in missing_slots.into_iter().zip(self.profiler.profile_many(&missing)?) {
            self.store.insert(key, report.profile.clone());
            reports[slot] = Some(report);
        }
        Ok(reports.into_iter().map(|r| r.expect("every slot filled")).collect())
    }

    /// The fault profiles of the named libraries, profiling on demand (and
    /// replaying the [`ProfileStore`] where possible).
    ///
    /// # Errors
    ///
    /// Fails when any named library is unknown or cannot be disassembled.
    pub fn profiles_of(&self, libraries: &[&str]) -> Result<Vec<FaultProfile>, ProfilerError> {
        libraries.iter().map(|name| self.profile(name).map(|report| report.profile)).collect()
    }

    /// Profiles the named libraries and runs any [`ScenarioGenerator`] over
    /// the result (§4's pluggable faultload generation).
    ///
    /// # Errors
    ///
    /// Fails when any named library is unknown or cannot be disassembled.
    pub fn scenario<G>(&self, generator: &G, libraries: &[&str]) -> Result<Plan, LfiError>
    where
        G: ScenarioGenerator + ?Sized,
    {
        Ok(generator.generate(&self.profiles_of(libraries)?))
    }

    /// Profiles the named libraries, runs the generator, and returns a
    /// [`Campaign`] pre-populated with one test case per generated plan
    /// entry — attach observers, an execution policy and a parallelism
    /// degree, then hand a [`Workload`](lfi_controller::Workload) to
    /// [`Campaign::start`] for a streaming session (or [`Campaign::run`]
    /// for the blocking report).
    ///
    /// # Errors
    ///
    /// Fails when any named library is unknown or cannot be disassembled.
    pub fn campaign<G>(&self, generator: &G, libraries: &[&str]) -> Result<Campaign, LfiError>
    where
        G: ScenarioGenerator + ?Sized,
    {
        Ok(Campaign::from_generator(generator, &self.profiles_of(libraries)?))
    }

    /// Profiles the named libraries, runs the generator, and returns an
    /// [`Explorer`] whose fault-space universe is the generated plan's cell
    /// set and whose crash escalation draws sibling errnos from the fresh
    /// profiles — the adaptive counterpart of [`Lfi::campaign`].  Configure
    /// (seed, batch size, budgets), then call [`Explorer::run`] or drive it
    /// batch by batch with [`Explorer::step`], snapshotting
    /// [`Explorer::store`] for kill-safe resumption.
    ///
    /// # Errors
    ///
    /// Fails when any named library is unknown or cannot be disassembled.
    pub fn explore<G>(&self, generator: &G, libraries: &[&str]) -> Result<Explorer, LfiError>
    where
        G: ScenarioGenerator + ?Sized,
    {
        let profiles = self.profiles_of(libraries)?;
        let plan = generator.generate(&profiles);
        Ok(Explorer::new(&plan, profiles))
    }

    /// Profiles the named libraries, runs the generator, and returns a
    /// [`ClosedLoop`]: an [`Explorer`] whose refinement policy is the given
    /// [`RuleSet`] instead of the built-in crash-adjacent heuristic.  Rules
    /// evaluate live on the campaign's event stream (the control-plane
    /// contract pinned in [`lfi_rules`]); frontier-shaping decisions —
    /// escalate, mute, re-weight — apply between batches, and `Mute` also
    /// vetoes in-flight cases through the gated workload.  Drive it with
    /// [`ClosedLoop::run_workload`] or batch by batch with
    /// [`ClosedLoop::step_workload`], then read
    /// [`ClosedLoop::decision_log`] for the byte-stable audit trail.
    ///
    /// # Errors
    ///
    /// Fails when any named library is unknown or cannot be disassembled.
    pub fn rules<G>(&self, generator: &G, libraries: &[&str], set: RuleSet) -> Result<ClosedLoop, LfiError>
    where
        G: ScenarioGenerator + ?Sized,
    {
        let profiles = self.profiles_of(libraries)?;
        let plan = generator.generate(&profiles);
        Ok(ClosedLoop::new(Explorer::new(&plan, profiles), set))
    }

    /// Rebuilds an [`Explorer`] from a persisted [`ExplorationStore`]
    /// (profiling the named libraries for the escalation profiles), resuming
    /// a killed exploration exactly where its last snapshot left off.
    ///
    /// # Errors
    ///
    /// Fails when any named library is unknown or cannot be disassembled.
    pub fn resume_exploration(&self, store: &ExplorationStore, libraries: &[&str]) -> Result<Explorer, LfiError> {
        Ok(Explorer::resume(self.profiles_of(libraries)?, store))
    }

    /// A [`FabricBuilder`](lfi_fabric::FabricBuilder) for the long-running
    /// multi-tenant service: register workloads, pick a fleet size, and
    /// `build()` a [`Fabric`](lfi_fabric::Fabric) that multiplexes many
    /// named jobs — each a plan from [`Lfi::scenario`] — over one shared
    /// work-stealing worker fleet with crash-safe lease handoff.
    ///
    /// The facade itself stays per-call stateless here: plans come from the
    /// profiling pipeline above, the fabric owns the execution side.
    pub fn fabric(&self) -> lfi_fabric::FabricBuilder {
        lfi_fabric::Fabric::builder()
    }

    /// Generates the exhaustive scenario over the given libraries (§4);
    /// shorthand for [`Lfi::scenario`] with [`Exhaustive`].
    ///
    /// # Errors
    ///
    /// Fails when any named library is unknown or cannot be disassembled.
    pub fn exhaustive_scenario(&self, libraries: &[&str]) -> Result<Plan, LfiError> {
        self.scenario(&Exhaustive, libraries)
    }

    /// Generates the random scenario over the given libraries (§4);
    /// shorthand for [`Lfi::scenario`] with [`Random`].
    ///
    /// # Errors
    ///
    /// Fails when the probability is NaN or outside `[0, 1]`, or when any
    /// named library is unknown or cannot be disassembled.
    pub fn random_scenario(&self, libraries: &[&str], probability: f64, seed: u64) -> Result<Plan, LfiError> {
        self.scenario(&Random::new(probability, seed)?, libraries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
    use lfi_isa::Platform;
    use lfi_runtime::{ExitStatus, NativeLibrary, Process};
    use lfi_scenario::generator::Filtered;

    fn demo() -> SharedObject {
        LibraryCompiler::new()
            .compile(
                &LibrarySpec::new("libdemo.so", Platform::LinuxX86)
                    .function(FunctionSpec::scalar("a", 1).success(0).fault(FaultSpec::returning(-1)))
                    .function(
                        FunctionSpec::scalar("b", 1)
                            .success(0)
                            .fault(FaultSpec::returning(-2))
                            .fault(FaultSpec::returning(-3)),
                    ),
            )
            .object
    }

    #[test]
    fn facade_profiles_and_generates_scenarios() {
        let mut lfi = Lfi::with_options(ProfilerOptions::with_heuristics());
        lfi.add_library(demo());
        lfi.set_kernel(lfi_corpus::build_kernel(Platform::LinuxX86));
        let report = lfi.profile("libdemo.so").unwrap();
        assert_eq!(report.profile.function_count(), 2);
        let exhaustive = lfi.exhaustive_scenario(&["libdemo.so"]).unwrap();
        assert_eq!(exhaustive.len(), 3);
        let random = lfi.random_scenario(&["libdemo.so"], 0.1, 1).unwrap();
        assert_eq!(random.len(), 2);
        assert!(lfi.profile_all().is_ok());
        assert!(lfi.profile("libmissing.so").is_err());
        assert!(lfi.profiler().library("libdemo.so").is_some());
    }

    #[test]
    fn facade_accepts_any_generator_and_reports_typed_errors() {
        let mut lfi = Lfi::new();
        lfi.add_library(demo());

        // A combinator generator through the same entry point.
        let narrowed = lfi
            .scenario(&Filtered::new(Exhaustive).allow(["b"]).max_entries(1), &["libdemo.so"])
            .unwrap();
        assert_eq!(narrowed.intercepted_functions(), vec!["b"]);
        assert_eq!(narrowed.len(), 1);

        // Unknown libraries and invalid probabilities map to distinct
        // LfiError variants (and both render a message).
        let missing = lfi.scenario(&Exhaustive, &["libmissing.so"]).unwrap_err();
        assert!(matches!(missing, LfiError::Profiler(_)));
        assert!(missing.to_string().contains("profiling failed"));
        assert!(missing.source().is_some());
        let invalid = lfi.random_scenario(&["libdemo.so"], f64::NAN, 1).unwrap_err();
        assert!(matches!(invalid, LfiError::Scenario(ScenarioError::InvalidProbability { .. })));
        assert!(invalid.source().is_some());
    }

    #[test]
    fn profile_store_replays_and_invalidates() {
        let mut lfi = Lfi::new();
        lfi.add_library(demo());
        let cold = lfi.profile("libdemo.so").unwrap();
        assert!(!cold.stats.served_from_store);
        assert_eq!(lfi.profile_store().len(), 1);

        // Second call replays the stored profile, byte for byte.
        let warm = lfi.profile("libdemo.so").unwrap();
        assert!(warm.stats.served_from_store);
        assert_eq!(warm.profile, cold.profile);
        assert_eq!(warm.stats.functions_analyzed, cold.stats.functions_analyzed);

        // profile_all mixes replayed and fresh work transparently.
        let all = lfi.profile_all().unwrap();
        assert_eq!(all.len(), 1);
        assert!(all[0].stats.served_from_store);

        // The XML round-trip reloads into a store the facade accepts.
        let exported = lfi.profile_store().to_xml();
        let mut restored = Lfi::new();
        restored.add_library(demo());
        restored.load_profile_store(lfi_profile::ProfileStore::from_xml(&exported).unwrap());
        let replayed = restored.profile("libdemo.so").unwrap();
        assert!(replayed.stats.served_from_store);
        assert_eq!(replayed.profile, cold.profile);

        // Re-registering identical content keeps the store; new content
        // clears it.
        lfi.add_library(demo());
        assert_eq!(lfi.profile_store().len(), 1);
        let modified = LibraryCompiler::new()
            .compile(
                &LibrarySpec::new("libdemo.so", Platform::LinuxX86)
                    .function(FunctionSpec::scalar("a", 1).success(0).fault(FaultSpec::returning(-9))),
            )
            .object;
        lfi.add_library(modified);
        assert!(lfi.profile_store().is_empty());
        let reprofiled = lfi.profile("libdemo.so").unwrap();
        assert!(!reprofiled.stats.served_from_store);
        assert!(reprofiled.profile.function("a").unwrap().error_values().contains(&-9));

        // A kernel registration also invalidates (syscall errors feed
        // profiles).
        lfi.set_kernel(lfi_corpus::build_kernel(Platform::LinuxX86));
        assert!(lfi.profile_store().is_empty());
    }

    #[test]
    fn profile_store_files_round_trip_in_both_formats() {
        let dir = std::env::temp_dir().join(format!("lfi-facade-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let mut lfi = Lfi::new();
        lfi.add_library(demo());
        let cold = lfi.profile("libdemo.so").unwrap();

        // Binary save → sniffing load replays warm, byte for byte.
        let binary = dir.join("profiles.lfis");
        lfi.save_profile_store(&binary).unwrap();
        let mut restored = Lfi::new();
        restored.add_library(demo());
        restored.load_profile_store_file(&binary).unwrap();
        let replayed = restored.profile("libdemo.so").unwrap();
        assert!(replayed.stats.served_from_store);
        assert_eq!(replayed.profile, cold.profile);

        // The same sniffing loader takes the XML interchange form.
        let xml = dir.join("profiles.xml");
        std::fs::write(&xml, lfi.profile_store().to_xml()).unwrap();
        let mut from_xml = Lfi::new();
        from_xml.add_library(demo());
        from_xml.load_profile_store_file(&xml).unwrap();
        assert!(from_xml.profile("libdemo.so").unwrap().stats.served_from_store);

        // Hostile input is a typed error naming the path, never a panic.
        let truncated = dir.join("truncated.lfis");
        let bytes = std::fs::read(&binary).unwrap();
        std::fs::write(&truncated, &bytes[..bytes.len() / 2]).unwrap();
        let error = restored.load_profile_store_file(&truncated).unwrap_err();
        assert!(error.to_string().contains("truncated.lfis"), "error names the path: {error}");

        // Exploration checkpoints share the facade's save/load pair.
        let checkpoint = dir.join("exploration.lfis");
        let store = lfi_explore::ExplorationStore::from_xml(
            "<exploration-store seed=\"7\" batch-size=\"4\" parallelism=\"1\" halt-on-crash=\"false\" \
             universe=\"0\" batch-index=\"0\" rng-draws=\"0\" probe-done=\"false\" crash-found=\"false\" \
             cases-executed=\"0\" injections-performed=\"0\" elapsed-ms=\"0\"><budget /><frontier />\
             <executed /><unreached /><pruned /><coverage /><clusters /></exploration-store>",
        )
        .unwrap();
        lfi.save_exploration(&checkpoint, &store).unwrap();
        assert_eq!(lfi.load_exploration(&checkpoint).unwrap(), store);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_keys_cover_the_whole_dependency_set() {
        // libapp.so's profile embeds resolutions from libinner.so, so a store
        // exported against one libinner must not replay against another —
        // even when it is loaded *after* registration, where add_library's
        // clear() cannot intervene.
        fn app() -> SharedObject {
            LibraryCompiler::new()
                .compile(
                    &LibrarySpec::new("libapp.so", Platform::LinuxX86)
                        .dependency("libinner.so")
                        .import("inner", Some("libinner.so"))
                        .function(FunctionSpec::scalar("entry", 1).success(0).fault(FaultSpec::via_callee("inner"))),
                )
                .object
        }
        fn inner(ret: i64) -> SharedObject {
            LibraryCompiler::new()
                .compile(
                    &LibrarySpec::new("libinner.so", Platform::LinuxX86)
                        .function(FunctionSpec::scalar("inner", 0).success(0).fault(FaultSpec::returning(ret))),
                )
                .object
        }

        let mut first = Lfi::new();
        first.add_library(app());
        first.add_library(inner(-1));
        assert!(first
            .profile("libapp.so")
            .unwrap()
            .profile
            .function("entry")
            .unwrap()
            .error_values()
            .contains(&-1));
        let xml = first.profile_store().to_xml();

        let mut second = Lfi::new();
        second.add_library(app());
        second.add_library(inner(-7));
        second.load_profile_store(lfi_profile::ProfileStore::from_xml(&xml).unwrap());
        let report = second.profile("libapp.so").unwrap();
        assert!(!report.stats.served_from_store);
        let entry = report.profile.function("entry").unwrap();
        assert!(entry.error_values().contains(&-7));
        assert!(!entry.error_values().contains(&-1));
    }

    #[test]
    fn options_are_part_of_the_store_key() {
        // The same binary profiled under different options must not collide:
        // keys fold the options in, so a store exported from a heuristics-on
        // facade misses in a conservative one.
        let mut tuned = Lfi::with_options(ProfilerOptions::with_heuristics());
        tuned.add_library(demo());
        tuned.profile("libdemo.so").unwrap();
        let mut conservative = Lfi::new();
        conservative.add_library(demo());
        conservative.load_profile_store(tuned.profile_store().clone());
        let report = conservative.profile("libdemo.so").unwrap();
        assert!(!report.stats.served_from_store);
        // Conservative profiling keeps the 0 success return; a (wrong) store
        // hit would have replayed the heuristics-filtered profile.
        assert!(report.profile.function("a").unwrap().error_values().contains(&0));
    }

    #[test]
    fn facade_explore_closes_the_loop_and_resumes() {
        let mut lfi = Lfi::with_options(ProfilerOptions::with_heuristics());
        lfi.add_library(demo());
        let runtime = NativeLibrary::builder("libdemo.so").function("a", |_| 0).function("b", |_| 0).build();
        // A workload that crashes when b() fails with -3 and merely errors
        // on every other injected fault, as one shared Workload object.
        let workload = lfi_controller::FnWorkload::shared(
            "demo-ab",
            move || {
                let mut process = Process::new();
                process.load(runtime.clone());
                process
            },
            |process: &mut Process| {
                let _ = process.call("a", &[1]);
                match process.call("b", &[1]) {
                    Ok(-3) => ExitStatus::Crashed(lfi_runtime::Signal::Segv),
                    Ok(n) if n < 0 => ExitStatus::Exited(1),
                    _ => ExitStatus::Exited(0),
                }
            },
        );

        let mut explorer = lfi.explore(&Exhaustive, &["libdemo.so"]).unwrap().seed(5).batch_size(2);
        assert_eq!(explorer.universe_len(), 3, "a: -1; b: -2, -3");
        // Drive one batch, snapshot, resume through the facade, finish.
        let first = explorer.step_workload(&workload).unwrap();
        assert_eq!(first.outcomes.len(), 1, "the probe batch");
        let store = lfi_explore::ExplorationStore::from_xml(&explorer.store().to_xml()).unwrap();
        let mut resumed = lfi.resume_exploration(&store, &["libdemo.so"]).unwrap();
        let report = resumed.run_workload(&workload);
        assert!(resumed.finished());
        // The three universe cells plus the crash-escalated neighbour at
        // b's next call ordinal (which turns out unreached).
        assert_eq!(report.coverage.executed, 4);
        assert!(resumed.crash_found());
        assert_eq!(report.crash_clusters().count(), 1);
        assert_eq!(report.crash_clusters().next().unwrap().example.retval, -3);

        assert!(lfi.explore(&Exhaustive, &["libmissing.so"]).is_err());
        assert!(lfi.resume_exploration(&store, &["libmissing.so"]).is_err());
    }

    #[test]
    fn facade_fabric_runs_a_generated_plan() {
        // The facade generates the plan; the fabric executes it as a job on
        // its shared fleet.
        let mut lfi = Lfi::with_options(ProfilerOptions::with_heuristics());
        lfi.add_library(demo());
        let plan = lfi.exhaustive_scenario(&["libdemo.so"]).unwrap();
        let runtime = NativeLibrary::builder("libdemo.so").function("a", |_| 0).function("b", |_| 0).build();
        let fabric = lfi
            .fabric()
            .workers(1)
            .register(lfi_controller::FnWorkload::new(
                "demo-ab",
                move || {
                    let mut process = Process::new();
                    process.load(runtime.clone());
                    process
                },
                |process: &mut Process| {
                    let mut worst = 0i64;
                    for _ in 0..3 {
                        worst = worst.min(process.call("a", &[1]).unwrap_or(0));
                        worst = worst.min(process.call("b", &[1]).unwrap_or(0));
                    }
                    if worst < 0 {
                        ExitStatus::Exited(1)
                    } else {
                        ExitStatus::Exited(0)
                    }
                },
            ))
            .build();
        let job = fabric.submit(lfi_fabric::JobSpec::new("demo", "demo-ab", plan)).unwrap();
        assert!(fabric.wait_idle(std::time::Duration::from_secs(30)));
        let report = fabric.report(job).unwrap();
        assert_eq!(report.state, lfi_fabric::JobState::Done);
        assert_eq!(report.coverage.executed, 3);
        assert_eq!(report.coverage.failures, 3);
        let reports = fabric.drain();
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn facade_campaign_runs_end_to_end() {
        // Heuristics on: the profile lists exactly the fault values (-1, -2,
        // -3), so the exhaustive campaign has one case per fault.
        let mut lfi = Lfi::with_options(ProfilerOptions::with_heuristics());
        lfi.add_library(demo());
        let runtime = NativeLibrary::builder("libdemo.so").function("a", |_| 0).function("b", |_| 0).build();
        let campaign = lfi.campaign(&Exhaustive, &["libdemo.so"]).unwrap();
        assert_eq!(campaign.case_list().len(), 3);
        let report = campaign.parallelism(3).run(
            move || {
                let mut process = Process::new();
                process.load(runtime.clone());
                process
            },
            |process| {
                // Call both functions a few times so every trigger ordinal
                // in the per-entry cases can fire.
                let mut worst = 0i64;
                for _ in 0..3 {
                    worst = worst.min(process.call("a", &[1]).unwrap_or(0));
                    worst = worst.min(process.call("b", &[1]).unwrap_or(0));
                }
                if worst < 0 {
                    ExitStatus::Exited(1)
                } else {
                    ExitStatus::Exited(0)
                }
            },
        );
        assert_eq!(report.outcomes.len(), 3);
        assert_eq!(report.failures().count(), 3);
        assert_eq!(report.total_injections(), 3);
        assert!(lfi.campaign(&Exhaustive, &["libmissing.so"]).is_err());
    }
}
