use std::error::Error;
use std::fmt;

use lfi_controller::Campaign;
use lfi_objfile::SharedObject;
use lfi_profile::FaultProfile;
use lfi_profiler::{LibraryProfileReport, Profiler, ProfilerError, ProfilerOptions};
use lfi_scenario::generator::{Exhaustive, Random, ScenarioGenerator};
use lfi_scenario::{Plan, ScenarioError};

/// Errors surfaced by the [`Lfi`] facade: profiling failures and scenario
/// generator misconfiguration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LfiError {
    /// Profiling a registered library failed.
    Profiler(ProfilerError),
    /// A scenario generator rejected its configuration.
    Scenario(ScenarioError),
}

impl fmt::Display for LfiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LfiError::Profiler(e) => write!(f, "profiling failed: {e}"),
            LfiError::Scenario(e) => write!(f, "scenario generation failed: {e}"),
        }
    }
}

impl Error for LfiError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LfiError::Profiler(e) => Some(e),
            LfiError::Scenario(e) => Some(e),
        }
    }
}

impl From<ProfilerError> for LfiError {
    fn from(value: ProfilerError) -> Self {
        LfiError::Profiler(value)
    }
}

impl From<ScenarioError> for LfiError {
    fn from(value: ScenarioError) -> Self {
        LfiError::Scenario(value)
    }
}

/// The top-level LFI facade: "profile the target application's shared
/// libraries … then conduct fault injection experiments using various fault
/// scenarios" (§2).
///
/// `Lfi` owns a [`Profiler`]; scenario generation is pluggable through
/// [`ScenarioGenerator`] ([`Lfi::scenario`]), and [`Lfi::campaign`] hands the
/// generated faultload straight to a fluent [`Campaign`] builder, so the
/// whole Figure 1 pipeline — profile → scenario → campaign → report — is one
/// chain:
///
/// ```
/// use lfi_asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
/// use lfi_core::Lfi;
/// use lfi_isa::Platform;
/// use lfi_profiler::ProfilerOptions;
/// use lfi_runtime::{ExitStatus, NativeLibrary, Process};
/// use lfi_scenario::generator::Exhaustive;
///
/// // The target application's shared library...
/// let lib = LibraryCompiler::new().compile(
///     &LibrarySpec::new("libdemo.so", Platform::LinuxX86)
///         .function(FunctionSpec::scalar("demo_read", 3).success(0).fault(FaultSpec::returning(-1).with_errno(5))),
/// );
/// // ...and its runtime behaviour, as the dynamic linker would load it.
/// let runtime = NativeLibrary::builder("libdemo.so").function("demo_read", |ctx| ctx.arg(2)).build();
///
/// let mut lfi = Lfi::with_options(ProfilerOptions::with_heuristics());
/// lfi.add_library(lib.object);
/// let report = lfi
///     .campaign(&Exhaustive, &["libdemo.so"])     // profile + generate + build
///     .unwrap()
///     .parallelism(2)                             // independent processes per case
///     .run(
///         move || {
///             let mut process = Process::new();
///             process.load(runtime.clone());
///             process
///         },
///         |process| match process.call("demo_read", &[3, 0, 8]) {
///             Ok(n) if n >= 0 => ExitStatus::Exited(0),
///             _ => ExitStatus::Exited(1),
///         },
///     );
/// assert_eq!(report.outcomes.len(), 1);
/// assert_eq!(report.failures().count(), 1);
/// assert_eq!(report.total_injections(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Lfi {
    profiler: Profiler,
}

impl Lfi {
    /// Creates a facade with the paper's default (conservative) profiler
    /// options.
    pub fn new() -> Self {
        Self { profiler: Profiler::new() }
    }

    /// Creates a facade with explicit profiler options.
    pub fn with_options(options: ProfilerOptions) -> Self {
        Self { profiler: Profiler::with_options(options) }
    }

    /// Registers a library binary of the target application.
    pub fn add_library(&mut self, object: SharedObject) {
        self.profiler.add_library(object);
    }

    /// Registers the kernel image used to resolve syscall error codes.
    pub fn set_kernel(&mut self, object: SharedObject) {
        self.profiler.set_kernel(object);
    }

    /// Access to the underlying profiler.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Profiles one registered library.
    ///
    /// # Errors
    ///
    /// See [`Profiler::profile_library`].
    pub fn profile(&self, library: &str) -> Result<LibraryProfileReport, ProfilerError> {
        self.profiler.profile_library(library)
    }

    /// Profiles every registered library in parallel.
    ///
    /// # Errors
    ///
    /// See [`Profiler::profile_all`].
    pub fn profile_all(&self) -> Result<Vec<LibraryProfileReport>, ProfilerError> {
        self.profiler.profile_all()
    }

    /// The fault profiles of the named libraries, profiling on demand.
    ///
    /// # Errors
    ///
    /// Fails when any named library is unknown or cannot be disassembled.
    pub fn profiles_of(&self, libraries: &[&str]) -> Result<Vec<FaultProfile>, ProfilerError> {
        libraries.iter().map(|name| self.profile(name).map(|report| report.profile)).collect()
    }

    /// Profiles the named libraries and runs any [`ScenarioGenerator`] over
    /// the result (§4's pluggable faultload generation).
    ///
    /// # Errors
    ///
    /// Fails when any named library is unknown or cannot be disassembled.
    pub fn scenario<G>(&self, generator: &G, libraries: &[&str]) -> Result<Plan, LfiError>
    where
        G: ScenarioGenerator + ?Sized,
    {
        Ok(generator.generate(&self.profiles_of(libraries)?))
    }

    /// Profiles the named libraries, runs the generator, and returns a
    /// [`Campaign`] pre-populated with one test case per generated plan
    /// entry — attach observers, an execution policy and a parallelism
    /// degree, then call [`Campaign::run`].
    ///
    /// # Errors
    ///
    /// Fails when any named library is unknown or cannot be disassembled.
    pub fn campaign<G>(&self, generator: &G, libraries: &[&str]) -> Result<Campaign, LfiError>
    where
        G: ScenarioGenerator + ?Sized,
    {
        Ok(Campaign::from_generator(generator, &self.profiles_of(libraries)?))
    }

    /// Generates the exhaustive scenario over the given libraries (§4);
    /// shorthand for [`Lfi::scenario`] with [`Exhaustive`].
    ///
    /// # Errors
    ///
    /// Fails when any named library is unknown or cannot be disassembled.
    pub fn exhaustive_scenario(&self, libraries: &[&str]) -> Result<Plan, LfiError> {
        self.scenario(&Exhaustive, libraries)
    }

    /// Generates the random scenario over the given libraries (§4);
    /// shorthand for [`Lfi::scenario`] with [`Random`].
    ///
    /// # Errors
    ///
    /// Fails when the probability is NaN or outside `[0, 1]`, or when any
    /// named library is unknown or cannot be disassembled.
    pub fn random_scenario(&self, libraries: &[&str], probability: f64, seed: u64) -> Result<Plan, LfiError> {
        self.scenario(&Random::new(probability, seed)?, libraries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
    use lfi_isa::Platform;
    use lfi_runtime::{ExitStatus, NativeLibrary, Process};
    use lfi_scenario::generator::Filtered;

    fn demo() -> SharedObject {
        LibraryCompiler::new()
            .compile(
                &LibrarySpec::new("libdemo.so", Platform::LinuxX86)
                    .function(FunctionSpec::scalar("a", 1).success(0).fault(FaultSpec::returning(-1)))
                    .function(
                        FunctionSpec::scalar("b", 1)
                            .success(0)
                            .fault(FaultSpec::returning(-2))
                            .fault(FaultSpec::returning(-3)),
                    ),
            )
            .object
    }

    #[test]
    fn facade_profiles_and_generates_scenarios() {
        let mut lfi = Lfi::with_options(ProfilerOptions::with_heuristics());
        lfi.add_library(demo());
        lfi.set_kernel(lfi_corpus::build_kernel(Platform::LinuxX86));
        let report = lfi.profile("libdemo.so").unwrap();
        assert_eq!(report.profile.function_count(), 2);
        let exhaustive = lfi.exhaustive_scenario(&["libdemo.so"]).unwrap();
        assert_eq!(exhaustive.len(), 3);
        let random = lfi.random_scenario(&["libdemo.so"], 0.1, 1).unwrap();
        assert_eq!(random.len(), 2);
        assert!(lfi.profile_all().is_ok());
        assert!(lfi.profile("libmissing.so").is_err());
        assert!(lfi.profiler().library("libdemo.so").is_some());
    }

    #[test]
    fn facade_accepts_any_generator_and_reports_typed_errors() {
        let mut lfi = Lfi::new();
        lfi.add_library(demo());

        // A combinator generator through the same entry point.
        let narrowed = lfi
            .scenario(&Filtered::new(Exhaustive).allow(["b"]).max_entries(1), &["libdemo.so"])
            .unwrap();
        assert_eq!(narrowed.intercepted_functions(), vec!["b"]);
        assert_eq!(narrowed.len(), 1);

        // Unknown libraries and invalid probabilities map to distinct
        // LfiError variants (and both render a message).
        let missing = lfi.scenario(&Exhaustive, &["libmissing.so"]).unwrap_err();
        assert!(matches!(missing, LfiError::Profiler(_)));
        assert!(missing.to_string().contains("profiling failed"));
        assert!(missing.source().is_some());
        let invalid = lfi.random_scenario(&["libdemo.so"], f64::NAN, 1).unwrap_err();
        assert!(matches!(invalid, LfiError::Scenario(ScenarioError::InvalidProbability { .. })));
        assert!(invalid.source().is_some());
    }

    #[test]
    fn facade_campaign_runs_end_to_end() {
        // Heuristics on: the profile lists exactly the fault values (-1, -2,
        // -3), so the exhaustive campaign has one case per fault.
        let mut lfi = Lfi::with_options(ProfilerOptions::with_heuristics());
        lfi.add_library(demo());
        let runtime = NativeLibrary::builder("libdemo.so").function("a", |_| 0).function("b", |_| 0).build();
        let campaign = lfi.campaign(&Exhaustive, &["libdemo.so"]).unwrap();
        assert_eq!(campaign.case_list().len(), 3);
        let report = campaign.parallelism(3).run(
            move || {
                let mut process = Process::new();
                process.load(runtime.clone());
                process
            },
            |process| {
                // Call both functions a few times so every trigger ordinal
                // in the per-entry cases can fire.
                let mut worst = 0i64;
                for _ in 0..3 {
                    worst = worst.min(process.call("a", &[1]).unwrap_or(0));
                    worst = worst.min(process.call("b", &[1]).unwrap_or(0));
                }
                if worst < 0 {
                    ExitStatus::Exited(1)
                } else {
                    ExitStatus::Exited(0)
                }
            },
        );
        assert_eq!(report.outcomes.len(), 3);
        assert_eq!(report.failures().count(), 3);
        assert_eq!(report.total_injections(), 3);
        assert!(lfi.campaign(&Exhaustive, &["libmissing.so"]).is_err());
    }
}
