//! # lfi-core — the LFI facade and the evaluation experiments
//!
//! This crate ties the reproduction together.  [`Lfi`] is the user-facing
//! entry point mirroring the tool's two-step workflow (§2): register the
//! target application's libraries (and optionally a kernel image), profile
//! them, and drive the whole pipeline — any
//! [`ScenarioGenerator`](lfi_scenario::generator::ScenarioGenerator) through
//! [`Lfi::scenario`], or a ready-to-run campaign through [`Lfi::campaign`].
//! The [`experiments`] module contains the drivers that regenerate every
//! table and figure of the paper's evaluation; they are shared by the
//! `repro` binary and the Criterion benches in `lfi-bench`.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod facade;

pub use facade::{Lfi, LfiError};
