//! Drivers that close the loop against live campaigns: the
//! [`RulesHarness`] observer, the [`GatedWorkload`] mute gate, and the
//! [`ClosedLoop`] explorer driver.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;

use parking_lot::Mutex;

use lfi_controller::{CampaignObserver, CampaignReport, InjectionRecord, TestCase, TestOutcome, Workload};
use lfi_explore::{ExplorationReport, Explorer};
use lfi_runtime::{ExitStatus, PooledProcess, Process};

use crate::engine::{Action, Decision, RuleEngine, RuleSet};
use crate::metrics::MetricsSink;

/// A [`CampaignObserver`] that feeds a [`RuleEngine`] from the observer
/// hooks — the deterministic attachment point of the control-plane
/// contract (hooks run synchronously on the campaign worker thread, so at
/// `parallelism(1)` rules evaluate in exact case order, ahead of the
/// stream consumer).
///
/// The harness assigns case indices in hook order (hooks carry no index)
/// and correlates a worker thread's `on_injection`/`on_outcome` hooks with
/// the case its `on_test_start` announced, so per-symbol attribution works
/// at any parallelism.  [`CampaignObserver::should_halt`] reports the
/// engine's `Cancel`/`Pause` latches, turning a rule decision into a
/// deterministic campaign halt.
pub struct RulesHarness {
    engine: Mutex<RuleEngine>,
    next_index: AtomicUsize,
    current: Mutex<std::collections::HashMap<ThreadId, usize>>,
}

impl RulesHarness {
    /// A harness evaluating `set` over a fresh engine.
    pub fn new(set: RuleSet) -> Self {
        RulesHarness {
            engine: Mutex::new(RuleEngine::new(set)),
            next_index: AtomicUsize::new(0),
            current: Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Shared-handle constructor (observers attach as `Arc`s).
    pub fn shared(set: RuleSet) -> Arc<Self> {
        Arc::new(Self::new(set))
    }

    /// Runs `f` with the locked engine (hold briefly: campaign workers
    /// block on this lock inside their hooks).
    pub fn with_engine<T>(&self, f: impl FnOnce(&mut RuleEngine) -> T) -> T {
        f(&mut self.engine.lock())
    }

    /// The decision log so far (byte-identical across fixed-seed serial
    /// reruns — the pinned contract).
    pub fn decision_log(&self) -> String {
        self.engine.lock().decision_log()
    }

    /// Decisions with sequence `>= from`, cloned out of the engine.
    pub fn decisions_since(&self, from: usize) -> Vec<Decision> {
        self.engine.lock().decisions().get(from..).map(<[Decision]>::to_vec).unwrap_or_default()
    }

    /// Number of decisions emitted so far.
    pub fn decision_count(&self) -> usize {
        self.engine.lock().decisions().len()
    }

    /// True while `function` is muted by the rule set.
    pub fn is_muted(&self, function: &str) -> bool {
        self.engine.lock().is_muted(function)
    }

    /// True once a `Cancel` decision fired.
    pub fn halted(&self) -> bool {
        self.engine.lock().halted()
    }

    /// True once a `Pause` decision fired (cleared with
    /// [`RuleEngine::clear_pause`] via [`RulesHarness::with_engine`]).
    pub fn paused(&self) -> bool {
        self.engine.lock().paused()
    }

    /// A snapshot of the metrics sink (vitals gauges refreshed first).
    pub fn metrics(&self) -> MetricsSink {
        let mut engine = self.engine.lock();
        engine.export_vitals();
        engine.sink().clone()
    }

    fn case_index(&self) -> usize {
        self.current.lock().get(&std::thread::current().id()).copied().unwrap_or(0)
    }
}

impl std::fmt::Debug for RulesHarness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let engine = self.engine.lock();
        f.debug_struct("RulesHarness")
            .field("decisions", &engine.decisions().len())
            .field("halted", &engine.halted())
            .finish()
    }
}

impl CampaignObserver for RulesHarness {
    fn on_test_start(&self, case: &TestCase) {
        let index = self.next_index.fetch_add(1, Ordering::AcqRel);
        self.current.lock().insert(std::thread::current().id(), index);
        self.engine.lock().case_started(index, &case.name);
    }

    fn on_injection(&self, _case: &TestCase, record: &InjectionRecord) {
        let index = self.case_index();
        self.engine.lock().injection(index, record);
    }

    fn on_outcome(&self, outcome: &TestOutcome) {
        let index = self.case_index();
        self.engine.lock().outcome(index, outcome);
    }

    fn should_halt(&self, _outcome: &TestOutcome) -> bool {
        let engine = self.engine.lock();
        engine.halted() || engine.paused()
    }
}

/// A [`Workload`] wrapper that enforces `Mute` decisions *in execution*:
/// a case whose plan injects into a muted function is vetoed by the health
/// check (a `Skipped` event with reason `Unhealthy`) before its workload
/// runs, so a tripped circuit breaker provably suppresses further
/// injections for the symbol even for cases already generated.
///
/// The veto is decided in [`Workload::setup`] (which receives the case)
/// and consumed by the same worker thread's next
/// [`Workload::health_check`] — the thread-id stash idiom the controller's
/// per-case workloads use.
pub struct GatedWorkload {
    inner: Arc<dyn Workload>,
    harness: Arc<RulesHarness>,
    vetoed: Mutex<HashSet<ThreadId>>,
}

impl GatedWorkload {
    /// Gates `inner` behind `harness`'s mute set.
    pub fn new(inner: Arc<dyn Workload>, harness: Arc<RulesHarness>) -> Self {
        GatedWorkload { inner, harness, vetoed: Mutex::new(HashSet::new()) }
    }
}

impl Workload for GatedWorkload {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn setup(&self, case: &TestCase) -> PooledProcess {
        if case.plan.entries.iter().any(|entry| self.harness.is_muted(&entry.function)) {
            self.vetoed.lock().insert(std::thread::current().id());
        }
        self.inner.setup(case)
    }

    fn run(&self, process: &mut Process) -> ExitStatus {
        self.inner.run(process)
    }

    fn teardown(&self, process: &mut Process) {
        self.inner.teardown(process);
    }

    fn health_check(&self, process: &mut Process) -> bool {
        if self.vetoed.lock().remove(&std::thread::current().id()) {
            return false;
        }
        self.inner.health_check(process)
    }
}

/// An [`Explorer`] driven by a rule set instead of (or on top of) its
/// built-in refinement heuristic.
///
/// Construction disables the explorer's hard-coded crash-adjacent
/// escalation and attaches the [`RulesHarness`] as a campaign observer, so
/// every batch feeds the engine deterministically.  After each batch the
/// accumulated frontier-shaping decisions are applied to the explorer
/// (`EscalateSiblings` → [`Explorer::escalate_cell`], `Mute`/`Unmute` →
/// frontier parking, `Reweight` → priority shifts), and every batch's
/// workload is wrapped in a [`GatedWorkload`] so mutes also veto cases
/// generated before the mute landed.
pub struct ClosedLoop {
    explorer: Explorer,
    harness: Arc<RulesHarness>,
    applied: usize,
}

impl ClosedLoop {
    /// Wraps `explorer` with the policy in `set`.
    pub fn new(explorer: Explorer, set: RuleSet) -> Self {
        let harness = RulesHarness::shared(set);
        let observer: Arc<dyn CampaignObserver> = Arc::clone(&harness) as _;
        ClosedLoop { explorer: explorer.escalation(false).attach_observer(observer), harness, applied: 0 }
    }

    /// Applies explorer builder configuration — seed, batch size, budgets,
    /// `halt_on_crash` — to the wrapped explorer:
    /// `closed_loop.configure(|e| e.seed(2009).batch_size(12))`.
    pub fn configure(mut self, f: impl FnOnce(Explorer) -> Explorer) -> Self {
        self.explorer = f(self.explorer);
        self
    }

    /// The harness (for decision logs, metrics and mute queries).
    pub fn harness(&self) -> &Arc<RulesHarness> {
        &self.harness
    }

    /// The wrapped explorer.
    pub fn explorer(&self) -> &Explorer {
        &self.explorer
    }

    /// True when no further batch will run: the explorer is finished or a
    /// rule cancelled/paused the campaign.
    pub fn finished(&self) -> bool {
        self.explorer.finished() || self.harness.halted() || self.harness.paused()
    }

    /// Runs one batch through the gated workload and applies the batch's
    /// decisions to the frontier; `None` when [`ClosedLoop::finished`].
    pub fn step_workload(&mut self, workload: &Arc<dyn Workload>) -> Option<CampaignReport> {
        if self.harness.halted() || self.harness.paused() {
            return None;
        }
        let gated: Arc<dyn Workload> = Arc::new(GatedWorkload::new(Arc::clone(workload), Arc::clone(&self.harness)));
        let report = self.explorer.step_workload(&gated)?;
        self.apply_decisions();
        Some(report)
    }

    /// Runs batches until [`ClosedLoop::finished`] and returns the
    /// aggregate exploration report.
    pub fn run_workload(&mut self, workload: &Arc<dyn Workload>) -> ExplorationReport {
        let mut batches = Vec::new();
        while let Some(report) = self.step_workload(workload) {
            batches.push(report);
        }
        self.explorer.report(batches)
    }

    /// The decision log so far.
    pub fn decision_log(&self) -> String {
        self.harness.decision_log()
    }

    /// Applies decisions emitted since the last application to the
    /// explorer's frontier, in decision order.
    fn apply_decisions(&mut self) {
        let decisions = self.harness.decisions_since(self.applied);
        self.applied += decisions.len();
        for decision in decisions {
            match decision.action {
                Action::EscalateSiblings => {
                    if let Some(cell) = decision.cell {
                        self.explorer.escalate_cell(cell);
                    }
                }
                Action::Mute => {
                    if let Some(symbol) = decision.symbol {
                        self.explorer.mute(symbol);
                    }
                }
                Action::Unmute => {
                    if let Some(symbol) = decision.symbol {
                        self.explorer.unmute(symbol);
                    }
                }
                Action::Reweight(delta) => {
                    if let Some(symbol) = decision.symbol {
                        self.explorer.reweight(symbol, delta);
                    }
                }
                Action::Pause | Action::Cancel | Action::EmitMetric { .. } => {}
            }
        }
    }

    /// Consumes the driver, returning the explorer (e.g. to snapshot its
    /// [`store`](Explorer::store)).
    pub fn into_explorer(self) -> Explorer {
        self.explorer
    }
}

impl std::fmt::Debug for ClosedLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClosedLoop")
            .field("explorer", &self.explorer)
            .field("harness", &self.harness)
            .finish()
    }
}
