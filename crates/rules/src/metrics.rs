//! The structured [`MetricsSink`]: counter / gauge / histogram points with
//! labels, rendered as NDJSON for the same `jq`-based tooling that consumes
//! the bench harness's `LFI_BENCH_JSON` lines.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The three point kinds a [`MetricsSink`] stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricKind {
    /// A monotonically accumulated sum ([`MetricsSink::incr`]).
    Counter,
    /// A last-write-wins level ([`MetricsSink::gauge`]).
    Gauge,
    /// A sample distribution, folded to count/sum/min/max
    /// ([`MetricsSink::observe`]).
    Histogram,
}

impl MetricKind {
    /// The NDJSON `kind` field value for this point kind.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Folded histogram state (bucketless: count, sum and the extrema — enough
/// for rate and overhead dashboards without committing to a bucket layout).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramPoint {
    /// Samples observed.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

/// One exported point: name, sorted labels, kind and value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricPoint {
    /// Metric name (slash-namespaced by convention, e.g. `rules/fired`).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// Point kind.
    pub kind: MetricKind,
    /// Counter sum or gauge level; for histograms the sample sum (see
    /// [`MetricPoint::histogram`]).
    pub value: f64,
    /// The folded distribution, for histogram points.
    pub histogram: Option<HistogramPoint>,
}

/// Point identity inside the sink: (name, rendered label set).
type Key = (String, String);

/// A deterministic in-memory metrics store.
///
/// Points are keyed by `(name, sorted labels)`; every accessor and the
/// [`MetricsSink::to_ndjson`] export iterate keys in lexicographic order, so
/// two sinks fed the same updates render byte-identical output — the same
/// determinism contract the rule engine's decision log pins.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSink {
    counters: BTreeMap<Key, f64>,
    gauges: BTreeMap<Key, f64>,
    histograms: BTreeMap<Key, HistogramPoint>,
}

/// Renders a label set canonically: sorted by key, `k=v` joined with `,`.
fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let mut out = String::new();
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}={v}");
    }
    out
}

/// Minimal JSON string escaping (backslash, quote, control characters).
fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn labels_json(rendered: &str) -> String {
    if rendered.is_empty() {
        return "{}".to_owned();
    }
    let mut out = String::from("{");
    for (i, pair) in rendered.split(',').enumerate() {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    out.push('}');
    out
}

impl MetricsSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the counter `name` with `labels`.
    pub fn incr(&mut self, name: &str, labels: &[(&str, &str)], by: f64) {
        *self.counters.entry((name.to_owned(), render_labels(labels))).or_insert(0.0) += by;
    }

    /// Sets the gauge `name` with `labels` to `value` (last write wins).
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.gauges.insert((name.to_owned(), render_labels(labels)), value);
    }

    /// Folds one sample into the histogram `name` with `labels`.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], sample: f64) {
        let point = self.histograms.entry((name.to_owned(), render_labels(labels))).or_insert(HistogramPoint {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        });
        point.count += 1;
        point.sum += sample;
        point.min = point.min.min(sample);
        point.max = point.max.max(sample);
    }

    /// The counter value, if the point exists.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.counters.get(&(name.to_owned(), render_labels(labels))).copied()
    }

    /// The gauge value, if the point exists.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&(name.to_owned(), render_labels(labels))).copied()
    }

    /// The folded histogram, if the point exists.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<HistogramPoint> {
        self.histograms.get(&(name.to_owned(), render_labels(labels))).copied()
    }

    /// Number of stored points across all kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// True when no point was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every point, counters then gauges then histograms, each sorted by
    /// (name, labels).
    pub fn points(&self) -> Vec<MetricPoint> {
        let mut out = Vec::with_capacity(self.len());
        let unpack = |rendered: &str| -> Vec<(String, String)> {
            if rendered.is_empty() {
                return Vec::new();
            }
            rendered
                .split(',')
                .map(|pair| {
                    let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                    (k.to_owned(), v.to_owned())
                })
                .collect()
        };
        for ((name, labels), &value) in &self.counters {
            out.push(MetricPoint {
                name: name.clone(),
                labels: unpack(labels),
                kind: MetricKind::Counter,
                value,
                histogram: None,
            });
        }
        for ((name, labels), &value) in &self.gauges {
            out.push(MetricPoint {
                name: name.clone(),
                labels: unpack(labels),
                kind: MetricKind::Gauge,
                value,
                histogram: None,
            });
        }
        for ((name, labels), &point) in &self.histograms {
            out.push(MetricPoint {
                name: name.clone(),
                labels: unpack(labels),
                kind: MetricKind::Histogram,
                value: point.sum,
                histogram: Some(point),
            });
        }
        out
    }

    /// Renders every point as NDJSON — one JSON object per line, in the
    /// deterministic point order, ready for `jq -s '.'` (the same shape the
    /// CI bench tooling assembles `BENCH_*.json` files from).
    ///
    /// Counter/gauge lines carry `value`; histogram lines carry
    /// `count`/`sum`/`min`/`max`.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for ((name, labels), value) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"metric\":\"{}\",\"kind\":\"counter\",\"labels\":{},\"value\":{value}}}",
                json_escape(name),
                labels_json(labels),
            );
        }
        for ((name, labels), value) in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"metric\":\"{}\",\"kind\":\"gauge\",\"labels\":{},\"value\":{value}}}",
                json_escape(name),
                labels_json(labels),
            );
        }
        for ((name, labels), point) in &self.histograms {
            let _ = writeln!(
                out,
                "{{\"metric\":\"{}\",\"kind\":\"histogram\",\"labels\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                json_escape(name),
                labels_json(labels),
                point.count,
                point.sum,
                point.min,
                point.max,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_accumulate_and_render_deterministically() {
        let mut sink = MetricsSink::new();
        assert!(sink.is_empty());
        sink.incr("rules/fired", &[("rule", "breaker")], 1.0);
        sink.incr("rules/fired", &[("rule", "breaker")], 2.0);
        sink.gauge("campaign/crashes", &[], 3.0);
        sink.observe("case/injections", &[], 2.0);
        sink.observe("case/injections", &[], 4.0);
        assert_eq!(sink.counter("rules/fired", &[("rule", "breaker")]), Some(3.0));
        assert_eq!(sink.gauge_value("campaign/crashes", &[]), Some(3.0));
        let h = sink.histogram("case/injections", &[]).unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 6.0, 2.0, 4.0));
        assert_eq!(sink.len(), 3);

        // Label order never matters: keys are canonicalized.
        let mut a = MetricsSink::new();
        a.incr("m", &[("a", "1"), ("b", "2")], 1.0);
        let mut b = MetricsSink::new();
        b.incr("m", &[("b", "2"), ("a", "1")], 1.0);
        assert_eq!(a.to_ndjson(), b.to_ndjson());

        let ndjson = sink.to_ndjson();
        assert_eq!(ndjson.lines().count(), 3);
        assert!(ndjson.contains("\"kind\":\"counter\""));
        assert!(ndjson.contains("\"labels\":{\"rule\":\"breaker\"}"));
        assert!(ndjson.contains("\"count\":2"));
        // Every line parses as a flat JSON object (quotes balanced, one
        // object per line).
        for line in ndjson.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert_eq!(sink.points().len(), 3);
        assert_eq!(sink.points()[0].kind, MetricKind::Counter);
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut sink = MetricsSink::new();
        sink.incr("odd\"name", &[("k\\ey", "va\"lue")], 1.0);
        let ndjson = sink.to_ndjson();
        assert!(ndjson.contains("odd\\\"name"));
        assert!(ndjson.contains("k\\\\ey"));
        assert!(ndjson.contains("va\\\"lue"));
    }
}
