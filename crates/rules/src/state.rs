//! The rolling [`CampaignState`]: everything a [`Condition`](crate::Condition)
//! can read, folded incrementally from the `CaseEvent` stream.
//!
//! The fold is a pure function of the event sequence — no clocks, no
//! randomness — which is what lets the engine pin its byte-identical
//! decision-log contract (see the crate docs).

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

use lfi_controller::{InjectionRecord, TestOutcome};
use lfi_explore::OutcomeClass;
use lfi_intern::Symbol;
use lfi_scenario::FaultCell;

/// Change bits: which campaign counters a fold actually moved.
///
/// Every fold method returns the union of the bits below that its event
/// changed, and every [`Metric`](crate::Metric) declares the bits its value
/// depends on — so the engine can skip re-evaluating a guard whose inputs
/// provably kept their exact values (a failure-only stream never wakes a
/// crash-watching rule).  The masks are *dataflow-precise*, not event-kind
/// approximations: skipping is sound because an unchanged input vector
/// implies an unchanged verdict.
pub mod change {
    /// `events_seen` advanced (every fold; also covers the history-window
    /// slide that windowed rates and `EventsInState` read).
    pub const EVENTS: u16 = 1 << 0;
    /// `cases_started` moved.
    pub const CASES_STARTED: u16 = 1 << 1;
    /// `cases_finished` moved.
    pub const CASES_FINISHED: u16 = 1 << 2;
    /// `cases_skipped` moved.
    pub const CASES_SKIPPED: u16 = 1 << 3;
    /// A success outcome landed (global, and thus any attributed symbol).
    pub const SUCCESSES: u16 = 1 << 4;
    /// A failure outcome landed.
    pub const FAILURES: u16 = 1 << 5;
    /// A crash outcome landed.
    pub const CRASHES: u16 = 1 << 6;
    /// An injection was performed.
    pub const INJECTIONS: u16 = 1 << 7;
    /// A new non-success cluster was keyed.
    pub const CLUSTERS: u16 = 1 << 8;
    /// A new crash-class cluster was keyed.
    pub const CRASH_CLUSTERS: u16 = 1 << 9;
    /// The distinct-outcome set grew (globally or for any symbol).
    pub const DISTINCT: u16 = 1 << 10;
    /// The outcome-class distribution (entropy) shifted.
    pub const ENTROPY: u16 = 1 << 11;
    /// Every bit — forces evaluation on any fold.
    pub const ALL: u16 = (1 << 12) - 1;
}

/// How many per-event [`Sample`]s the sliding-window history retains.
///
/// Rates and rate-of-change conditions can look back at most this many
/// events; longer windows are clamped.
pub const HISTORY_WINDOW: usize = 256;

/// One history sample, pushed after every folded event, so window metrics
/// can difference "now" against "`window` events ago".
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Sample {
    /// Cumulative finished cases at this event.
    pub cases_finished: u64,
    /// Cumulative crash-class outcomes at this event.
    pub crashes: u64,
    /// Cumulative injections at this event.
    pub injections: u64,
    /// Cumulative distinct crash clusters at this event.
    pub crash_clusters: u64,
    /// Distinct outcome classes seen so far.
    pub distinct_outcomes: u64,
    /// Shannon entropy (bits) of the outcome-class distribution so far.
    pub entropy: f64,
}

/// Per-symbol rollup, attributed from each outcome's injection log.
///
/// A case that injected faults into several functions counts once for each
/// distinct function; a case whose plan never fired (no injections) counts
/// toward the global totals only.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SymbolStats {
    /// Cases whose injection log named this symbol.
    pub cases_finished: u64,
    /// ... of which exited 0.
    pub successes: u64,
    /// ... of which exited non-zero.
    pub failures: u64,
    /// ... of which died by signal.
    pub crashes: u64,
    /// Injections performed into this symbol, across all cases.
    pub injections: u64,
    /// Distinct outcome classes observed for this symbol (display form).
    pub distinct_outcomes: BTreeSet<String>,
    /// Distinct non-success clusters keyed on this symbol.
    pub clusters: u64,
    /// ... of which are crash-class (signal deaths).
    pub crash_clusters: u64,
    /// The fault cell behind the most recent crash attributed to this
    /// symbol — the seed rule actions like
    /// [`Action::EscalateSiblings`](crate::Action::EscalateSiblings) expand.
    pub last_crash_cell: Option<FaultCell>,
}

/// Cluster identity: (injected symbol, stack at injection, outcome class) —
/// the same key [`lfi_explore::CrashCluster`] dedupes on.  `None` symbol
/// means the case ended without any injection firing.
type ClusterKey = (Option<Symbol>, Vec<Symbol>, OutcomeClass);

/// The rolling campaign vitals a rule set evaluates against.
///
/// Updated by the engine once per `CaseEvent`, in stream sequence order.
/// Per-symbol rollups are keyed by `Symbol` for lock-free O(log n) reads on
/// the evaluation hot path, with a *name-ordered* side index driving every
/// iteration — so two processes interning symbols in different orders still
/// fold and iterate identically.
#[derive(Debug, Clone, Default)]
pub struct CampaignState {
    /// Events folded so far (the engine's sequence counter).
    pub events_seen: u64,
    /// `Started` events seen.
    pub cases_started: u64,
    /// `Outcome` events seen.
    pub cases_finished: u64,
    /// `Skipped` events seen.
    pub cases_skipped: u64,
    /// Outcomes that exited 0.
    pub successes: u64,
    /// Outcomes that exited non-zero.
    pub failures: u64,
    /// Outcomes that died by signal.
    pub crashes: u64,
    /// Total injections performed (from `Injection` events).
    pub injections: u64,
    /// Outcome-class histogram, keyed by display form (`success`,
    /// `exit:3`, `crash:SIGSEGV`, ...).
    pub outcome_counts: BTreeMap<String, u64>,
    /// Per-symbol rollups, dense in first-seen order — the evaluation hot
    /// path walks and indexes plain vectors, no tree traversal.
    stats: Vec<SymbolStats>,
    /// `Symbol` → dense index (a u32-keyed point lookup, no interning or
    /// table lock) for fold-time updates and [`CampaignState::symbol`].
    by_symbol: BTreeMap<Symbol, usize>,
    /// Name-sorted `(symbol, dense index)` pairs — the pinned, interning-
    /// order-independent iteration order of [`CampaignState::symbols`].
    order: Vec<(Symbol, usize)>,
    /// Deduplicated non-success cluster keys.
    clusters: HashSet<ClusterKey>,
    /// Crash-class subset size of `clusters` (cached count).
    crash_cluster_count: u64,
    /// Injection records of the case currently in flight, keyed by case
    /// index, drained when its outcome arrives.
    in_flight: BTreeMap<usize, Vec<InjectionRecord>>,
    /// Bounded per-event history for window metrics.
    history: VecDeque<Sample>,
}

impl CampaignState {
    /// An empty state (zero events folded).
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds a `Started` event; returns the [`change`] bits it moved.
    pub fn fold_started(&mut self, _index: usize, _name: &str) -> u16 {
        self.cases_started += 1;
        self.advance();
        change::EVENTS | change::CASES_STARTED
    }

    /// Folds an `Injection` event; returns the [`change`] bits it moved.
    pub fn fold_injection(&mut self, index: usize, record: &InjectionRecord) -> u16 {
        self.injections += 1;
        let stats = self.track(record.function);
        stats.injections += 1;
        self.in_flight.entry(index).or_default().push(record.clone());
        self.advance();
        change::EVENTS | change::INJECTIONS
    }

    /// Folds an `Outcome` event; returns the [`change`] bits it moved.
    pub fn fold_outcome(&mut self, index: usize, outcome: &TestOutcome) -> u16 {
        let mut changed = change::EVENTS | change::CASES_FINISHED | change::ENTROPY;
        self.cases_finished += 1;
        let class = OutcomeClass::of(outcome.status);
        match class {
            OutcomeClass::Success => {
                self.successes += 1;
                changed |= change::SUCCESSES;
            }
            OutcomeClass::Failure(_) => {
                self.failures += 1;
                changed |= change::FAILURES;
            }
            OutcomeClass::Crash(_) => {
                self.crashes += 1;
                changed |= change::CRASHES;
            }
        }
        let histogram_entry = self.outcome_counts.entry(class.to_string()).or_insert(0);
        if *histogram_entry == 0 {
            changed |= change::DISTINCT;
        }
        *histogram_entry += 1;

        // Attribute via the event-stream injection records when we have
        // them (engine fed per-event), else via the outcome's own log.
        let records = match self.in_flight.remove(&index) {
            Some(records) if !records.is_empty() => records,
            _ => outcome.log.injections.clone(),
        };

        let mut symbols: BTreeMap<&'static str, (Symbol, &InjectionRecord)> = BTreeMap::new();
        for record in &records {
            symbols.entry(record.function.as_str()).or_insert((record.function, record));
        }

        // Cluster key: last injection's (symbol, stack), like the explorer.
        let cluster_key: ClusterKey = match records.last() {
            Some(last) => (Some(last.function), last.stack.clone(), class),
            None => (None, Vec::new(), class),
        };
        let new_cluster = !matches!(class, OutcomeClass::Success) && self.clusters.insert(cluster_key);
        if new_cluster {
            changed |= change::CLUSTERS;
            if class.is_crash() {
                self.crash_cluster_count += 1;
                changed |= change::CRASH_CLUSTERS;
            }
        }

        for (symbol, record) in symbols.values() {
            let symbol = *symbol;
            let class_label = class.to_string();
            let stats = self.track(symbol);
            stats.cases_finished += 1;
            match class {
                OutcomeClass::Success => stats.successes += 1,
                OutcomeClass::Failure(_) => stats.failures += 1,
                OutcomeClass::Crash(_) => stats.crashes += 1,
            }
            // A symbol can see a class for the first time even when the
            // campaign already has — the distinct bit must cover both.
            if stats.distinct_outcomes.insert(class_label) {
                changed |= change::DISTINCT;
            }
            if new_cluster {
                stats.clusters += 1;
                if class.is_crash() {
                    stats.crash_clusters += 1;
                }
            }
            if class.is_crash() {
                stats.last_crash_cell = Some(FaultCell {
                    function: symbol,
                    call_ordinal: record.call_number,
                    retval: record.retval.unwrap_or(0),
                    errno: record.errno,
                });
            }
        }
        self.advance();
        changed
    }

    /// Folds a `Skipped` event; returns the [`change`] bits it moved.
    pub fn fold_skipped(&mut self, index: usize, _name: &str) -> u16 {
        self.cases_skipped += 1;
        self.in_flight.remove(&index);
        self.advance();
        change::EVENTS | change::CASES_SKIPPED
    }

    /// Pushes the post-event history sample and bumps the event counter.
    fn advance(&mut self) {
        self.events_seen += 1;
        if self.history.len() == HISTORY_WINDOW {
            self.history.pop_front();
        }
        self.history.push_back(Sample {
            cases_finished: self.cases_finished,
            crashes: self.crashes,
            injections: self.injections,
            crash_clusters: self.crash_cluster_count,
            distinct_outcomes: self.outcome_counts.len() as u64,
            entropy: self.outcome_entropy(),
        });
    }

    /// Distinct non-success clusters seen so far.
    pub fn clusters(&self) -> u64 {
        self.clusters.len() as u64
    }

    /// Distinct crash-class (signal-death) clusters seen so far.
    pub fn crash_clusters(&self) -> u64 {
        self.crash_cluster_count
    }

    /// Distinct outcome classes seen so far.
    pub fn distinct_outcomes(&self) -> u64 {
        self.outcome_counts.len() as u64
    }

    /// Shannon entropy (bits) of the outcome-class distribution — the
    /// "are we still learning anything new?" signal.  0.0 until two
    /// distinct classes exist.
    pub fn outcome_entropy(&self) -> f64 {
        let total: u64 = self.outcome_counts.values().sum();
        if total == 0 {
            return 0.0;
        }
        let mut entropy = 0.0;
        for &count in self.outcome_counts.values() {
            if count == 0 {
                continue;
            }
            let p = count as f64 / total as f64;
            entropy -= p * p.log2();
        }
        entropy
    }

    /// The history sample `window` events back (clamped to the retained
    /// [`HISTORY_WINDOW`]); zeroes before any event was folded.
    fn sample_back(&self, window: u64) -> Sample {
        if self.history.is_empty() {
            return Sample::default();
        }
        let window = (window.max(1) as usize).min(HISTORY_WINDOW);
        if window >= self.history.len() {
            return Sample::default();
        }
        self.history[self.history.len() - 1 - window]
    }

    /// Cases finished per event over the trailing `window` events.
    pub fn case_rate(&self, window: u64) -> f64 {
        let span = (window.max(1) as usize).min(HISTORY_WINDOW).min(self.history.len().max(1));
        (self.cases_finished - self.sample_back(window).cases_finished) as f64 / span as f64
    }

    /// Injections per event over the trailing `window` events.
    pub fn injection_rate(&self, window: u64) -> f64 {
        let span = (window.max(1) as usize).min(HISTORY_WINDOW).min(self.history.len().max(1));
        (self.injections - self.sample_back(window).injections) as f64 / span as f64
    }

    /// Crashes per event over the trailing `window` events.
    pub fn crash_rate(&self, window: u64) -> f64 {
        let span = (window.max(1) as usize).min(HISTORY_WINDOW).min(self.history.len().max(1));
        (self.crashes - self.sample_back(window).crashes) as f64 / span as f64
    }

    /// The history sample `window` events ago (public for rate-of-change
    /// evaluation).
    pub fn lookback(&self, window: u64) -> Sample {
        self.sample_back(window)
    }

    /// Per-symbol rollup for `symbol`, if any event mentioned it.
    pub fn symbol(&self, symbol: Symbol) -> Option<&SymbolStats> {
        self.by_symbol.get(&symbol).map(|&index| &self.stats[index])
    }

    /// Per-symbol rollup by name.
    pub fn symbol_named(&self, name: &str) -> Option<&SymbolStats> {
        let position = self.order.binary_search_by(|(s, _)| s.as_str().cmp(name)).ok()?;
        Some(&self.stats[self.order[position].1])
    }

    /// Number of tracked symbols (symbols are never forgotten, so this is
    /// monotone over the event stream).
    pub fn symbol_count(&self) -> usize {
        self.stats.len()
    }

    /// All tracked symbols with their rollups, in name order — the
    /// deterministic iteration order per-symbol rules evaluate in.
    pub fn symbols(&self) -> impl Iterator<Item = (Symbol, &SymbolStats)> {
        self.order.iter().map(move |&(symbol, index)| (symbol, &self.stats[index]))
    }

    /// The rollup entry for `symbol`, registering it in the name-order
    /// index on first sight.
    fn track(&mut self, symbol: Symbol) -> &mut SymbolStats {
        let index = match self.by_symbol.get(&symbol) {
            Some(&index) => index,
            None => {
                let index = self.stats.len();
                self.stats.push(SymbolStats::default());
                self.by_symbol.insert(symbol, index);
                let position = match self.order.binary_search_by(|(s, _)| s.as_str().cmp(symbol.as_str())) {
                    Ok(position) | Err(position) => position,
                };
                self.order.insert(position, (symbol, index));
                index
            }
        };
        &mut self.stats[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_controller::TestLog;
    use lfi_runtime::ExitStatus;
    use lfi_scenario::Plan;

    fn record(function: &str, call: u64, retval: i64, errno: Option<i64>) -> InjectionRecord {
        InjectionRecord {
            function: Symbol::intern(function),
            call_number: call,
            retval: Some(retval),
            errno,
            side_effects: Vec::new(),
            call_original: false,
            stack: vec![Symbol::intern("main")],
        }
    }

    fn outcome(name: &str, status: ExitStatus, injections: Vec<InjectionRecord>) -> TestOutcome {
        TestOutcome {
            name: name.to_owned(),
            status,
            log: TestLog { injections, intercepted_calls: 0, calls_per_function: Vec::new() },
            replay: Plan::default(),
            calls: Vec::new(),
            calls_dropped: 0,
        }
    }

    #[test]
    fn folds_counters_clusters_and_symbols() {
        let mut state = CampaignState::new();
        state.fold_started(0, "case-0");
        state.fold_injection(0, &record("read", 1, -1, Some(5)));
        let changed =
            state.fold_outcome(0, &outcome("case-0", ExitStatus::Crashed(lfi_runtime::Signal::Segv), Vec::new()));
        assert_ne!(changed & change::CRASHES, 0);
        assert_ne!(changed & change::CRASH_CLUSTERS, 0);
        assert_ne!(changed & change::DISTINCT, 0);
        assert_eq!(changed & change::SUCCESSES, 0);

        state.fold_started(1, "case-1");
        state.fold_outcome(1, &outcome("case-1", ExitStatus::Exited(0), Vec::new()));
        state.fold_skipped(2, "case-2");

        assert_eq!(state.events_seen, 6);
        assert_eq!(state.cases_started, 2);
        assert_eq!(state.cases_finished, 2);
        assert_eq!(state.cases_skipped, 1);
        assert_eq!((state.successes, state.failures, state.crashes), (1, 0, 1));
        assert_eq!(state.injections, 1);
        assert_eq!(state.clusters(), 1);
        assert_eq!(state.crash_clusters(), 1);
        assert_eq!(state.distinct_outcomes(), 2);
        assert!(state.outcome_entropy() > 0.99 && state.outcome_entropy() <= 1.0);

        let read = state.symbol_named("read").unwrap();
        assert_eq!(read.crashes, 1);
        assert_eq!(read.crash_clusters, 1);
        assert_eq!(read.injections, 1);
        let cell = read.last_crash_cell.unwrap();
        assert_eq!(cell.function.as_str(), "read");
        assert_eq!(cell.call_ordinal, 1);
        assert_eq!((cell.retval, cell.errno), (-1, Some(5)));
    }

    #[test]
    fn same_cluster_key_counts_once() {
        let mut state = CampaignState::new();
        for index in 0..3 {
            state.fold_started(index, "case");
            state.fold_injection(index, &record("close", 2, -1, Some(5)));
            state.fold_outcome(index, &outcome("case", ExitStatus::Crashed(lfi_runtime::Signal::Segv), Vec::new()));
        }
        assert_eq!(state.crashes, 3);
        assert_eq!(state.crash_clusters(), 1);
        assert_eq!(state.symbol_named("close").unwrap().crash_clusters, 1);

        // A different errno produces a different record but the same
        // (symbol, stack, class) key — still one cluster, like the explorer.
        state.fold_started(3, "case");
        state.fold_injection(3, &record("close", 2, -1, Some(13)));
        state.fold_outcome(3, &outcome("case", ExitStatus::Crashed(lfi_runtime::Signal::Segv), Vec::new()));
        assert_eq!(state.crash_clusters(), 1);

        // A different signal is a new cluster.
        state.fold_started(4, "case");
        state.fold_injection(4, &record("close", 2, -1, Some(5)));
        state.fold_outcome(4, &outcome("case", ExitStatus::Crashed(lfi_runtime::Signal::Abort), Vec::new()));
        assert_eq!(state.crash_clusters(), 2);
        assert_eq!(state.symbol_named("close").unwrap().crash_clusters, 2);
    }

    #[test]
    fn window_rates_difference_history() {
        let mut state = CampaignState::new();
        for index in 0..10 {
            state.fold_started(index, "case");
            state.fold_outcome(index, &outcome("case", ExitStatus::Exited(0), Vec::new()));
        }
        // 20 events folded, 10 finishes: finish rate over any full window
        // is 0.5 per event.
        assert!((state.case_rate(20) - 0.5).abs() < 1e-9);
        assert_eq!(state.crash_rate(20), 0.0);
        assert_eq!(state.injection_rate(4), 0.0);
        // Window larger than history falls back to "since the beginning".
        assert!((state.case_rate(10_000) - 0.5).abs() < 1e-9);
    }
}
