//! The [`RuleEngine`]: folds the `CaseEvent` stream into
//! [`CampaignState`], evaluates [`Rule`]s and [`StateMachine`]s in the
//! pinned deterministic order, and accumulates [`Decision`]s plus metrics.
//!
//! # Evaluation contract (pinned)
//!
//! Per folded event, in this exact order:
//!
//! 1. the event is folded into [`CampaignState`];
//! 2. rules evaluate in **declaration order** — a `Global` rule once, a
//!    `PerSymbol` rule once per tracked symbol in **name order** — honoring
//!    each rule's `once` and `cooldown_events` refire policy;
//! 3. state machines evaluate in declaration order, instances per symbol in
//!    name order; per instance at most **one** transition (first guard in
//!    declaration order that holds) fires.
//!
//! Every firing appends one [`Decision`] carrying the engine-assigned
//! decision sequence and the triggering event sequence.  Decisions are
//! therefore delivered **at most once per event seq** per (rule, symbol) /
//! (machine, symbol) pair, and a fixed-seed serial campaign replays to a
//! byte-identical [`RuleEngine::decision_log`].  A `Cancel` decision
//! freezes the engine: every later event is ignored, so racy post-cancel
//! events can never extend the log.

use std::collections::BTreeSet;
use std::fmt;

use lfi_controller::{CaseEvent, InjectionRecord, TestOutcome};
use lfi_intern::Symbol;
use lfi_scenario::FaultCell;

use crate::condition::{change, Condition, EvalContext, MachineContext};
use crate::machine::StateMachine;
use crate::metrics::MetricsSink;
use crate::state::CampaignState;

/// A control decision a fired rule or machine transition emits.
///
/// Actions are *declarative*: the engine records them (and applies the ones
/// it owns — mute bookkeeping, metrics, pause/cancel latches) while drivers
/// like [`ClosedLoop`](crate::ClosedLoop) translate the frontier-shaping
/// ones onto their control handles.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Expand the crash-adjacent neighborhood of the symbol's last crash
    /// cell onto the frontier: adjacent call ordinals plus sibling
    /// (retval, errno) pairs from the profile — the explorer's built-in
    /// heuristic, re-expressed as a rule action.
    EscalateSiblings,
    /// Stop generating and executing cases that inject into the symbol.
    Mute,
    /// Lift a [`Action::Mute`], restoring the symbol's parked frontier.
    Unmute,
    /// Shift the priority of the symbol's pending frontier cells by the
    /// given delta.
    Reweight(i32),
    /// Pause the campaign (fabric jobs park; observer-driven runs halt).
    Pause,
    /// Cancel the campaign via its `CancelHandle`/job control.
    Cancel,
    /// Record a metric point (a counter increment in the engine's sink).
    EmitMetric {
        /// Metric name.
        name: String,
        /// Increment.
        value: f64,
    },
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::EscalateSiblings => f.write_str("escalate-siblings"),
            Action::Mute => f.write_str("mute"),
            Action::Unmute => f.write_str("unmute"),
            Action::Reweight(delta) => write!(f, "reweight({delta:+})"),
            Action::Pause => f.write_str("pause"),
            Action::Cancel => f.write_str("cancel"),
            Action::EmitMetric { name, value } => write!(f, "emit({name}={value})"),
        }
    }
}

/// Whether a rule evaluates once per event or once per tracked symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleScope {
    /// Evaluate once per event against campaign totals.
    Global,
    /// Evaluate per tracked symbol (name order) against its
    /// [`SymbolStats`](crate::SymbolStats) rollup.
    PerSymbol,
}

/// A named, guarded action list.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Rule name (decision-log `src=` and metric label).
    pub name: String,
    /// Evaluation scope.
    pub scope: RuleScope,
    /// Guard condition.
    pub when: Condition,
    /// Actions emitted when the guard holds.
    pub actions: Vec<Action>,
    /// Fire at most once (per symbol, for `PerSymbol` rules).
    pub once: bool,
    /// Minimum events between firings (ignored when `once`); `0` allows
    /// refiring on every event while the guard holds.
    pub cooldown_events: u64,
}

impl Rule {
    /// A global rule firing whenever `when` holds (no refire limit).
    pub fn global(name: impl Into<String>, when: Condition, actions: impl IntoIterator<Item = Action>) -> Self {
        Rule {
            name: name.into(),
            scope: RuleScope::Global,
            when,
            actions: actions.into_iter().collect(),
            once: false,
            cooldown_events: 0,
        }
    }

    /// A per-symbol rule firing whenever `when` holds for a symbol.
    pub fn per_symbol(name: impl Into<String>, when: Condition, actions: impl IntoIterator<Item = Action>) -> Self {
        Rule { scope: RuleScope::PerSymbol, ..Rule::global(name, when, actions) }
    }

    /// Limits the rule to a single firing (per symbol for `PerSymbol`
    /// rules).
    pub fn once(mut self) -> Self {
        self.once = true;
        self
    }

    /// Requires at least `events` folded events between firings.
    pub fn cooldown(mut self, events: u64) -> Self {
        self.cooldown_events = events;
        self
    }
}

/// The rules and machines an engine evaluates, in declaration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleSet {
    /// Rules, evaluated first.
    pub rules: Vec<Rule>,
    /// State machines, evaluated after the rules.
    pub machines: Vec<StateMachine>,
}

impl RuleSet {
    /// An empty rule set (a passive collector: state and metrics fold, no
    /// decisions ever fire).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule (builder style).
    pub fn rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Adds a state machine (builder style).
    pub fn machine(mut self, machine: impl Into<StateMachine>) -> Self {
        self.machines.push(machine.into());
        self
    }

    /// True when no rule or machine is registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.machines.is_empty()
    }
}

/// One recorded firing: which source fired on which event, for which
/// symbol, with which action.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Engine-assigned decision sequence (0-based, dense).
    pub seq: u64,
    /// The event sequence ([`CampaignState::events_seen`] after the fold)
    /// that triggered the firing.
    pub event_seq: u64,
    /// `rule/<name>`, or `machine/<name>:<from>-><to>`.
    pub source: String,
    /// The symbol in scope (`None` for global rules).
    pub symbol: Option<Symbol>,
    /// The symbol's last crash cell at firing time, for frontier-shaping
    /// actions.
    pub cell: Option<FaultCell>,
    /// The action.
    pub action: Action,
}

impl fmt::Display for Decision {
    /// The pinned decision-log line format:
    ///
    /// `#<seq> evt=<event_seq> src=<source> sym=<name|-> action=<action>`
    /// `[ cell=<fn>@<ordinal> ret=<retval> errno=<errno|->]`
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:04} evt={} src={} sym={} action={}",
            self.seq,
            self.event_seq,
            self.source,
            self.symbol.map_or("-", |s| s.as_str()),
            self.action,
        )?;
        if let Some(cell) = &self.cell {
            write!(f, " cell={}@{} ret={}", cell.function.as_str(), cell.call_ordinal, cell.retval)?;
            match cell.errno {
                Some(errno) => write!(f, " errno={errno}")?,
                None => f.write_str(" errno=-")?,
            }
        }
        Ok(())
    }
}

/// Per-(machine, symbol) instance bookkeeping.  `state` indexes the
/// compiled machine's state table.
#[derive(Debug, Clone)]
struct MachineInstance {
    state: usize,
    entered_at_event: u64,
    crashes_at_entry: u64,
}

/// Per-(rule, symbol) refire/verdict bookkeeping.
#[derive(Debug, Clone, Default)]
struct SymbolFired {
    /// Last firing event, for `once`/`cooldown_events`.
    last: Option<u64>,
    /// The last evaluated verdict was false (or the rule is `once`-spent):
    /// re-evaluation can be skipped until a fold the guard depends on.
    known_false: bool,
}

/// Per-rule refire bookkeeping: last firing event and verdict cache per
/// scope key.
#[derive(Debug, Clone, Default)]
struct Fired {
    global: Option<u64>,
    /// Global-scope verdict cache (see [`SymbolFired::known_false`]).
    global_false: bool,
    /// Per-symbol slots in **name order** — parallel to
    /// [`CampaignState::symbols`], so the sweep is a positional zip with no
    /// tree lookups.  Symbol sets only grow, so a position mismatch means a
    /// new symbol was inserted exactly there.
    per_symbol: Vec<(Symbol, SymbolFired)>,
    /// Entries *not* known-false — while zero (and no new symbols exist)
    /// the whole per-symbol sweep can be skipped on off-dependency folds.
    truthy: usize,
}

/// The engine-side lowering of a [`StateMachine`]: state names interned to
/// dense indices, transitions bucketed by source state, and per-state
/// change masks for the skip-unchanged-guards fast path.
#[derive(Debug, Clone)]
struct CompiledMachine {
    /// State names; index 0 is the initial state.
    names: Vec<String>,
    /// Per state: `(transition index, target state index)` in declaration
    /// order.
    by_state: Vec<Vec<(usize, usize)>>,
    /// Per state: union [`Condition::change_mask`] of its out-guards.
    masks: Vec<u16>,
    /// Instances currently sitting in each state.
    counts: Vec<usize>,
}

impl CompiledMachine {
    fn build(machine: &StateMachine) -> Self {
        let mut names = vec![machine.initial.clone()];
        let index_of = |names: &mut Vec<String>, name: &str| match names.iter().position(|n| n == name) {
            Some(index) => index,
            None => {
                names.push(name.to_owned());
                names.len() - 1
            }
        };
        let mut edges = Vec::with_capacity(machine.transitions.len());
        for transition in &machine.transitions {
            let from = index_of(&mut names, &transition.from);
            let to = index_of(&mut names, &transition.to);
            edges.push((from, to));
        }
        let mut by_state = vec![Vec::new(); names.len()];
        let mut masks = vec![0u16; names.len()];
        for (index, (from, to)) in edges.into_iter().enumerate() {
            by_state[from].push((index, to));
            masks[from] |= machine.transitions[index].when.change_mask();
        }
        let counts = vec![0; names.len()];
        CompiledMachine { names, by_state, masks, counts }
    }
}

/// A firing recorded during the read-only evaluation sweep, emitted (in
/// sweep order) once the sweep releases its borrows.
#[derive(Debug, Clone)]
enum Firing {
    Rule {
        rule_index: usize,
        symbol: Option<Symbol>,
    },
    Machine {
        machine_index: usize,
        transition_index: usize,
        symbol: Symbol,
    },
}

/// True when the action list contains [`Action::Cancel`] — the sweep stops
/// evaluating at the same point the emitted Cancel will freeze the engine.
fn cancels(actions: &[Action]) -> bool {
    actions.iter().any(|action| matches!(action, Action::Cancel))
}

/// The closed-loop engine.  Feed it events ([`RuleEngine::observe`] or the
/// per-kind methods); read back decisions, the decision log, the rolling
/// state and the metrics sink.
#[derive(Debug, Clone)]
pub struct RuleEngine {
    set: RuleSet,
    state: CampaignState,
    fired: Vec<Fired>,
    /// Per-rule [`Condition::change_mask`], parallel to `set.rules`.
    rule_masks: Vec<u16>,
    /// Compiled machines, parallel to `set.machines`.
    compiled: Vec<CompiledMachine>,
    /// Per machine: `(symbol, instance)` slots in name order (see
    /// [`Fired::per_symbol`]).
    instances: Vec<Vec<(Symbol, MachineInstance)>>,
    /// Union of the [`change`](crate::state::change) bits that could flip
    /// any guard's verdict given the current verdict caches and machine
    /// occupancy — while a fold's reported bits miss this mask (and no new
    /// symbol appeared) the whole evaluation pass is skipped with a single
    /// branch.
    wake: u16,
    /// The symbol count `wake` was computed against.
    wake_symbols: usize,
    /// Reused firing queue — empty between events, no allocation once warm.
    pending: Vec<Firing>,
    decisions: Vec<Decision>,
    sink: MetricsSink,
    muted: BTreeSet<&'static str>,
    halted: bool,
    paused: bool,
}

impl RuleEngine {
    /// An engine over `set` with fresh state and an empty sink.
    pub fn new(set: RuleSet) -> Self {
        let fired = set.rules.iter().map(|_| Fired::default()).collect();
        let rule_masks = set.rules.iter().map(|r| r.when.change_mask()).collect();
        let compiled = set.machines.iter().map(CompiledMachine::build).collect();
        let instances = set.machines.iter().map(|_| Vec::new()).collect();
        RuleEngine {
            set,
            state: CampaignState::new(),
            fired,
            rule_masks,
            compiled,
            instances,
            wake: change::ALL,
            wake_symbols: 0,
            pending: Vec::new(),
            decisions: Vec::new(),
            sink: MetricsSink::new(),
            muted: BTreeSet::new(),
            halted: false,
            paused: false,
        }
    }

    /// Folds one [`CaseEvent`], returning the decisions it triggered.
    ///
    /// Observer-fed streams never contain `Skipped` events (skipped cases
    /// fire no observer hooks); stream-fed engines fold them as pure
    /// bookkeeping.
    pub fn observe(&mut self, event: &CaseEvent) -> &[Decision] {
        match event {
            CaseEvent::Started { index, name } => self.case_started(*index, name),
            CaseEvent::Injection { index, record } => self.injection(*index, record),
            CaseEvent::Outcome { index, outcome } => self.outcome(*index, outcome),
            CaseEvent::Skipped { index, name, .. } => self.skip(*index, name),
        }
    }

    /// Folds a case-start event.
    pub fn case_started(&mut self, index: usize, name: &str) -> &[Decision] {
        if self.halted {
            return &[];
        }
        let changed = self.state.fold_started(index, name);
        self.evaluate(changed)
    }

    /// Folds an injection event.
    pub fn injection(&mut self, index: usize, record: &InjectionRecord) -> &[Decision] {
        if self.halted {
            return &[];
        }
        let changed = self.state.fold_injection(index, record);
        self.evaluate(changed)
    }

    /// Folds an outcome event.
    pub fn outcome(&mut self, index: usize, outcome: &TestOutcome) -> &[Decision] {
        if self.halted {
            return &[];
        }
        let changed = self.state.fold_outcome(index, outcome);
        self.evaluate(changed)
    }

    /// Folds a skip event.
    pub fn skip(&mut self, index: usize, name: &str) -> &[Decision] {
        if self.halted {
            return &[];
        }
        let changed = self.state.fold_skipped(index, name);
        self.evaluate(changed)
    }

    /// Evaluates rules then machines for the event just folded (`changed`
    /// is the [`change`](crate::state::change) bits its fold reported);
    /// returns the newly appended decisions.
    ///
    /// The sweep is read-only over the campaign state: firings are queued
    /// and emitted afterwards in sweep order, so the decision stream is
    /// exactly the pinned declaration-order contract.  Guards whose inputs
    /// provably did not change (see [`Condition::change_mask`]) and whose
    /// last verdict was false are skipped — a pure optimization that never
    /// alters the decision log.
    fn evaluate(&mut self, changed: u16) -> &[Decision] {
        let before = self.decisions.len();
        if self.set.is_empty() {
            return &self.decisions[before..];
        }
        let symbol_count = self.state.symbol_count();
        if changed & self.wake == 0 && symbol_count == self.wake_symbols {
            // No counter any registered guard reads moved and no new symbol
            // appeared: provably no firing, skip the pass.
            return &self.decisions[before..];
        }
        let event_seq = self.state.events_seen;
        let mut halted = self.halted;
        // Whether the wake mask's inputs (verdict caches, machine occupancy,
        // the tracked-symbol set) changed and the mask must be rebuilt.
        let mut wake_dirty = symbol_count != self.wake_symbols;

        // Step 2: rules in declaration order.  The sweep is read-only over
        // `self.state` and `self.set`, mutating only the disjoint
        // bookkeeping fields, so no per-event detach or clone is needed.
        for rule_index in 0..self.set.rules.len() {
            if halted {
                break;
            }
            let rule = &self.set.rules[rule_index];
            let deps_hit = self.rule_masks[rule_index] & changed != 0;
            let fired = &mut self.fired[rule_index];
            match rule.scope {
                RuleScope::Global => {
                    if !deps_hit && fired.global_false {
                        continue;
                    }
                    let allowed = match fired.global {
                        None => true,
                        Some(_) if rule.once => false,
                        Some(last) => event_seq.saturating_sub(last) > rule.cooldown_events,
                    };
                    if !allowed {
                        if fired.global_false != rule.once {
                            fired.global_false = rule.once;
                            wake_dirty = true;
                        }
                        continue;
                    }
                    let verdict = rule.when.eval(EvalContext::global(&self.state));
                    if verdict {
                        fired.global = Some(event_seq);
                        if cancels(&rule.actions) {
                            halted = true;
                        }
                        self.pending.push(Firing::Rule { rule_index, symbol: None });
                    }
                    let now_false = if verdict { rule.once } else { true };
                    if fired.global_false != now_false {
                        fired.global_false = now_false;
                        wake_dirty = true;
                    }
                }
                RuleScope::PerSymbol => {
                    if !deps_hit && fired.truthy == 0 && fired.per_symbol.len() == symbol_count {
                        continue;
                    }
                    for (position, (symbol, stats)) in self.state.symbols().enumerate() {
                        if halted {
                            break;
                        }
                        if fired.per_symbol.get(position).map(|(s, _)| *s) != Some(symbol) {
                            fired.truthy += 1;
                            fired.per_symbol.insert(position, (symbol, SymbolFired::default()));
                            wake_dirty = true;
                        }
                        let slot = &mut fired.per_symbol[position].1;
                        if !deps_hit && slot.known_false {
                            continue;
                        }
                        let allowed = match slot.last {
                            None => true,
                            Some(_) if rule.once => false,
                            Some(last) => event_seq.saturating_sub(last) > rule.cooldown_events,
                        };
                        let verdict = allowed
                            && rule.when.eval(EvalContext {
                                state: &self.state,
                                symbol: Some(symbol),
                                stats: Some(stats),
                                machine: None,
                            });
                        if verdict {
                            slot.last = Some(event_seq);
                            if cancels(&rule.actions) {
                                halted = true;
                            }
                            self.pending.push(Firing::Rule { rule_index, symbol: Some(symbol) });
                        }
                        // Cache the verdict: a once-spent rule is permanently
                        // false; a blocked cooldown stays truthy so the sweep
                        // revisits it when the cooldown expires.
                        let now_false = if verdict { rule.once } else { allowed || rule.once };
                        if now_false != slot.known_false {
                            slot.known_false = now_false;
                            fired.truthy = if now_false { fired.truthy - 1 } else { fired.truthy + 1 };
                            wake_dirty = true;
                        }
                    }
                }
            }
        }

        // Step 3: machines in declaration order, instances in name order,
        // at most one transition per instance.
        for machine_index in 0..self.set.machines.len() {
            if halted {
                break;
            }
            let machine = &self.set.machines[machine_index];
            let compiled = &self.compiled[machine_index];
            let sweep = self.instances[machine_index].len() < symbol_count || {
                let mut mask = 0u16;
                for (state, &count) in compiled.counts.iter().enumerate() {
                    if count > 0 {
                        mask |= compiled.masks[state];
                    }
                }
                mask & changed != 0
            };
            if !sweep {
                continue;
            }
            for (position, (symbol, stats)) in self.state.symbols().enumerate() {
                if halted {
                    break;
                }
                let crashes = stats.crashes;
                if self.instances[machine_index].get(position).map(|(s, _)| *s) != Some(symbol) {
                    self.compiled[machine_index].counts[0] += 1;
                    wake_dirty = true;
                    self.instances[machine_index].insert(
                        position,
                        (symbol, MachineInstance { state: 0, entered_at_event: event_seq, crashes_at_entry: crashes }),
                    );
                }
                let instance = &self.instances[machine_index][position].1;
                let ctx = MachineContext {
                    events_in_state: event_seq.saturating_sub(instance.entered_at_event),
                    crashes_since_entry: crashes.saturating_sub(instance.crashes_at_entry),
                };
                let from = instance.state;
                let compiled = &self.compiled[machine_index];
                let state = &self.state;
                let hit = compiled.by_state[from].iter().copied().find(|&(transition_index, _)| {
                    machine.transitions[transition_index].when.eval(EvalContext {
                        state,
                        symbol: Some(symbol),
                        stats: Some(stats),
                        machine: Some(ctx),
                    })
                });
                if let Some((transition_index, to)) = hit {
                    let instance = &mut self.instances[machine_index][position].1;
                    instance.state = to;
                    instance.entered_at_event = event_seq;
                    instance.crashes_at_entry = crashes;
                    let counts = &mut self.compiled[machine_index].counts;
                    counts[from] -= 1;
                    counts[to] += 1;
                    wake_dirty = true;
                    if cancels(&machine.transitions[transition_index].actions) {
                        halted = true;
                    }
                    self.pending.push(Firing::Machine { machine_index, transition_index, symbol });
                }
            }
        }

        // Emission: decisions and engine-owned side effects, in sweep order.
        // Only now (firings are rare) are the set and the queue detached, so
        // `push_decision` can take `&mut self`.
        if !self.pending.is_empty() {
            let set = std::mem::take(&mut self.set);
            let mut pending = std::mem::take(&mut self.pending);
            for firing in pending.drain(..) {
                match firing {
                    Firing::Rule { rule_index, symbol } => {
                        self.emit_rule(&set.rules[rule_index], event_seq, symbol);
                    }
                    Firing::Machine { machine_index, transition_index, symbol } => {
                        let machine = &set.machines[machine_index];
                        let transition = &machine.transitions[transition_index];
                        let source = format!("machine/{}:{}->{}", machine.name, transition.from, transition.to);
                        for action in &transition.actions {
                            self.push_decision(event_seq, source.clone(), Some(symbol), action.clone());
                            if self.halted {
                                break;
                            }
                        }
                    }
                }
                if self.halted {
                    break;
                }
            }
            self.set = set;
            self.pending = pending;
        }

        // Rebuild the wake mask when its inputs moved: a quiet source
        // (verdict cached false) wakes only on its own dependencies;
        // anything that might fire or refire wakes on every fold.
        if wake_dirty {
            let mut wake = 0u16;
            for (rule_index, rule) in self.set.rules.iter().enumerate() {
                let quiet = match rule.scope {
                    RuleScope::Global => self.fired[rule_index].global_false,
                    RuleScope::PerSymbol => self.fired[rule_index].truthy == 0,
                };
                wake |= if quiet { self.rule_masks[rule_index] } else { change::ALL };
            }
            for compiled in &self.compiled {
                for (state, &count) in compiled.counts.iter().enumerate() {
                    if count > 0 {
                        wake |= compiled.masks[state];
                    }
                }
            }
            self.wake = wake;
            self.wake_symbols = symbol_count;
        }

        &self.decisions[before..]
    }

    /// Emits every action of a fired rule.
    fn emit_rule(&mut self, rule: &Rule, event_seq: u64, symbol: Option<Symbol>) {
        let source = format!("rule/{}", rule.name);
        for action in rule.actions.clone() {
            self.push_decision(event_seq, source.clone(), symbol, action);
            if self.halted {
                break;
            }
        }
    }

    /// Records one decision and applies its engine-owned side effects.
    fn push_decision(&mut self, event_seq: u64, source: String, symbol: Option<Symbol>, action: Action) {
        let cell = symbol.and_then(|s| self.state.symbol(s)).and_then(|stats| stats.last_crash_cell);
        let label = symbol.map_or("-", |s| s.as_str());
        self.sink.incr("rules/fired", &[("source", &source), ("symbol", label)], 1.0);
        match &action {
            Action::EmitMetric { name, value } => {
                self.sink.incr(name, &[("symbol", label)], *value);
            }
            Action::Mute => {
                if let Some(symbol) = symbol {
                    self.muted.insert(symbol.as_str());
                }
            }
            Action::Unmute => {
                if let Some(symbol) = symbol {
                    self.muted.remove(symbol.as_str());
                }
            }
            Action::Pause => self.paused = true,
            Action::Cancel => self.halted = true,
            Action::EscalateSiblings | Action::Reweight(_) => {}
        }
        self.decisions
            .push(Decision { seq: self.decisions.len() as u64, event_seq, source, symbol, cell, action });
    }

    /// The rolling campaign state.
    pub fn state(&self) -> &CampaignState {
        &self.state
    }

    /// Every decision emitted so far, in sequence order.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// The decision log: one [`Decision`] display line per firing.
    ///
    /// Byte-identical across fixed-seed serial reruns — the contract the
    /// `closed_loop` integration tests pin.
    pub fn decision_log(&self) -> String {
        let mut out = String::new();
        for decision in &self.decisions {
            out.push_str(&decision.to_string());
            out.push('\n');
        }
        out
    }

    /// Currently muted symbol names (sorted).
    pub fn muted(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.muted.iter().copied()
    }

    /// True when `name` is currently muted.
    pub fn is_muted(&self, name: &str) -> bool {
        self.muted.contains(name)
    }

    /// True once a [`Action::Cancel`] fired; the engine ignores all further
    /// events.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// True once a [`Action::Pause`] fired (drivers decide what pausing
    /// means; the engine keeps folding events).
    pub fn paused(&self) -> bool {
        self.paused
    }

    /// Clears the pause latch (e.g. after a fabric job resumes).
    pub fn clear_pause(&mut self) {
        self.paused = false;
    }

    /// The metrics sink.
    pub fn sink(&self) -> &MetricsSink {
        &self.sink
    }

    /// Mutable access to the sink (drivers add their own gauges).
    pub fn sink_mut(&mut self) -> &mut MetricsSink {
        &mut self.sink
    }

    /// Refreshes the campaign-vitals gauges in the sink from the current
    /// state (`campaign/*`).
    pub fn export_vitals(&mut self) {
        let state = &self.state;
        self.sink.gauge("campaign/events", &[], state.events_seen as f64);
        self.sink.gauge("campaign/cases_started", &[], state.cases_started as f64);
        self.sink.gauge("campaign/cases_finished", &[], state.cases_finished as f64);
        self.sink.gauge("campaign/cases_skipped", &[], state.cases_skipped as f64);
        self.sink.gauge("campaign/successes", &[], state.successes as f64);
        self.sink.gauge("campaign/failures", &[], state.failures as f64);
        self.sink.gauge("campaign/crashes", &[], state.crashes as f64);
        self.sink.gauge("campaign/injections", &[], state.injections as f64);
        self.sink.gauge("campaign/clusters", &[], state.clusters() as f64);
        self.sink.gauge("campaign/crash_clusters", &[], state.crash_clusters() as f64);
        self.sink.gauge("campaign/outcome_entropy", &[], state.outcome_entropy());
    }

    /// The machine state of `(machine_name, symbol_name)`, if the instance
    /// exists.
    pub fn machine_state(&self, machine: &str, symbol: &str) -> Option<&str> {
        let index = self.set.machines.iter().position(|m| m.name == machine)?;
        let symbol = Symbol::lookup(symbol)?;
        let instance = self.instances[index].iter().find(|(s, _)| *s == symbol).map(|(_, i)| i)?;
        Some(&self.compiled[index].names[instance.state])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{Cmp, Metric};
    use crate::machine::{CircuitBreaker, BREAKER_CLOSED, BREAKER_OPEN};
    use lfi_controller::TestLog;
    use lfi_runtime::{ExitStatus, Signal};
    use lfi_scenario::Plan;

    fn record(function: &str, call: u64, errno: i64) -> InjectionRecord {
        InjectionRecord {
            function: Symbol::intern(function),
            call_number: call,
            retval: Some(-1),
            errno: Some(errno),
            side_effects: Vec::new(),
            call_original: false,
            stack: Vec::new(),
        }
    }

    fn outcome(status: ExitStatus) -> TestOutcome {
        TestOutcome {
            name: "case".into(),
            status,
            log: TestLog::default(),
            replay: Plan::default(),
            calls: Vec::new(),
            calls_dropped: 0,
        }
    }

    fn crash_case(engine: &mut RuleEngine, index: usize, function: &str, signal: Signal) {
        engine.case_started(index, "case");
        engine.injection(index, &record(function, 1, 5));
        engine.outcome(index, &outcome(ExitStatus::Crashed(signal)));
    }

    #[test]
    fn once_rule_fires_once_per_symbol_with_cell() {
        let set = RuleSet::new().rule(
            Rule::per_symbol(
                "escalate-on-crash",
                Condition::at_least(Metric::Crashes, 1.0),
                [Action::EscalateSiblings],
            )
            .once(),
        );
        let mut engine = RuleEngine::new(set);
        crash_case(&mut engine, 0, "read", Signal::Segv);
        crash_case(&mut engine, 1, "read", Signal::Segv);
        crash_case(&mut engine, 2, "write", Signal::Abort);

        let escalations: Vec<_> = engine.decisions().iter().filter(|d| d.action == Action::EscalateSiblings).collect();
        assert_eq!(escalations.len(), 2, "{}", engine.decision_log());
        assert_eq!(escalations[0].symbol.unwrap().as_str(), "read");
        assert_eq!(escalations[1].symbol.unwrap().as_str(), "write");
        let cell = escalations[0].cell.unwrap();
        assert_eq!((cell.function.as_str(), cell.call_ordinal), ("read", 1));
        assert_eq!(
            engine
                .sink()
                .counter("rules/fired", &[("source", "rule/escalate-on-crash"), ("symbol", "read")]),
            Some(1.0)
        );
    }

    #[test]
    fn cooldown_limits_refires_and_cancel_freezes() {
        let set = RuleSet::new()
            .rule(
                Rule::global("tick", Condition::Always, [Action::EmitMetric { name: "tick".into(), value: 1.0 }])
                    .cooldown(2),
            )
            .rule(Rule::global("stop", Condition::at_least(Metric::Crashes, 2.0), [Action::Cancel]));
        let mut engine = RuleEngine::new(set);
        crash_case(&mut engine, 0, "read", Signal::Segv);
        assert!(!engine.halted());
        crash_case(&mut engine, 1, "read", Signal::Segv);
        assert!(engine.halted());
        let log_at_cancel = engine.decision_log();
        // Frozen: later events change nothing.
        crash_case(&mut engine, 2, "read", Signal::Segv);
        assert_eq!(engine.decision_log(), log_at_cancel);
        assert_eq!(engine.state().cases_finished, 2);
        // Cooldown 2: with 6 events folded, "tick" fired on events 1 and 4.
        let ticks = engine.decisions().iter().filter(|d| d.source == "rule/tick").count();
        assert_eq!(ticks, 2, "{log_at_cancel}");
    }

    #[test]
    fn breaker_trips_on_distinct_crash_clusters_and_mutes() {
        let set = RuleSet::new().machine(CircuitBreaker::tripping_after(2).cooldown(1000));
        let mut engine = RuleEngine::new(set);
        crash_case(&mut engine, 0, "close", Signal::Segv);
        assert_eq!(engine.machine_state("circuit-breaker", "close"), Some(BREAKER_CLOSED));
        assert!(!engine.is_muted("close"));
        // Same (symbol, stack, class) → same cluster → still closed.
        crash_case(&mut engine, 1, "close", Signal::Segv);
        assert_eq!(engine.machine_state("circuit-breaker", "close"), Some(BREAKER_CLOSED));
        // A second distinct cluster (different signal) trips it.
        crash_case(&mut engine, 2, "close", Signal::Abort);
        assert_eq!(engine.machine_state("circuit-breaker", "close"), Some(BREAKER_OPEN));
        assert!(engine.is_muted("close"));
        assert_eq!(engine.sink().counter("breaker/tripped", &[("symbol", "close")]), Some(1.0));
        let log = engine.decision_log();
        assert!(log.contains("src=machine/circuit-breaker:Closed->Open sym=close action=mute"), "{log}");
    }

    #[test]
    fn decision_log_is_reproducible() {
        let build = || {
            RuleSet::new()
                .rule(
                    Rule::per_symbol(
                        "escalate",
                        Condition::at_least(Metric::CrashClusters, 1.0),
                        [Action::EscalateSiblings],
                    )
                    .once(),
                )
                .machine(CircuitBreaker::tripping_after(2))
        };
        let run = || {
            let mut engine = RuleEngine::new(build());
            crash_case(&mut engine, 0, "close", Signal::Segv);
            crash_case(&mut engine, 1, "read", Signal::Abort);
            crash_case(&mut engine, 2, "close", Signal::Abort);
            engine.export_vitals();
            (engine.decision_log(), engine.sink().to_ndjson())
        };
        let (log_a, metrics_a) = run();
        let (log_b, metrics_b) = run();
        assert_eq!(log_a, log_b);
        assert_eq!(metrics_a, metrics_b);
        assert!(!log_a.is_empty());
    }

    #[test]
    fn pause_latches_without_freezing() {
        let set = RuleSet::new().rule(
            Rule::global("pause-on-crash", Condition::threshold(Metric::Crashes, Cmp::Ge, 1.0), [Action::Pause]).once(),
        );
        let mut engine = RuleEngine::new(set);
        crash_case(&mut engine, 0, "read", Signal::Segv);
        assert!(engine.paused() && !engine.halted());
        crash_case(&mut engine, 1, "read", Signal::Segv);
        assert_eq!(engine.state().cases_finished, 2);
        engine.clear_pause();
        assert!(!engine.paused());
    }
}
