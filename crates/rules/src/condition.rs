//! The [`Condition`] predicate algebra: thresholds and rate-of-change tests
//! over [`CampaignState`] metrics, composed with and/or/not.
//!
//! Conditions are pure — evaluating one never mutates state — and total:
//! a metric that does not apply in the current scope (e.g. a per-symbol
//! metric with no symbol in context) reads as `0`, so a malformed rule
//! degrades to "never fires" rather than a panic mid-campaign.

use std::fmt;

use lfi_intern::Symbol;

use crate::state::{CampaignState, SymbolStats};

/// Comparison operator for [`Condition::Threshold`] and
/// [`Condition::RateOfChange`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl Cmp {
    /// Applies the comparison.
    pub fn apply(self, lhs: f64, rhs: f64) -> bool {
        match self {
            Cmp::Lt => lhs < rhs,
            Cmp::Le => lhs <= rhs,
            Cmp::Gt => lhs > rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Eq => lhs == rhs,
            Cmp::Ne => lhs != rhs,
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Eq => "==",
            Cmp::Ne => "!=",
        })
    }
}

/// A readable campaign vital.
///
/// In a per-symbol scope (a `PerSymbol` rule or a state-machine transition)
/// the counter metrics read the [`SymbolStats`] rollup
/// for the symbol in context; in global scope — or under the
/// [`Condition::Global`] combinator — they read the campaign totals.
/// Rates, entropy and event counts are always global.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Metric {
    /// Events folded so far (always global).
    EventsSeen,
    /// `Started` events (always global).
    CasesStarted,
    /// Finished cases (symbol-scoped: cases attributed to the symbol).
    CasesFinished,
    /// Skipped cases (always global).
    CasesSkipped,
    /// Exit-0 outcomes (symbol-scoped when a symbol is in context).
    Successes,
    /// Non-zero-exit outcomes (symbol-scoped when a symbol is in context).
    Failures,
    /// Signal-death outcomes (symbol-scoped when a symbol is in context).
    Crashes,
    /// Injections performed (symbol-scoped when a symbol is in context).
    Injections,
    /// Distinct non-success clusters (symbol-scoped when a symbol is in
    /// context).
    Clusters,
    /// Distinct crash-class clusters (symbol-scoped when a symbol is in
    /// context).
    CrashClusters,
    /// Distinct outcome classes (symbol-scoped when a symbol is in
    /// context).
    DistinctOutcomes,
    /// Shannon entropy (bits) of the outcome distribution (always global).
    OutcomeEntropy,
    /// Finished cases per event over the trailing window (always global).
    CaseRate {
        /// Trailing window, in events (clamped to
        /// [`HISTORY_WINDOW`](crate::HISTORY_WINDOW)).
        window: u64,
    },
    /// Injections per event over the trailing window (always global).
    InjectionRate {
        /// Trailing window, in events.
        window: u64,
    },
    /// Crashes per event over the trailing window (always global).
    CrashRate {
        /// Trailing window, in events.
        window: u64,
    },
    /// Events since the machine entered its current state.  Reads `0`
    /// outside a state-machine transition guard.
    EventsInState,
    /// Crashes (for the machine's symbol) since the machine entered its
    /// current state.  Reads `0` outside a transition guard.
    CrashesSinceEntry,
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Metric::EventsSeen => f.write_str("events_seen"),
            Metric::CasesStarted => f.write_str("cases_started"),
            Metric::CasesFinished => f.write_str("cases_finished"),
            Metric::CasesSkipped => f.write_str("cases_skipped"),
            Metric::Successes => f.write_str("successes"),
            Metric::Failures => f.write_str("failures"),
            Metric::Crashes => f.write_str("crashes"),
            Metric::Injections => f.write_str("injections"),
            Metric::Clusters => f.write_str("clusters"),
            Metric::CrashClusters => f.write_str("crash_clusters"),
            Metric::DistinctOutcomes => f.write_str("distinct_outcomes"),
            Metric::OutcomeEntropy => f.write_str("outcome_entropy"),
            Metric::CaseRate { window } => write!(f, "case_rate[{window}]"),
            Metric::InjectionRate { window } => write!(f, "injection_rate[{window}]"),
            Metric::CrashRate { window } => write!(f, "crash_rate[{window}]"),
            Metric::EventsInState => f.write_str("events_in_state"),
            Metric::CrashesSinceEntry => f.write_str("crashes_since_entry"),
        }
    }
}

pub(crate) use crate::state::change;

/// State-machine context a transition guard evaluates with (see
/// [`Metric::EventsInState`] / [`Metric::CrashesSinceEntry`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct MachineContext {
    /// Events folded since the machine entered its current state.
    pub events_in_state: u64,
    /// Crashes attributed to the machine's symbol since entry.
    pub crashes_since_entry: u64,
}

/// Everything a condition can see at evaluation time.
#[derive(Clone, Copy)]
pub struct EvalContext<'a> {
    /// The rolling campaign state.
    pub state: &'a CampaignState,
    /// The symbol in scope (`None` for global rules).
    pub symbol: Option<Symbol>,
    /// The scoped symbol's stats rollup, resolved once at context
    /// construction so metric leaves never repeat the lookup (`None` in
    /// global scope or for an untracked symbol).
    pub stats: Option<&'a SymbolStats>,
    /// State-machine entry bookkeeping (`None` outside transition guards).
    pub machine: Option<MachineContext>,
}

impl<'a> EvalContext<'a> {
    /// A global-scope context over `state`.
    pub fn global(state: &'a CampaignState) -> Self {
        EvalContext { state, symbol: None, stats: None, machine: None }
    }

    /// A per-symbol context over `state`.
    pub fn scoped(state: &'a CampaignState, symbol: Symbol) -> Self {
        EvalContext { state, symbol: Some(symbol), stats: state.symbol(symbol), machine: None }
    }

    fn without_symbol(self) -> Self {
        EvalContext { symbol: None, stats: None, ..self }
    }
}

impl Metric {
    /// Reads the metric's current value in `ctx`.
    ///
    /// Symbol-scoped reads of a symbol no event has mentioned yet — and
    /// machine metrics outside a transition guard — read `0`.
    pub fn read(self, ctx: EvalContext<'_>) -> f64 {
        let state = ctx.state;
        let stats = ctx.stats;
        match self {
            Metric::EventsSeen => state.events_seen as f64,
            Metric::CasesStarted => state.cases_started as f64,
            Metric::CasesSkipped => state.cases_skipped as f64,
            Metric::CasesFinished => match (ctx.symbol, stats) {
                (None, _) => state.cases_finished as f64,
                (_, stats) => stats.map_or(0.0, |s| s.cases_finished as f64),
            },
            Metric::Successes => match (ctx.symbol, stats) {
                (None, _) => state.successes as f64,
                (_, stats) => stats.map_or(0.0, |s| s.successes as f64),
            },
            Metric::Failures => match (ctx.symbol, stats) {
                (None, _) => state.failures as f64,
                (_, stats) => stats.map_or(0.0, |s| s.failures as f64),
            },
            Metric::Crashes => match (ctx.symbol, stats) {
                (None, _) => state.crashes as f64,
                (_, stats) => stats.map_or(0.0, |s| s.crashes as f64),
            },
            Metric::Injections => match (ctx.symbol, stats) {
                (None, _) => state.injections as f64,
                (_, stats) => stats.map_or(0.0, |s| s.injections as f64),
            },
            Metric::Clusters => match (ctx.symbol, stats) {
                (None, _) => state.clusters() as f64,
                (_, stats) => stats.map_or(0.0, |s| s.clusters as f64),
            },
            Metric::CrashClusters => match (ctx.symbol, stats) {
                (None, _) => state.crash_clusters() as f64,
                (_, stats) => stats.map_or(0.0, |s| s.crash_clusters as f64),
            },
            Metric::DistinctOutcomes => match (ctx.symbol, stats) {
                (None, _) => state.distinct_outcomes() as f64,
                (_, stats) => stats.map_or(0.0, |s| s.distinct_outcomes.len() as f64),
            },
            Metric::OutcomeEntropy => state.outcome_entropy(),
            Metric::CaseRate { window } => state.case_rate(window),
            Metric::InjectionRate { window } => state.injection_rate(window),
            Metric::CrashRate { window } => state.crash_rate(window),
            Metric::EventsInState => ctx.machine.map_or(0.0, |m| m.events_in_state as f64),
            Metric::CrashesSinceEntry => ctx.machine.map_or(0.0, |m| m.crashes_since_entry as f64),
        }
    }

    /// The [`change`](crate::state::change) bits this metric's value
    /// depends on (in any fixed scope).  Windowed rates and event counters
    /// move on every fold (`EVENTS`); cumulative counters move exactly when
    /// their counter bit is reported by a fold.
    pub(crate) fn change_mask(self) -> u16 {
        match self {
            Metric::CasesStarted => change::CASES_STARTED,
            Metric::CasesFinished => change::CASES_FINISHED,
            Metric::CasesSkipped => change::CASES_SKIPPED,
            Metric::Successes => change::SUCCESSES,
            Metric::Failures => change::FAILURES,
            Metric::Crashes => change::CRASHES,
            Metric::Injections => change::INJECTIONS,
            Metric::Clusters => change::CLUSTERS,
            Metric::CrashClusters => change::CRASH_CLUSTERS,
            Metric::DistinctOutcomes => change::DISTINCT,
            Metric::OutcomeEntropy => change::ENTROPY,
            // `crashes_since_entry` moves with the symbol's crash counter;
            // its entry-point reset is re-anchored by the transition itself.
            Metric::CrashesSinceEntry => change::CRASHES,
            // Every fold advances the event counter and slides the history
            // window these read.
            Metric::EventsSeen
            | Metric::CaseRate { .. }
            | Metric::InjectionRate { .. }
            | Metric::CrashRate { .. }
            | Metric::EventsInState => change::EVENTS,
        }
    }
}

/// A boolean predicate over the campaign state.
///
/// Built from [`Metric`] thresholds and rate-of-change tests, composed with
/// [`Condition::all`], [`Condition::any`] and [`Condition::negate`].
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Always true.
    Always,
    /// True when every child is (empty: true).
    All(Vec<Condition>),
    /// True when any child is (empty: false).
    Any(Vec<Condition>),
    /// Logical negation.
    Not(Box<Condition>),
    /// Evaluates the child in global scope even inside a per-symbol rule.
    Global(Box<Condition>),
    /// `metric cmp value`.
    Threshold {
        /// The vital to read.
        metric: Metric,
        /// The comparison.
        cmp: Cmp,
        /// The right-hand side.
        value: f64,
    },
    /// `(metric_now - metric_window_events_ago) cmp value` — fires on how
    /// fast a cumulative vital is moving, not its level.  Only meaningful
    /// for the cumulative history metrics ([`Metric::CasesFinished`],
    /// [`Metric::Crashes`], [`Metric::Injections`],
    /// [`Metric::CrashClusters`], [`Metric::DistinctOutcomes`],
    /// [`Metric::OutcomeEntropy`]); other metrics difference their global
    /// current value against the windowed sample of the nearest equivalent,
    /// reading `0` change when there is none.
    RateOfChange {
        /// The vital whose movement is tested (global scope).
        metric: Metric,
        /// Trailing window, in events.
        window: u64,
        /// The comparison.
        cmp: Cmp,
        /// The right-hand side.
        value: f64,
    },
}

impl Condition {
    /// `metric cmp value`.
    pub fn threshold(metric: Metric, cmp: Cmp, value: f64) -> Self {
        Condition::Threshold { metric, cmp, value }
    }

    /// `metric >= value` — the most common guard.
    pub fn at_least(metric: Metric, value: f64) -> Self {
        Condition::Threshold { metric, cmp: Cmp::Ge, value }
    }

    /// Conjunction.
    pub fn all(children: impl IntoIterator<Item = Condition>) -> Self {
        Condition::All(children.into_iter().collect())
    }

    /// Disjunction.
    pub fn any(children: impl IntoIterator<Item = Condition>) -> Self {
        Condition::Any(children.into_iter().collect())
    }

    /// `self AND other`.
    pub fn and(self, other: Condition) -> Self {
        match self {
            Condition::All(mut children) => {
                children.push(other);
                Condition::All(children)
            }
            first => Condition::All(vec![first, other]),
        }
    }

    /// `self OR other`.
    pub fn or(self, other: Condition) -> Self {
        match self {
            Condition::Any(mut children) => {
                children.push(other);
                Condition::Any(children)
            }
            first => Condition::Any(vec![first, other]),
        }
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn negate(self) -> Self {
        Condition::Not(Box::new(self))
    }

    /// Forces global scope for the wrapped condition.
    pub fn global(self) -> Self {
        Condition::Global(Box::new(self))
    }

    /// Evaluates the condition in `ctx`.
    pub fn eval(&self, ctx: EvalContext<'_>) -> bool {
        match self {
            Condition::Always => true,
            Condition::All(children) => children.iter().all(|c| c.eval(ctx)),
            Condition::Any(children) => children.iter().any(|c| c.eval(ctx)),
            Condition::Not(child) => !child.eval(ctx),
            Condition::Global(child) => child.eval(ctx.without_symbol()),
            Condition::Threshold { metric, cmp, value } => cmp.apply(metric.read(ctx), *value),
            Condition::RateOfChange { metric, window, cmp, value } => {
                let then = ctx.state.lookback(*window);
                let global = ctx.without_symbol();
                let now = metric.read(global);
                let past = match metric {
                    Metric::CasesFinished => then.cases_finished as f64,
                    Metric::Crashes => then.crashes as f64,
                    Metric::Injections => then.injections as f64,
                    Metric::CrashClusters => then.crash_clusters as f64,
                    Metric::DistinctOutcomes => then.distinct_outcomes as f64,
                    Metric::OutcomeEntropy => then.entropy,
                    _ => now,
                };
                cmp.apply(now - past, *value)
            }
        }
    }

    /// The [`change`](crate::state::change) bits that can flip this
    /// condition's verdict — the union of its metric leaves'
    /// [`Metric::change_mask`]s (rate-of-change tests slide their window on
    /// every fold, so they wake on every event).
    pub(crate) fn change_mask(&self) -> u16 {
        match self {
            Condition::Always => 0,
            Condition::All(children) | Condition::Any(children) => {
                children.iter().fold(0, |mask, c| mask | c.change_mask())
            }
            Condition::Not(child) | Condition::Global(child) => child.change_mask(),
            Condition::Threshold { metric, .. } => metric.change_mask(),
            Condition::RateOfChange { .. } => change::EVENTS,
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Always => f.write_str("always"),
            Condition::All(children) => {
                f.write_str("(")?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" && ")?;
                    }
                    write!(f, "{c}")?;
                }
                f.write_str(")")
            }
            Condition::Any(children) => {
                f.write_str("(")?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" || ")?;
                    }
                    write!(f, "{c}")?;
                }
                f.write_str(")")
            }
            Condition::Not(child) => write!(f, "!{child}"),
            Condition::Global(child) => write!(f, "global({child})"),
            Condition::Threshold { metric, cmp, value } => write!(f, "{metric} {cmp} {value}"),
            Condition::RateOfChange { metric, window, cmp, value } => {
                write!(f, "d[{window}]({metric}) {cmp} {value}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_controller::{InjectionRecord, TestLog, TestOutcome};
    use lfi_runtime::{ExitStatus, Signal};
    use lfi_scenario::Plan;

    fn crash(state: &mut CampaignState, index: usize, function: &str) {
        state.fold_started(index, "case");
        state.fold_injection(
            index,
            &InjectionRecord {
                function: Symbol::intern(function),
                call_number: index as u64 + 1,
                retval: Some(-1),
                errno: Some(5),
                side_effects: Vec::new(),
                call_original: false,
                stack: Vec::new(),
            },
        );
        state.fold_outcome(
            index,
            &TestOutcome {
                name: "case".into(),
                status: ExitStatus::Crashed(Signal::Segv),
                log: TestLog::default(),
                replay: Plan::default(),
                calls: Vec::new(),
                calls_dropped: 0,
            },
        );
    }

    #[test]
    fn thresholds_scope_by_symbol() {
        let mut state = CampaignState::new();
        crash(&mut state, 0, "read");
        crash(&mut state, 1, "read");

        let want_crashes = Condition::at_least(Metric::Crashes, 2.0);
        assert!(want_crashes.eval(EvalContext::global(&state)));
        assert!(want_crashes.eval(EvalContext::scoped(&state, Symbol::intern("read"))));
        assert!(!want_crashes.eval(EvalContext::scoped(&state, Symbol::intern("write"))));
        // Global combinator strips the symbol scope.
        assert!(want_crashes.clone().global().eval(EvalContext::scoped(&state, Symbol::intern("write"))));

        let combined = want_crashes
            .clone()
            .and(Condition::at_least(Metric::Injections, 1.0))
            .or(Condition::Always.negate());
        assert!(combined.eval(EvalContext::global(&state)));
        assert_eq!(
            Condition::threshold(Metric::CrashRate { window: 8 }, Cmp::Gt, 0.0).to_string(),
            "crash_rate[8] > 0"
        );
    }

    #[test]
    fn rate_of_change_differences_the_window() {
        let mut state = CampaignState::new();
        for index in 0..4 {
            crash(&mut state, index, "close");
        }
        // 12 events, 4 crashes; over the last 3 events exactly one crash
        // landed (each case is started/injection/outcome).
        let moving = Condition::RateOfChange { metric: Metric::Crashes, window: 3, cmp: Cmp::Ge, value: 1.0 };
        assert!(moving.eval(EvalContext::global(&state)));
        let stalled = Condition::RateOfChange { metric: Metric::Crashes, window: 3, cmp: Cmp::Eq, value: 0.0 };
        assert!(!stalled.eval(EvalContext::global(&state)));
        // Non-history metrics read zero change.
        let zero = Condition::RateOfChange { metric: Metric::CasesSkipped, window: 3, cmp: Cmp::Eq, value: 0.0 };
        assert!(zero.eval(EvalContext::global(&state)));
    }
}
