//! Per-symbol [`StateMachine`]s: named states with condition-guarded
//! transitions, msr-style, plus the canonical prebuilt [`CircuitBreaker`].

use crate::condition::{Cmp, Condition, Metric};
use crate::engine::Action;

/// One guarded transition: when the machine sits in `from` and `when`
/// holds, it moves to `to` and emits `actions`.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Source state name.
    pub from: String,
    /// Destination state name.
    pub to: String,
    /// Guard condition, evaluated in the machine's per-symbol scope with
    /// [`Metric::EventsInState`] / [`Metric::CrashesSinceEntry`] available.
    pub when: Condition,
    /// Actions emitted when the transition fires.
    pub actions: Vec<Action>,
}

/// A named-state machine instantiated per symbol by the engine.
///
/// The engine keeps one instance per (machine, symbol) pair, created lazily
/// the first time an event mentions the symbol.  Per event, at most one
/// transition fires per instance: transitions are tried in declaration
/// order and the first whose guard holds wins — re-ordering transitions is
/// therefore semantically meaningful, exactly as in `slowtec/msr`'s rule
/// lists.
#[derive(Debug, Clone, PartialEq)]
pub struct StateMachine {
    /// Machine name (used in decision-log lines and metric labels).
    pub name: String,
    /// The state every instance starts in.
    pub initial: String,
    /// The guarded transitions, in priority order.
    pub transitions: Vec<Transition>,
}

impl StateMachine {
    /// A machine named `name` starting in `initial` with no transitions.
    pub fn new(name: impl Into<String>, initial: impl Into<String>) -> Self {
        StateMachine { name: name.into(), initial: initial.into(), transitions: Vec::new() }
    }

    /// Adds a transition (builder style).
    pub fn transition(
        mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        when: Condition,
        actions: impl IntoIterator<Item = Action>,
    ) -> Self {
        self.transitions.push(Transition {
            from: from.into(),
            to: to.into(),
            when,
            actions: actions.into_iter().collect(),
        });
        self
    }
}

/// The canonical prebuilt machine: a per-symbol circuit breaker.
///
/// States and transitions:
///
/// ```text
///           crash_clusters >= trip_after
///  Closed ────────────────────────────────▶ Open      (Mute)
///           events_in_state >= cooldown
///  Open ──────────────────────────────────▶ HalfOpen  (Unmute: one probe window)
///           crashes_since_entry >= 1
///  HalfOpen ──────────────────────────────▶ Open      (Mute again)
///           events_in_state >= cooldown && crashes_since_entry == 0
///  HalfOpen ──────────────────────────────▶ Closed    (stay unmuted)
/// ```
///
/// While Open, the symbol is muted: the explorer parks its frontier cells
/// and gated workloads veto cases that would inject into it, so no further
/// injections reach the symbol (the "provably suppresses" guarantee the
/// closed-loop tests pin).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitBreaker {
    /// Distinct crash-class clusters that trip the breaker.
    pub trip_after: u64,
    /// Events the breaker holds each of Open (before probing) and HalfOpen
    /// (before declaring recovery).
    pub cooldown_events: u64,
}

/// `Closed` state name.
pub const BREAKER_CLOSED: &str = "Closed";
/// `Open` state name.
pub const BREAKER_OPEN: &str = "Open";
/// `HalfOpen` state name.
pub const BREAKER_HALF_OPEN: &str = "HalfOpen";

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker { trip_after: 2, cooldown_events: 64 }
    }
}

impl CircuitBreaker {
    /// A breaker tripping after `trip_after` distinct crash clusters, with
    /// the default cooldown.
    pub fn tripping_after(trip_after: u64) -> Self {
        CircuitBreaker { trip_after, ..Self::default() }
    }

    /// Sets the cooldown window (events spent Open before a HalfOpen
    /// probe, and HalfOpen before closing).
    pub fn cooldown(mut self, events: u64) -> Self {
        self.cooldown_events = events;
        self
    }

    /// Lowers the breaker into a plain [`StateMachine`] named
    /// `circuit-breaker`.
    pub fn machine(self) -> StateMachine {
        let cooldown = self.cooldown_events as f64;
        StateMachine::new("circuit-breaker", BREAKER_CLOSED)
            .transition(
                BREAKER_CLOSED,
                BREAKER_OPEN,
                Condition::at_least(Metric::CrashClusters, self.trip_after as f64),
                [Action::Mute, Action::EmitMetric { name: "breaker/tripped".into(), value: 1.0 }],
            )
            .transition(
                BREAKER_OPEN,
                BREAKER_HALF_OPEN,
                Condition::at_least(Metric::EventsInState, cooldown),
                [Action::Unmute, Action::EmitMetric { name: "breaker/probing".into(), value: 1.0 }],
            )
            .transition(
                BREAKER_HALF_OPEN,
                BREAKER_OPEN,
                Condition::at_least(Metric::CrashesSinceEntry, 1.0),
                [Action::Mute, Action::EmitMetric { name: "breaker/reopened".into(), value: 1.0 }],
            )
            .transition(
                BREAKER_HALF_OPEN,
                BREAKER_CLOSED,
                Condition::at_least(Metric::EventsInState, cooldown).and(Condition::threshold(
                    Metric::CrashesSinceEntry,
                    Cmp::Eq,
                    0.0,
                )),
                [Action::EmitMetric { name: "breaker/closed".into(), value: 1.0 }],
            )
    }
}

impl From<CircuitBreaker> for StateMachine {
    fn from(breaker: CircuitBreaker) -> StateMachine {
        breaker.machine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_lowers_to_four_transitions() {
        let machine = CircuitBreaker::tripping_after(3).cooldown(16).machine();
        assert_eq!(machine.name, "circuit-breaker");
        assert_eq!(machine.initial, BREAKER_CLOSED);
        assert_eq!(machine.transitions.len(), 4);
        assert_eq!(machine.transitions[0].from, BREAKER_CLOSED);
        assert_eq!(machine.transitions[0].to, BREAKER_OPEN);
        assert_eq!(machine.transitions[0].actions[0], Action::Mute);
        assert_eq!(machine.transitions[0].when, Condition::at_least(Metric::CrashClusters, 3.0));
        assert_eq!(machine.transitions[1].when, Condition::at_least(Metric::EventsInState, 16.0));
    }
}
