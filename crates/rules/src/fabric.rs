//! Closed-loop control over fabric jobs: a [`JobMonitor`] polls a job's
//! event stream through the same `events`/`status` verbs the wire protocol
//! exposes, feeds a [`RuleEngine`], and applies `Pause`/`Cancel` decisions
//! through the job controls.
//!
//! The [`JobControl`] trait abstracts the two control surfaces — an
//! in-process [`FabricHandle`] and a TCP [`FabricClient`] — so the same
//! monitor drives a local fleet or a remote campaign service.

use std::collections::HashMap;

use lfi_controller::{InjectionRecord, TestLog, TestOutcome};
use lfi_explore::OutcomeClass;
use lfi_fabric::{FabricClient, FabricHandle, JobEvent, JobEventKind, JobId, JobSnapshot, JobState};
use lfi_intern::Symbol;
use lfi_runtime::ExitStatus;
use lfi_scenario::Plan;

use crate::engine::{Action, Decision, RuleEngine, RuleSet};

/// The slice of job control a [`JobMonitor`] needs: the `events` and
/// `status` read verbs plus the `pause`/`cancel` controls.  Implemented
/// for [`FabricHandle`] (in-process) and [`FabricClient`] (wire); all
/// methods return `None`/`false` for unknown jobs or transport errors, so
/// a monitor degrades to read-nothing/apply-nothing instead of panicking.
pub trait JobControl {
    /// Events with `seq > after`, bounded by `max`; returns the next
    /// cursor and the page.
    fn job_events(&mut self, job: JobId, after: u64, max: usize) -> Option<(u64, Vec<JobEvent>)>;

    /// A point-in-time snapshot of the job.
    fn job_status(&mut self, job: JobId) -> Option<JobSnapshot>;

    /// Pauses the job; `true` when the transition was applied.
    fn pause_job(&mut self, job: JobId) -> bool;

    /// Resumes a paused job; `true` when the transition was applied.
    fn resume_job(&mut self, job: JobId) -> bool;

    /// Cancels the job; `true` when the transition was applied.
    fn cancel_job(&mut self, job: JobId) -> bool;
}

impl JobControl for FabricHandle {
    fn job_events(&mut self, job: JobId, after: u64, max: usize) -> Option<(u64, Vec<JobEvent>)> {
        FabricHandle::events(self, job, after, max)
    }

    fn job_status(&mut self, job: JobId) -> Option<JobSnapshot> {
        FabricHandle::status(self, job)
    }

    fn pause_job(&mut self, job: JobId) -> bool {
        FabricHandle::pause(self, job) == Some(JobState::Paused)
    }

    fn resume_job(&mut self, job: JobId) -> bool {
        matches!(FabricHandle::resume(self, job), Some(JobState::Running | JobState::Queued))
    }

    fn cancel_job(&mut self, job: JobId) -> bool {
        FabricHandle::cancel(self, job) == Some(JobState::Cancelled)
    }
}

impl JobControl for FabricClient {
    fn job_events(&mut self, job: JobId, after: u64, max: usize) -> Option<(u64, Vec<JobEvent>)> {
        FabricClient::events(self, job, after, max).ok()
    }

    fn job_status(&mut self, job: JobId) -> Option<JobSnapshot> {
        FabricClient::status(self, job).ok()
    }

    fn pause_job(&mut self, job: JobId) -> bool {
        FabricClient::pause(self, job).ok() == Some(JobState::Paused)
    }

    fn resume_job(&mut self, job: JobId) -> bool {
        matches!(FabricClient::resume(self, job).ok(), Some(JobState::Running | JobState::Queued))
    }

    fn cancel_job(&mut self, job: JobId) -> bool {
        FabricClient::cancel(self, job).ok() == Some(JobState::Cancelled)
    }
}

/// Drives a per-job [`RuleEngine`] from a fabric job's event stream.
///
/// [`JobMonitor::poll`] pulls the next page of events after the cursor,
/// folds each into the engine (wire events are re-keyed by case name; the
/// monitor assigns dense indices and synthesizes the injection records the
/// engine's state fold expects), then applies any `Pause`/`Cancel`
/// decisions through the [`JobControl`] and refreshes the `job/*` status
/// gauges in the engine's sink.
///
/// Determinism note: the job event stream is already serialized (dense
/// `seq`), so rule evaluation order is exact regardless of poll timing —
/// polling more or less often changes *when* decisions apply, never *what*
/// the decision log contains up to a given event seq.
#[derive(Debug)]
pub struct JobMonitor<C: JobControl> {
    control: C,
    job: JobId,
    cursor: u64,
    engine: RuleEngine,
    /// Dense case indices for the name-keyed wire events.
    case_index: HashMap<String, usize>,
}

impl<C: JobControl> JobMonitor<C> {
    /// Monitors `job` through `control`, evaluating `set`.
    pub fn new(control: C, job: JobId, set: RuleSet) -> Self {
        JobMonitor { control, job, cursor: 0, engine: RuleEngine::new(set), case_index: HashMap::new() }
    }

    /// The monitored job.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// The event-stream cursor (next `seq` to read).
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// The engine (decision log, state, metrics).
    pub fn engine(&self) -> &RuleEngine {
        &self.engine
    }

    /// Mutable engine access (e.g. [`RuleEngine::clear_pause`] after a
    /// resume).
    pub fn engine_mut(&mut self) -> &mut RuleEngine {
        &mut self.engine
    }

    /// Releases the control handle.
    pub fn into_control(self) -> C {
        self.control
    }

    /// Pulls up to `max` events, folds them, applies control decisions,
    /// and refreshes status gauges.  Returns how many events were folded;
    /// `0` means the cursor is at the stream head (or the job is unknown).
    pub fn poll(&mut self, max: usize) -> usize {
        let Some((next, events)) = self.control.job_events(self.job, self.cursor, max) else {
            return 0;
        };
        self.cursor = next;
        let folded = events.len();
        let before = self.engine.decisions().len();
        for event in events {
            self.fold(event);
        }
        let new: Vec<Decision> = self.engine.decisions()[before..].to_vec();
        for decision in &new {
            match decision.action {
                Action::Pause => {
                    self.control.pause_job(self.job);
                }
                Action::Cancel => {
                    self.control.cancel_job(self.job);
                }
                _ => {}
            }
        }
        if let Some(snapshot) = self.control.job_status(self.job) {
            let sink = self.engine.sink_mut();
            sink.gauge("job/pending", &[], snapshot.pending as f64);
            sink.gauge("job/outstanding", &[], snapshot.outstanding as f64);
            sink.gauge("job/started", &[], snapshot.progress.started as f64);
            sink.gauge("job/finished", &[], snapshot.progress.finished as f64);
            sink.gauge("job/skipped", &[], snapshot.progress.skipped as f64);
            sink.gauge("job/crashes", &[], snapshot.progress.crashes as f64);
            sink.gauge("job/injections", &[], snapshot.progress.injections as f64);
            sink.gauge("job/requeued", &[], snapshot.requeued as f64);
            sink.gauge("job/clusters", &[], snapshot.clusters as f64);
        }
        self.engine.export_vitals();
        folded
    }

    /// Index for a case name, assigned densely on first sight.
    fn index_of(&mut self, case: &str) -> usize {
        let next = self.case_index.len();
        *self.case_index.entry(case.to_owned()).or_insert(next)
    }

    /// Folds one wire event into the engine.
    fn fold(&mut self, event: JobEvent) {
        match event.kind {
            JobEventKind::State(state) => {
                let sink = self.engine.sink_mut();
                sink.incr("job/state_changes", &[("state", &state.to_string())], 1.0);
            }
            JobEventKind::Started { case } => {
                let index = self.index_of(&case);
                self.engine.case_started(index, &case);
            }
            JobEventKind::Injection { case, function, retval, errno } => {
                let index = self.index_of(&case);
                // The wire strips call ordinals and stacks; synthesize the
                // record the state fold expects.  Cluster keys degrade to
                // (symbol, empty stack, class) — coarser than in-process
                // clustering but stable.
                let record = InjectionRecord {
                    function: Symbol::intern(&function),
                    call_number: 1,
                    retval,
                    errno,
                    side_effects: Vec::new(),
                    call_original: retval.is_none(),
                    stack: Vec::new(),
                };
                self.engine.injection(index, &record);
            }
            JobEventKind::Finished { case, outcome, injections } => {
                let index = self.index_of(&case);
                let status = match outcome {
                    OutcomeClass::Success => ExitStatus::Exited(0),
                    OutcomeClass::Failure(code) => ExitStatus::Exited(code),
                    OutcomeClass::Crash(signal) => ExitStatus::Crashed(signal),
                };
                let synthesized = TestOutcome {
                    name: case,
                    status,
                    log: TestLog::default(),
                    replay: Plan::default(),
                    calls: Vec::new(),
                    calls_dropped: 0,
                };
                let _ = injections; // already folded per Injection event
                self.engine.outcome(index, &synthesized);
            }
            JobEventKind::Skipped { case } => {
                let index = self.index_of(&case);
                self.engine.skip(index, &case);
            }
            JobEventKind::Requeued { cells } => {
                self.engine.sink_mut().incr("job/requeued_cells", &[], cells as f64);
            }
        }
    }
}
