//! # lfi-rules — closed-loop campaign control
//!
//! The paper's loop is generate → inject → observe → **refine**, but the
//! refine half of the seed lived only in the explorer's hard-coded
//! crash-adjacent heuristic: `CaseEvent`s flowed one way into passive
//! collectors.  This crate turns refinement into a pluggable policy — a
//! rule engine in the style of `slowtec/msr`'s
//! `SyncRuntime { rules, state_machines }` — evaluated live against the
//! event stream of a running campaign, with decisions fed back mid-flight:
//!
//! ```text
//!   CampaignRun / fabric job ──CaseEvents──▶ CampaignState (rolling vitals)
//!            ▲                                   │
//!            │                         Conditions / StateMachines
//!            │                                   │
//!            └────── Actions ◀─── Decisions ◀────┘
//!     (escalate, mute, reweight,      │
//!      pause, cancel)            MetricsSink (NDJSON)
//! ```
//!
//! * [`CampaignState`] — per-symbol outcome counters, crash-cluster counts,
//!   distinct-outcome entropy, and case/injection/crash rates over sliding
//!   windows, folded incrementally from the event stream.
//! * [`Condition`] — a predicate algebra over those vitals: thresholds,
//!   rate-of-change tests, and/or/not combinators, with global and
//!   per-symbol scoping.
//! * [`StateMachine`] / [`CircuitBreaker`] — named states with guarded
//!   transitions, instantiated per symbol; the breaker
//!   (Closed→Open→HalfOpen) ships as the canonical prebuilt machine.
//! * [`Action`] — decisions wired into the existing control handles:
//!   escalate sibling errnos/adjacent ordinals onto the explorer frontier,
//!   mute/re-weight a generator, pause/cancel the run, emit a metric.
//! * [`MetricsSink`] — structured counter/gauge/histogram points with
//!   labels, exported as NDJSON for the `BENCH_*.json` tooling.
//!
//! Drivers connect the engine to the two event sources: [`RulesHarness`] +
//! [`ClosedLoop`] attach to [`Explorer`](lfi_explore::Explorer) batch
//! campaigns through [`CampaignObserver`](lfi_controller::CampaignObserver)
//! hooks, and [`JobMonitor`] polls a fabric job's `events`/`status` wire
//! verbs through [`JobControl`].
//!
//! # Determinism contract (pinned)
//!
//! Rules evaluate **on the event stream in sequence order** — the
//! [`RuleEngine`] folds one event, then evaluates rules in declaration
//! order (per-symbol rules per tracked symbol in name order), then state
//! machines, emitting at most one decision batch per event; see the
//! [`engine`] module docs for the exact order.  Decisions are delivered at
//! most once per event sequence number, and a `Cancel` decision freezes the
//! engine so post-cancel races can never extend the log.  Consequently a
//! fixed-seed serial campaign (`parallelism(1)`, deterministic workload)
//! produces a **byte-identical** [`RuleEngine::decision_log`] across
//! reruns — the property `tests/closed_loop.rs` pins, and the same
//! pinned-contract style as `Explorer` and `snapshot`/`restore`.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod condition;
pub mod driver;
pub mod engine;
pub mod fabric;
pub mod machine;
pub mod metrics;
pub mod state;

pub use condition::{Cmp, Condition, EvalContext, MachineContext, Metric};
pub use driver::{ClosedLoop, GatedWorkload, RulesHarness};
pub use engine::{Action, Decision, Rule, RuleEngine, RuleScope, RuleSet};
pub use fabric::{JobControl, JobMonitor};
pub use machine::{CircuitBreaker, StateMachine, Transition, BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN};
pub use metrics::{HistogramPoint, MetricKind, MetricPoint, MetricsSink};
pub use state::{CampaignState, Sample, SymbolStats, HISTORY_WINDOW};
