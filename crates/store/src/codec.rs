//! Binary encode/decode of the persisted domain types.
//!
//! Writes go through the `bytes` shim's `BufMut`; reads go through a
//! checked [`Reader`] over `Buf` that verifies `remaining()` before every
//! access, so hostile or truncated payloads surface as
//! [`StoreError::corrupt`] with a byte offset — never a panic.
//!
//! Everything is little-endian.  Strings are `u32` length + UTF-8 bytes;
//! options are a presence byte; collections are a `u32` count followed by
//! the elements.  [`Symbol`]s are persisted by *name* (and re-interned on
//! load), so files are portable across processes and interning orders.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use lfi_explore::{CrashCluster, ExplorationDelta, ExplorationStore, FrontierCell, FunctionCoverage, OutcomeClass};
use lfi_intern::Symbol;
use lfi_profile::{ErrorReturn, FaultProfile, FunctionProfile, ProfileKey, ProfileStore, SideEffect, SideEffectKind};
use lfi_scenario::FaultCell;

use crate::{AckOutcome, AckRecord, ProfileEntry, StoreError};

/// A bounds-checked read cursor: every accessor validates `remaining()`
/// first and reports the byte offset (within the payload) on failure.
pub(crate) struct Reader {
    buf: Bytes,
    len: usize,
}

impl Reader {
    pub fn new(payload: &[u8]) -> Self {
        Self { buf: Bytes::copy_from_slice(payload), len: payload.len() }
    }

    /// Offset of the next unread byte.
    pub fn offset(&self) -> u64 {
        (self.len - self.buf.remaining()) as u64
    }

    fn need(&self, bytes: usize, what: &str) -> Result<(), StoreError> {
        if self.buf.remaining() < bytes {
            return Err(StoreError::corrupt(self.offset(), format!("truncated while reading {what}")));
        }
        Ok(())
    }

    pub fn u8(&mut self, what: &str) -> Result<u8, StoreError> {
        self.need(1, what)?;
        Ok(self.buf.get_u8())
    }

    pub fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        self.need(4, what)?;
        Ok(self.buf.get_u32_le())
    }

    pub fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        self.need(8, what)?;
        Ok(self.buf.get_u64_le())
    }

    pub fn i64(&mut self, what: &str) -> Result<i64, StoreError> {
        self.need(8, what)?;
        Ok(self.buf.get_i64_le())
    }

    pub fn flag(&mut self, what: &str) -> Result<bool, StoreError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StoreError::corrupt(self.offset() - 1, format!("bad flag byte {other} for {what}"))),
        }
    }

    pub fn opt_u64(&mut self, what: &str) -> Result<Option<u64>, StoreError> {
        Ok(if self.flag(what)? { Some(self.u64(what)?) } else { None })
    }

    pub fn opt_i64(&mut self, what: &str) -> Result<Option<i64>, StoreError> {
        Ok(if self.flag(what)? { Some(self.i64(what)?) } else { None })
    }

    /// A collection count, sanity-bounded by the bytes actually remaining
    /// (each element needs at least `min_element` bytes), so a hostile
    /// length can never trigger a huge allocation.
    pub fn count(&mut self, min_element: usize, what: &str) -> Result<usize, StoreError> {
        let count = self.u32(what)? as usize;
        if count.saturating_mul(min_element.max(1)) > self.buf.remaining() {
            return Err(StoreError::corrupt(self.offset() - 4, format!("impossible {what} count {count}")));
        }
        Ok(count)
    }

    /// Reads a length-prefixed string as a borrowed `&str` (zero-copy) and
    /// hands it to `with` before advancing past it.
    fn str_with<T>(&mut self, what: &str, with: impl FnOnce(&str) -> T) -> Result<T, StoreError> {
        let len = self.u32(what)? as usize;
        self.need(len, what)?;
        let text = std::str::from_utf8(&self.buf.chunk()[..len])
            .map_err(|_| StoreError::corrupt(self.offset(), format!("non-UTF-8 {what}")))?;
        let value = with(text);
        self.buf.advance(len);
        Ok(value)
    }

    pub fn string(&mut self, what: &str) -> Result<String, StoreError> {
        self.str_with(what, str::to_owned)
    }

    pub fn opt_string(&mut self, what: &str) -> Result<Option<String>, StoreError> {
        Ok(if self.flag(what)? { Some(self.string(what)?) } else { None })
    }

    pub fn symbol(&mut self, what: &str) -> Result<Symbol, StoreError> {
        self.str_with(what, Symbol::intern)
    }

    /// The payload must be fully consumed — trailing garbage is corruption.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.buf.remaining() != 0 {
            return Err(StoreError::corrupt(self.offset(), "trailing bytes after record payload"));
        }
        Ok(())
    }
}

fn put_string(out: &mut BytesMut, text: &str) {
    out.put_u32_le(text.len() as u32);
    out.put_slice(text.as_bytes());
}

fn put_opt_string(out: &mut BytesMut, text: Option<&str>) {
    match text {
        Some(text) => {
            out.put_u8(1);
            put_string(out, text);
        }
        None => out.put_u8(0),
    }
}

fn put_opt_u64(out: &mut BytesMut, value: Option<u64>) {
    match value {
        Some(value) => {
            out.put_u8(1);
            out.put_u64_le(value);
        }
        None => out.put_u8(0),
    }
}

fn put_opt_i64(out: &mut BytesMut, value: Option<i64>) {
    match value {
        Some(value) => {
            out.put_u8(1);
            out.put_i64_le(value);
        }
        None => out.put_u8(0),
    }
}

fn put_flag(out: &mut BytesMut, value: bool) {
    out.put_u8(u8::from(value));
}

// -- fault cells ------------------------------------------------------------

fn put_cell(out: &mut BytesMut, cell: &FaultCell) {
    put_string(out, cell.function.as_str());
    out.put_u64_le(cell.call_ordinal);
    out.put_i64_le(cell.retval);
    put_opt_i64(out, cell.errno);
}

fn get_cell(r: &mut Reader) -> Result<FaultCell, StoreError> {
    Ok(FaultCell {
        function: r.symbol("cell function")?,
        call_ordinal: r.u64("cell ordinal")?,
        retval: r.i64("cell retval")?,
        errno: r.opt_i64("cell errno")?,
    })
}

fn put_cells(out: &mut BytesMut, cells: &[FaultCell]) {
    out.put_u32_le(cells.len() as u32);
    for cell in cells {
        put_cell(out, cell);
    }
}

fn get_cells(r: &mut Reader, what: &str) -> Result<Vec<FaultCell>, StoreError> {
    let count = r.count(21, what)?;
    let mut cells = Vec::with_capacity(count);
    for _ in 0..count {
        cells.push(get_cell(r)?);
    }
    Ok(cells)
}

fn put_outcome(out: &mut BytesMut, outcome: OutcomeClass) {
    // The Display/parse pair is the stable outcome encoding — shared with
    // the XML store, so the two formats can never drift apart.
    put_string(out, &outcome.to_string());
}

fn get_outcome(r: &mut Reader) -> Result<OutcomeClass, StoreError> {
    let text = r.string("outcome class")?;
    OutcomeClass::parse(&text).ok_or_else(|| StoreError::corrupt(r.offset(), format!("unknown outcome class {text:?}")))
}

fn put_cluster(out: &mut BytesMut, cluster: &CrashCluster) {
    put_string(out, cluster.function.as_str());
    out.put_u32_le(cluster.stack.len() as u32);
    for frame in &cluster.stack {
        put_string(out, frame.as_str());
    }
    put_outcome(out, cluster.outcome);
    out.put_u64_le(cluster.count);
    put_cell(out, &cluster.example);
    put_string(out, &cluster.example_case);
}

fn get_cluster(r: &mut Reader) -> Result<CrashCluster, StoreError> {
    let function = r.symbol("cluster function")?;
    let frames = r.count(4, "cluster stack")?;
    let mut stack = Vec::with_capacity(frames);
    for _ in 0..frames {
        stack.push(r.symbol("stack frame")?);
    }
    Ok(CrashCluster {
        function,
        stack,
        outcome: get_outcome(r)?,
        count: r.u64("cluster count")?,
        example: get_cell(r)?,
        example_case: r.string("cluster example case")?,
    })
}

fn put_clusters(out: &mut BytesMut, clusters: &[CrashCluster]) {
    out.put_u32_le(clusters.len() as u32);
    for cluster in clusters {
        put_cluster(out, cluster);
    }
}

fn get_clusters(r: &mut Reader) -> Result<Vec<CrashCluster>, StoreError> {
    let count = r.count(8, "cluster table")?;
    let mut clusters = Vec::with_capacity(count);
    for _ in 0..count {
        clusters.push(get_cluster(r)?);
    }
    Ok(clusters)
}

fn put_coverage(out: &mut BytesMut, coverage: &[(Symbol, FunctionCoverage)]) {
    out.put_u32_le(coverage.len() as u32);
    for (symbol, function) in coverage {
        put_string(out, symbol.as_str());
        out.put_u64_le(function.observed_calls);
        out.put_u32_le(function.triggered.len() as u32);
        for &(ordinal, retval, errno) in &function.triggered {
            out.put_u64_le(ordinal);
            out.put_i64_le(retval);
            put_opt_i64(out, errno);
        }
    }
}

fn get_coverage(r: &mut Reader) -> Result<Vec<(Symbol, FunctionCoverage)>, StoreError> {
    let count = r.count(16, "coverage table")?;
    let mut coverage = Vec::with_capacity(count);
    for _ in 0..count {
        let symbol = r.symbol("coverage function")?;
        let observed_calls = r.u64("observed calls")?;
        let triggered_count = r.count(17, "triggered cells")?;
        let mut function = FunctionCoverage { observed_calls, triggered: Default::default() };
        for _ in 0..triggered_count {
            let ordinal = r.u64("triggered ordinal")?;
            let retval = r.i64("triggered retval")?;
            let errno = r.opt_i64("triggered errno")?;
            function.triggered.insert((ordinal, retval, errno));
        }
        coverage.push((symbol, function));
    }
    Ok(coverage)
}

fn put_frontier(out: &mut BytesMut, frontier: &[FrontierCell]) {
    out.put_u32_le(frontier.len() as u32);
    for entry in frontier {
        put_cell(out, &entry.cell);
        out.put_i64_le(i64::from(entry.priority));
    }
}

fn get_frontier(r: &mut Reader, what: &str) -> Result<Vec<FrontierCell>, StoreError> {
    let count = r.count(29, what)?;
    let mut frontier = Vec::with_capacity(count);
    for _ in 0..count {
        let cell = get_cell(r)?;
        let priority = r.i64("frontier priority")?;
        let priority = i32::try_from(priority)
            .map_err(|_| StoreError::corrupt(r.offset(), format!("priority {priority} out of range")))?;
        frontier.push(FrontierCell { cell, priority });
    }
    Ok(frontier)
}

// -- exploration store ------------------------------------------------------

/// Encodes an [`ExplorationStore`] snapshot payload.
pub fn encode_exploration_store(store: &ExplorationStore) -> Vec<u8> {
    let mut out = BytesMut::with_capacity(256 + store.frontier.len() * 32);
    out.put_u64_le(store.seed);
    out.put_u64_le(store.batch_size as u64);
    out.put_u64_le(store.parallelism as u64);
    put_flag(&mut out, store.halt_on_crash);
    put_opt_u64(&mut out, store.case_budget);
    put_opt_u64(&mut out, store.injection_budget);
    put_opt_u64(&mut out, store.time_budget_ms);
    out.put_u64_le(store.universe as u64);
    out.put_u64_le(store.batch_index);
    out.put_u64_le(store.rng_draws);
    put_flag(&mut out, store.probe_done);
    put_flag(&mut out, store.crash_found);
    out.put_u64_le(store.cases_executed);
    out.put_u64_le(store.injections_performed);
    out.put_u64_le(store.elapsed_ms);
    put_frontier(&mut out, &store.frontier);
    put_cells(&mut out, &store.executed);
    put_cells(&mut out, &store.unreached);
    out.put_u32_le(store.pruned_functions.len() as u32);
    for symbol in &store.pruned_functions {
        put_string(&mut out, symbol.as_str());
    }
    put_coverage(&mut out, &store.coverage);
    put_clusters(&mut out, &store.clusters);
    out.to_vec()
}

/// Decodes an [`ExplorationStore`] snapshot payload.
pub fn decode_exploration_store(payload: &[u8]) -> Result<ExplorationStore, StoreError> {
    let mut r = Reader::new(payload);
    let store = ExplorationStore {
        seed: r.u64("seed")?,
        batch_size: r.u64("batch size")? as usize,
        parallelism: r.u64("parallelism")? as usize,
        halt_on_crash: r.flag("halt_on_crash")?,
        case_budget: r.opt_u64("case budget")?,
        injection_budget: r.opt_u64("injection budget")?,
        time_budget_ms: r.opt_u64("time budget")?,
        universe: r.u64("universe")? as usize,
        batch_index: r.u64("batch index")?,
        rng_draws: r.u64("rng draws")?,
        probe_done: r.flag("probe_done")?,
        crash_found: r.flag("crash_found")?,
        cases_executed: r.u64("cases executed")?,
        injections_performed: r.u64("injections performed")?,
        elapsed_ms: r.u64("elapsed ms")?,
        frontier: get_frontier(&mut r, "frontier")?,
        executed: get_cells(&mut r, "executed cells")?,
        unreached: get_cells(&mut r, "unreached cells")?,
        pruned_functions: {
            let count = r.count(4, "pruned functions")?;
            let mut pruned = Vec::with_capacity(count);
            for _ in 0..count {
                pruned.push(r.symbol("pruned function")?);
            }
            pruned
        },
        coverage: get_coverage(&mut r)?,
        clusters: get_clusters(&mut r)?,
    };
    r.finish()?;
    Ok(store)
}

// -- exploration delta ------------------------------------------------------

/// Encodes an [`ExplorationDelta`] payload.
pub fn encode_exploration_delta(delta: &ExplorationDelta) -> Vec<u8> {
    let mut out = BytesMut::with_capacity(128);
    out.put_u64_le(delta.batch_index);
    out.put_u64_le(delta.rng_draws);
    put_flag(&mut out, delta.probe_done);
    put_flag(&mut out, delta.crash_found);
    out.put_u64_le(delta.cases_executed);
    out.put_u64_le(delta.injections_performed);
    out.put_u64_le(delta.elapsed_ms);
    put_cells(&mut out, &delta.frontier_remove);
    put_frontier(&mut out, &delta.frontier_upsert);
    put_cells(&mut out, &delta.executed);
    put_cells(&mut out, &delta.unreached);
    out.put_u32_le(delta.pruned_functions.len() as u32);
    for symbol in &delta.pruned_functions {
        put_string(&mut out, symbol.as_str());
    }
    put_coverage(&mut out, &delta.coverage);
    put_clusters(&mut out, &delta.clusters);
    out.to_vec()
}

/// Decodes an [`ExplorationDelta`] payload.
pub fn decode_exploration_delta(payload: &[u8]) -> Result<ExplorationDelta, StoreError> {
    let mut r = Reader::new(payload);
    let delta = ExplorationDelta {
        batch_index: r.u64("batch index")?,
        rng_draws: r.u64("rng draws")?,
        probe_done: r.flag("probe_done")?,
        crash_found: r.flag("crash_found")?,
        cases_executed: r.u64("cases executed")?,
        injections_performed: r.u64("injections performed")?,
        elapsed_ms: r.u64("elapsed ms")?,
        frontier_remove: get_cells(&mut r, "frontier removals")?,
        frontier_upsert: get_frontier(&mut r, "frontier upserts")?,
        executed: get_cells(&mut r, "executed cells")?,
        unreached: get_cells(&mut r, "unreached cells")?,
        pruned_functions: {
            let count = r.count(4, "pruned functions")?;
            let mut pruned = Vec::with_capacity(count);
            for _ in 0..count {
                pruned.push(r.symbol("pruned function")?);
            }
            pruned
        },
        coverage: get_coverage(&mut r)?,
        clusters: get_clusters(&mut r)?,
    };
    r.finish()?;
    Ok(delta)
}

// -- fabric acks ------------------------------------------------------------

/// Encodes an [`AckRecord`] payload.
pub fn encode_ack(ack: &AckRecord) -> Vec<u8> {
    let mut out = BytesMut::with_capacity(64);
    out.put_u32_le(ack.outcomes.len() as u32);
    for outcome in &ack.outcomes {
        put_cell(&mut out, &outcome.cell);
        put_outcome(&mut out, outcome.outcome);
        out.put_u64_le(outcome.injections);
        put_flag(&mut out, outcome.triggered);
        out.put_u32_le(outcome.stack.len() as u32);
        for frame in &outcome.stack {
            put_string(&mut out, frame.as_str());
        }
        put_string(&mut out, &outcome.case);
    }
    put_cells(&mut out, &ack.skipped);
    out.to_vec()
}

/// Decodes an [`AckRecord`] payload.
pub fn decode_ack(payload: &[u8]) -> Result<AckRecord, StoreError> {
    let mut r = Reader::new(payload);
    let count = r.count(38, "ack outcomes")?;
    let mut outcomes = Vec::with_capacity(count);
    for _ in 0..count {
        let cell = get_cell(&mut r)?;
        let outcome = get_outcome(&mut r)?;
        let injections = r.u64("ack injections")?;
        let triggered = r.flag("ack triggered")?;
        let frames = r.count(4, "ack stack")?;
        let mut stack = Vec::with_capacity(frames);
        for _ in 0..frames {
            stack.push(r.symbol("ack stack frame")?);
        }
        let case = r.string("ack case name")?;
        outcomes.push(AckOutcome { cell, outcome, injections, triggered, stack, case });
    }
    let skipped = get_cells(&mut r, "ack skipped cells")?;
    r.finish()?;
    Ok(AckRecord { outcomes, skipped })
}

// -- profiles ---------------------------------------------------------------

fn put_profile(out: &mut BytesMut, profile: &FaultProfile) {
    put_string(out, &profile.library);
    put_opt_string(out, profile.platform.as_deref());
    out.put_u32_le(profile.functions.len() as u32);
    for function in &profile.functions {
        put_string(out, &function.name);
        out.put_u32_le(function.error_returns.len() as u32);
        for error in &function.error_returns {
            out.put_i64_le(error.retval);
            out.put_u32_le(error.side_effects.len() as u32);
            for effect in &error.side_effects {
                let kind: u8 = match effect.kind {
                    SideEffectKind::Tls => 0,
                    SideEffectKind::Global => 1,
                    SideEffectKind::OutputArg => 2,
                };
                out.put_u8(kind);
                put_string(out, &effect.module);
                out.put_u32_le(effect.offset);
                out.put_i64_le(effect.value);
            }
        }
    }
}

fn get_profile(r: &mut Reader) -> Result<FaultProfile, StoreError> {
    let library = r.string("profile library")?;
    let platform = r.opt_string("profile platform")?;
    let mut profile = FaultProfile::new(library);
    profile.platform = platform;
    let functions = r.count(8, "profile functions")?;
    for _ in 0..functions {
        let name = r.string("function name")?;
        let mut function = FunctionProfile::new(name);
        let errors = r.count(12, "error returns")?;
        for _ in 0..errors {
            let retval = r.i64("error retval")?;
            let mut error = ErrorReturn::bare(retval);
            let effects = r.count(17, "side effects")?;
            for _ in 0..effects {
                let kind = match r.u8("side-effect kind")? {
                    0 => SideEffectKind::Tls,
                    1 => SideEffectKind::Global,
                    2 => SideEffectKind::OutputArg,
                    other => {
                        return Err(StoreError::corrupt(r.offset() - 1, format!("unknown side-effect kind {other}")));
                    }
                };
                let module = r.string("side-effect module")?;
                let offset = r.u32("side-effect offset")?;
                let value = r.i64("side-effect value")?;
                error.side_effects.push(SideEffect { kind, module, offset, value });
            }
            function.error_returns.push(error);
        }
        profile.push_function(function);
    }
    Ok(profile)
}

fn put_profile_entry(out: &mut BytesMut, entry: &ProfileEntry) {
    put_string(out, &entry.key.library);
    put_opt_string(out, entry.key.platform.as_deref());
    out.put_u64_le(entry.key.code_hash);
    put_profile(out, &entry.profile);
}

fn get_profile_entry(r: &mut Reader) -> Result<ProfileEntry, StoreError> {
    let library = r.string("entry library")?;
    let platform = r.opt_string("entry platform")?;
    let code_hash = r.u64("entry code hash")?;
    let profile = get_profile(r)?;
    Ok(ProfileEntry { key: ProfileKey { library, platform, code_hash }, profile })
}

/// Encodes a [`ProfileEntry`] payload (one insertion).
pub fn encode_profile_entry(entry: &ProfileEntry) -> Vec<u8> {
    let mut out = BytesMut::with_capacity(128);
    put_profile_entry(&mut out, entry);
    out.to_vec()
}

/// Decodes a [`ProfileEntry`] payload.
pub fn decode_profile_entry(payload: &[u8]) -> Result<ProfileEntry, StoreError> {
    let mut r = Reader::new(payload);
    let entry = get_profile_entry(&mut r)?;
    r.finish()?;
    Ok(entry)
}

/// Encodes a full [`ProfileStore`] snapshot payload (entries in key order,
/// so output is deterministic — the same order `to_xml` uses).
pub fn encode_profile_store(store: &ProfileStore) -> Vec<u8> {
    let entries = store.snapshot();
    let mut out = BytesMut::with_capacity(64 + entries.len() * 128);
    out.put_u32_le(entries.len() as u32);
    for (key, profile) in &entries {
        put_string(&mut out, &key.library);
        put_opt_string(&mut out, key.platform.as_deref());
        out.put_u64_le(key.code_hash);
        put_profile(&mut out, profile);
    }
    out.to_vec()
}

/// Decodes a full [`ProfileStore`] snapshot payload.
pub fn decode_profile_store(payload: &[u8]) -> Result<ProfileStore, StoreError> {
    let mut r = Reader::new(payload);
    let count = r.count(21, "profile entries")?;
    let store = ProfileStore::new();
    for _ in 0..count {
        let entry = get_profile_entry(&mut r)?;
        store.insert(entry.key, entry.profile);
    }
    r.finish()?;
    Ok(store)
}
