//! The on-disk framing: file header, record frames, and the CRC that
//! guards them.
//!
//! ```text
//! file   := header record*
//! header := magic "LFIS" (4) | version u16 LE | reserved u16 LE
//! record := kind u8 | len u32 LE | crc u32 LE | payload (len bytes)
//! ```
//!
//! `crc` is CRC-32 (IEEE) over `kind` followed by the payload, so neither a
//! flipped kind byte nor a damaged payload passes validation.  A record
//! that fails any check — short header, impossible length, bad CRC,
//! unknown kind — marks the *torn tail*: readers stop at the offset where
//! that record starts and report everything before it as durable.

/// The four magic bytes every `lfi-store` file starts with.
pub const MAGIC: [u8; 4] = *b"LFIS";

/// The format version this build reads and writes.
pub const FORMAT_VERSION: u16 = 1;

/// Size of the file header in bytes.
pub const HEADER_LEN: usize = 8;

/// Size of a record frame's own header (kind + len + crc) in bytes.
pub const FRAME_LEN: usize = 9;

/// Record kind tags.  Unknown tags are treated as corruption, which is
/// what lets a future version extend the set: an old reader stops cleanly
/// at the first record it does not understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordKind {
    /// A full [`ExplorationStore`](lfi_explore::ExplorationStore) snapshot.
    ExplorationSnapshot = 1,
    /// An [`ExplorationDelta`](lfi_explore::ExplorationDelta).
    ExplorationDelta = 2,
    /// A fabric lease acknowledgement ([`AckRecord`](crate::AckRecord)).
    Ack = 3,
    /// A full [`ProfileStore`](lfi_profile::ProfileStore) snapshot.
    ProfileSnapshot = 4,
    /// A single profile insertion ([`ProfileEntry`](crate::ProfileEntry)).
    ProfileInsert = 5,
}

impl RecordKind {
    /// Decodes a kind tag.
    pub fn from_u8(tag: u8) -> Option<RecordKind> {
        match tag {
            1 => Some(RecordKind::ExplorationSnapshot),
            2 => Some(RecordKind::ExplorationDelta),
            3 => Some(RecordKind::Ack),
            4 => Some(RecordKind::ProfileSnapshot),
            5 => Some(RecordKind::ProfileInsert),
            _ => None,
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) over `bytes`,
/// seeded by `seed` (start from `0` for a fresh checksum).  Table-driven —
/// no external crate.
pub fn crc32(seed: u32, bytes: &[u8]) -> u32 {
    // Slicing-by-8: table[0] is the classic byte-at-a-time table, table[k]
    // folds a byte that sits k positions deeper into the stream, so each
    // step consumes 8 input bytes with 8 independent lookups.
    static TABLES: std::sync::OnceLock<[[u32; 256]; 8]> = std::sync::OnceLock::new();
    let tables = TABLES.get_or_init(|| {
        let mut tables = [[0u32; 256]; 8];
        for i in 0..256u32 {
            let mut crc = i;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            tables[0][i as usize] = crc;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = tables[k - 1][i];
                tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            }
        }
        tables
    });
    let mut crc = !seed;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = tables[7][(lo & 0xFF) as usize]
            ^ tables[6][((lo >> 8) & 0xFF) as usize]
            ^ tables[5][((lo >> 16) & 0xFF) as usize]
            ^ tables[4][(lo >> 24) as usize]
            ^ tables[3][(hi & 0xFF) as usize]
            ^ tables[2][((hi >> 8) & 0xFF) as usize]
            ^ tables[1][((hi >> 16) & 0xFF) as usize]
            ^ tables[0][(hi >> 24) as usize];
    }
    for &byte in chunks.remainder() {
        crc = (crc >> 8) ^ tables[0][((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

/// The CRC a record frame carries: over the kind byte, then the payload.
pub fn record_crc(kind: RecordKind, payload: &[u8]) -> u32 {
    crc32(crc32(0, &[kind as u8]), payload)
}

/// Writes the 8-byte file header into `out`.
pub fn write_header(out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
}

/// Appends one framed record to `out`.
pub fn write_frame(out: &mut Vec<u8>, kind: RecordKind, payload: &[u8]) {
    out.push(kind as u8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&record_crc(kind, payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Result of [`read_frame`]: a validated record, the torn tail, or the
/// clean end of the file.
pub enum Frame<'a> {
    /// A record whose CRC checked out: its kind, payload, and the offset of
    /// the next frame.
    Record {
        /// The record kind.
        kind: RecordKind,
        /// The checksummed payload bytes.
        payload: &'a [u8],
        /// Offset of the byte after this record.
        next: usize,
    },
    /// Exactly the end of the data — no partial frame.
    End,
    /// The frame starting at this offset is damaged or incomplete (short
    /// header, impossible length, unknown kind, or CRC mismatch).  Readers
    /// truncate here.
    Torn,
}

/// Reads the frame starting at `offset` in `data`.  Never panics: every
/// malformed condition is [`Frame::Torn`].
pub fn read_frame(data: &[u8], offset: usize) -> Frame<'_> {
    if offset == data.len() {
        return Frame::End;
    }
    let Some(frame) = data.get(offset..) else {
        return Frame::Torn;
    };
    if frame.len() < FRAME_LEN {
        return Frame::Torn;
    }
    let Some(kind) = RecordKind::from_u8(frame[0]) else {
        return Frame::Torn;
    };
    let len = u32::from_le_bytes([frame[1], frame[2], frame[3], frame[4]]) as usize;
    let crc = u32::from_le_bytes([frame[5], frame[6], frame[7], frame[8]]);
    let Some(payload) = frame.get(FRAME_LEN..FRAME_LEN + len) else {
        return Frame::Torn;
    };
    if record_crc(kind, payload) != crc {
        return Frame::Torn;
    }
    Frame::Record { kind, payload, next: offset + FRAME_LEN + len }
}

/// Checks a file header.  Returns the offset of the first record on
/// success.
pub fn check_header(data: &[u8]) -> Result<usize, crate::StoreError> {
    if data.len() < HEADER_LEN || data[..4] != MAGIC {
        return Err(crate::StoreError::corrupt(0, "missing LFIS magic"));
    }
    let version = u16::from_le_bytes([data[4], data[5]]);
    if version != FORMAT_VERSION {
        return Err(crate::StoreError::unsupported_version(version));
    }
    Ok(HEADER_LEN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_matches_the_reference_vector() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(0, b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(crc32(0, b"1234"), b"56789"), 0xCBF4_3926, "chaining is equivalent");
    }

    #[test]
    fn sliced_crc_matches_the_bytewise_reference_at_every_length() {
        fn reference(seed: u32, bytes: &[u8]) -> u32 {
            let mut crc = !seed;
            for &byte in bytes {
                crc ^= u32::from(byte);
                for _ in 0..8 {
                    crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
                }
            }
            !crc
        }
        // Lengths straddling the 8-byte slicing boundary, unaligned seeds.
        let data: Vec<u8> = (0..64u32).map(|i| (i.wrapping_mul(37) ^ (i >> 3)) as u8).collect();
        for len in 0..data.len() {
            assert_eq!(crc32(0, &data[..len]), reference(0, &data[..len]), "len {len}");
            assert_eq!(crc32(0x1234_5678, &data[..len]), reference(0x1234_5678, &data[..len]), "seeded len {len}");
        }
    }

    #[test]
    fn frames_round_trip_and_tears_are_detected() {
        let mut data = Vec::new();
        write_header(&mut data);
        write_frame(&mut data, RecordKind::Ack, b"hello");
        let start = check_header(&data).unwrap();
        match read_frame(&data, start) {
            Frame::Record { kind, payload, next } => {
                assert_eq!(kind, RecordKind::Ack);
                assert_eq!(payload, b"hello");
                assert!(matches!(read_frame(&data, next), Frame::End));
            }
            _ => panic!("expected a valid record"),
        }
        // Any truncation of the record is a torn tail, not a panic.
        for cut in start..data.len() {
            assert!(matches!(read_frame(&data[..cut], start), Frame::Torn | Frame::End));
        }
        // A flipped payload byte fails the CRC.
        let mut flipped = data.clone();
        *flipped.last_mut().unwrap() ^= 0x01;
        assert!(matches!(read_frame(&flipped, start), Frame::Torn));
        // A flipped kind byte fails too (CRC covers the kind).
        let mut rekinded = data.clone();
        rekinded[start] = RecordKind::ExplorationDelta as u8;
        assert!(matches!(read_frame(&rekinded, start), Frame::Torn));
        // An unknown kind is a clean stop.
        let mut unknown = data;
        unknown[start] = 0xEE;
        assert!(matches!(read_frame(&unknown, start), Frame::Torn));
    }

    #[test]
    fn headers_are_validated() {
        assert!(check_header(b"").is_err());
        assert!(check_header(b"LFIS").is_err());
        assert!(check_header(b"NOPE\x01\x00\x00\x00").is_err());
        let mut wrong_version = Vec::new();
        write_header(&mut wrong_version);
        wrong_version[4] = 0xFF;
        assert!(check_header(&wrong_version).is_err());
        let mut good = Vec::new();
        write_header(&mut good);
        assert_eq!(check_header(&good).unwrap(), HEADER_LEN);
    }
}
