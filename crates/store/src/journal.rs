//! The write-ahead journal: an append-only record file with torn-tail
//! recovery and snapshot-rewrite compaction.
//!
//! ```text
//!   create ──► [header][Snapshot]
//!   append ──► [header][Snapshot][Delta][Delta][Ack]...        (O(delta))
//!   compact ─► write [header][Snapshot'] to path.tmp, fsync, rename
//!   open ───► read records until the first bad frame, truncate there
//! ```
//!
//! Appends are buffered writes (no per-record fsync) — the CRC framing
//! makes a torn tail *detectable*, and recovery truncates at the first
//! record that fails validation, so a kill mid-append loses at most the
//! record being written, never the records before it.  Compaction goes
//! through a temp file + atomic rename, so a kill mid-compaction leaves
//! either the old journal or the new snapshot, never a mix.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use lfi_explore::{ExplorationDelta, ExplorationStore};

use crate::format::{self, Frame, RecordKind};
use crate::{codec, Record, StoreError};

/// How many records a typed journal appends after a snapshot before it
/// compacts by default.
pub const DEFAULT_COMPACT_EVERY: u64 = 64;

/// An open append-only record journal.  The typed wrappers
/// ([`ExplorationJournal`]) layer state-tracking and compaction policy on
/// top; the fabric drives this type directly for its ack log.
pub struct Journal {
    path: PathBuf,
    file: File,
    /// Records appended since the journal's leading snapshot was written
    /// (by [`Journal::create`] or the last [`Journal::compact`]).
    appended: u64,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("appended", &self.appended)
            .finish()
    }
}

impl Journal {
    /// Creates (or truncates) a journal at `path`, writing the header and
    /// the given first record — normally a snapshot.
    pub fn create(path: impl AsRef<Path>, first: &Record) -> Result<Journal, StoreError> {
        let path = path.as_ref();
        let mut bytes = Vec::new();
        format::write_header(&mut bytes);
        let (kind, payload) = first.encode();
        format::write_frame(&mut bytes, kind, &payload);
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| StoreError::io(e).with_path(path))?;
        file.write_all(&bytes).map_err(|e| StoreError::io(e).with_path(path))?;
        file.sync_all().map_err(|e| StoreError::io(e).with_path(path))?;
        Ok(Journal { path: path.to_path_buf(), file, appended: 0 })
    }

    /// Opens an existing journal, recovering its durable records.  A torn
    /// tail — any trailing bytes that fail frame validation — is truncated
    /// off the file, so the journal is immediately appendable again.
    /// Hostile bytes never panic: a bad header or version is an error, a
    /// bad record is simply where durability ends.
    pub fn open(path: impl AsRef<Path>) -> Result<(Journal, Vec<Record>), StoreError> {
        let path = path.as_ref();
        let mut data = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut data))
            .map_err(|e| StoreError::io(e).with_path(path))?;
        let start = format::check_header(&data).map_err(|e| e.with_path(path))?;
        let mut records = Vec::new();
        let mut offset = start;
        loop {
            match format::read_frame(&data, offset) {
                Frame::End => break,
                Frame::Torn => break,
                Frame::Record { kind, payload, next } => {
                    match Record::decode(kind, payload) {
                        Ok(record) => {
                            records.push(record);
                            offset = next;
                        }
                        // A CRC-valid but undecodable payload still means
                        // the tail is not usable state; stop before it.
                        Err(_) => break,
                    }
                }
            }
        }
        let file = OpenOptions::new().write(true).open(path).map_err(|e| StoreError::io(e).with_path(path))?;
        file.set_len(offset as u64).map_err(|e| StoreError::io(e).with_path(path))?;
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| StoreError::io(e).with_path(path))?;
        let appended = records.len().saturating_sub(1) as u64;
        Ok((Journal { path: path.to_path_buf(), file, appended }, records))
    }

    /// Appends one record.  Buffered write, no fsync — see the module docs
    /// for the durability trade.
    pub fn append(&mut self, record: &Record) -> Result<(), StoreError> {
        let (kind, payload) = record.encode();
        let mut bytes = Vec::with_capacity(format::FRAME_LEN + payload.len());
        format::write_frame(&mut bytes, kind, &payload);
        self.file.write_all(&bytes).map_err(|e| StoreError::io(e).with_path(&self.path))?;
        self.appended += 1;
        Ok(())
    }

    /// Rewrites the journal as header + `snapshot` alone (temp file +
    /// fsync + atomic rename), resetting the append counter.
    pub fn compact(&mut self, snapshot: &Record) -> Result<(), StoreError> {
        let mut bytes = Vec::new();
        format::write_header(&mut bytes);
        let (kind, payload) = snapshot.encode();
        format::write_frame(&mut bytes, kind, &payload);
        let tmp = self.path.with_extension("tmp");
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| StoreError::io(e).with_path(&tmp))?;
        file.write_all(&bytes).map_err(|e| StoreError::io(e).with_path(&tmp))?;
        file.sync_all().map_err(|e| StoreError::io(e).with_path(&tmp))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| StoreError::io(e).with_path(&self.path))?;
        self.file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| StoreError::io(e).with_path(&self.path))?;
        self.appended = 0;
        Ok(())
    }

    /// Records appended since the leading snapshot.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// A typed journal for one exploration: a leading
/// [`ExplorationStore`] snapshot followed by [`ExplorationDelta`] records,
/// compacted back to a fresh snapshot every
/// [`compact_every`](ExplorationJournal::compact_every) deltas.
///
/// The wrapper maintains the folded state in memory, so
/// [`ExplorationJournal::state`] is always the store a recovery would
/// produce — and compaction writes exactly that.
#[derive(Debug)]
pub struct ExplorationJournal {
    journal: Journal,
    state: ExplorationStore,
    compact_every: u64,
}

impl ExplorationJournal {
    /// Creates a journal seeded with a full snapshot of `store`.
    pub fn create(path: impl AsRef<Path>, store: &ExplorationStore) -> Result<Self, StoreError> {
        let journal = Journal::create(path, &Record::ExplorationSnapshot(store.clone()))?;
        Ok(Self { journal, state: store.clone(), compact_every: DEFAULT_COMPACT_EVERY })
    }

    /// Opens and recovers a journal: the leading snapshot with every
    /// durable delta folded in.  Torn tails are truncated (see
    /// [`Journal::open`]).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let (journal, records) = Journal::open(path)?;
        let mut records = records.into_iter();
        let mut state = match records.next() {
            Some(Record::ExplorationSnapshot(store)) => store,
            _ => {
                return Err(StoreError::corrupt(
                    crate::format::HEADER_LEN as u64,
                    "journal does not start with an exploration snapshot",
                )
                .with_path(path))
            }
        };
        for record in records {
            match record {
                Record::ExplorationDelta(delta) => delta.apply(&mut state),
                Record::ExplorationSnapshot(store) => state = store,
                _ => return Err(StoreError::corrupt(0, "foreign record kind in exploration journal").with_path(path)),
            }
        }
        Ok(Self { journal, state, compact_every: DEFAULT_COMPACT_EVERY })
    }

    /// Sets how many deltas accumulate before an append triggers
    /// compaction (default [`DEFAULT_COMPACT_EVERY`]; clamped to ≥ 1).
    pub fn compact_every(mut self, deltas: u64) -> Self {
        self.compact_every = deltas.max(1);
        self
    }

    /// Appends one delta (O(delta) bytes) and folds it into the in-memory
    /// state; compacts when the configured threshold is reached.
    pub fn append_delta(&mut self, delta: &ExplorationDelta) -> Result<(), StoreError> {
        delta.apply(&mut self.state);
        self.journal.append(&Record::ExplorationDelta(delta.clone()))?;
        if self.journal.appended() >= self.compact_every {
            self.compact()?;
        }
        Ok(())
    }

    /// Rewrites the journal as a single fresh snapshot of the current
    /// state.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        self.journal.compact(&Record::ExplorationSnapshot(self.state.clone()))
    }

    /// The recovered/folded store — what a crashed process would get back.
    pub fn state(&self) -> &ExplorationStore {
        &self.state
    }

    /// Deltas appended since the leading snapshot.
    pub fn deltas_since_snapshot(&self) -> u64 {
        self.journal.appended()
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        self.journal.path()
    }
}

/// Re-exported for typed journal headers.
pub(crate) fn record_kind_name(kind: RecordKind) -> &'static str {
    match kind {
        RecordKind::ExplorationSnapshot => "exploration-snapshot",
        RecordKind::ExplorationDelta => "exploration-delta",
        RecordKind::Ack => "ack",
        RecordKind::ProfileSnapshot => "profile-snapshot",
        RecordKind::ProfileInsert => "profile-insert",
    }
}

impl Record {
    /// Encodes the record to its kind tag and payload bytes.
    pub fn encode(&self) -> (RecordKind, Vec<u8>) {
        match self {
            Record::ExplorationSnapshot(store) => {
                (RecordKind::ExplorationSnapshot, codec::encode_exploration_store(store))
            }
            Record::ExplorationDelta(delta) => (RecordKind::ExplorationDelta, codec::encode_exploration_delta(delta)),
            Record::Ack(ack) => (RecordKind::Ack, codec::encode_ack(ack)),
            Record::ProfileSnapshot(store) => (RecordKind::ProfileSnapshot, codec::encode_profile_store(store)),
            Record::ProfileInsert(entry) => (RecordKind::ProfileInsert, codec::encode_profile_entry(entry)),
        }
    }

    /// Decodes a record from its kind tag and payload bytes.
    pub fn decode(kind: RecordKind, payload: &[u8]) -> Result<Record, StoreError> {
        let record = match kind {
            RecordKind::ExplorationSnapshot => Record::ExplorationSnapshot(codec::decode_exploration_store(payload)?),
            RecordKind::ExplorationDelta => Record::ExplorationDelta(codec::decode_exploration_delta(payload)?),
            RecordKind::Ack => Record::Ack(codec::decode_ack(payload)?),
            RecordKind::ProfileSnapshot => Record::ProfileSnapshot(codec::decode_profile_store(payload)?),
            RecordKind::ProfileInsert => Record::ProfileInsert(codec::decode_profile_entry(payload)?),
        };
        Ok(record)
    }

    /// The human-readable name of the record's kind.
    pub fn kind_name(&self) -> &'static str {
        record_kind_name(self.encode_kind())
    }

    fn encode_kind(&self) -> RecordKind {
        match self {
            Record::ExplorationSnapshot(_) => RecordKind::ExplorationSnapshot,
            Record::ExplorationDelta(_) => RecordKind::ExplorationDelta,
            Record::Ack(_) => RecordKind::Ack,
            Record::ProfileSnapshot(_) => RecordKind::ProfileSnapshot,
            Record::ProfileInsert(_) => RecordKind::ProfileInsert,
        }
    }
}
