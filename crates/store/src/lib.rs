//! # lfi-store — journaled binary persistence for LFI state
//!
//! The paper's workflow (§3, §6) computes fault profiles once and replays
//! them across many campaigns, and its exploration state must survive
//! kills: both call for persistence that is cheap to *update*, not just to
//! write.  The XML stores (`ProfileStore::to_xml`,
//! `ExplorationStore::to_xml`) stay as the human-readable interchange
//! format; this crate adds the machine format behind them:
//!
//! * **A versioned, checksummed record format** ([`mod@format`]) — magic +
//!   format version per file, CRC-32 per record — encoding the profile and
//!   exploration stores compactly (zero-copy via the `bytes` shim).
//!   Decoding never panics on hostile bytes: every failure is a
//!   [`StoreError`] naming the path, byte offset and detected format.
//! * **A write-ahead journal** ([`Journal`], [`ExplorationJournal`]) —
//!   full-snapshot records plus O(delta) records
//!   ([`ExplorationDelta`](lfi_explore::ExplorationDelta) from the
//!   explorer's batch loop, [`AckRecord`]s from the fabric scheduler) —
//!   with periodic compaction and torn-tail recovery: a kill mid-append
//!   loses at most the record being written.
//! * **Format-sniffing file helpers** ([`load_profile_store`],
//!   [`load_exploration`], …) — load paths accept either format by magic,
//!   so binary adoption never breaks an XML workflow.
//!
//! The byte-identity contract: a store written and reloaded through the
//! binary codec equals the original exactly, so XML → binary → XML
//! round-trips byte-identically.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod error;
pub mod format;
mod journal;

use std::fs;
use std::io::Read;
use std::path::Path;

use lfi_explore::{ExplorationStore, OutcomeClass};
use lfi_intern::Symbol;
use lfi_profile::{FaultProfile, ProfileKey, ProfileStore};
use lfi_scenario::FaultCell;

pub use codec::{
    decode_ack, decode_exploration_delta, decode_exploration_store, decode_profile_entry, decode_profile_store,
    encode_ack, encode_exploration_delta, encode_exploration_store, encode_profile_entry, encode_profile_store,
};
pub use error::{StoreError, StoreErrorKind, StoreFormat};
pub use journal::{ExplorationJournal, Journal, DEFAULT_COMPACT_EVERY};

/// One journaled record — the unit the [`Journal`] appends and recovers.
#[derive(Debug, Clone)]
pub enum Record {
    /// A full exploration snapshot.
    ExplorationSnapshot(ExplorationStore),
    /// One exploration step's state changes.
    ExplorationDelta(lfi_explore::ExplorationDelta),
    /// One fabric lease acknowledgement.
    Ack(AckRecord),
    /// A full profile-store snapshot.
    ProfileSnapshot(ProfileStore),
    /// One profile insertion.
    ProfileInsert(ProfileEntry),
}

/// One executed cell inside an [`AckRecord`] — the journaled twin of the
/// fabric scheduler's per-cell outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct AckOutcome {
    /// The executed fault-space cell.
    pub cell: FaultCell,
    /// How its test case ended.
    pub outcome: OutcomeClass,
    /// Injections the case performed.
    pub injections: u64,
    /// Whether the cell's planned injection fired.
    pub triggered: bool,
    /// The call stack observed at injection time.
    pub stack: Vec<Symbol>,
    /// The deterministic case name.
    pub case: String,
}

/// One journaled lease acknowledgement: every cell the lease ran
/// (`outcomes`, in fold order) or returned unexecuted (`skipped`, in
/// requeue order).  Together with the leading snapshot, replaying these
/// through the fabric scheduler reconstructs a job's durable state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AckRecord {
    /// Executed cells and their outcomes, in the worker's fold order.
    pub outcomes: Vec<AckOutcome>,
    /// Leased cells returned unexecuted, in requeue order.
    pub skipped: Vec<FaultCell>,
}

/// One profile-store insertion: the key and the profile stored under it.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// The store key.
    pub key: ProfileKey,
    /// The stored profile.
    pub profile: FaultProfile,
}

/// Sniffs the on-disk format of `path` by its magic bytes.
pub fn sniff_format(path: impl AsRef<Path>) -> Result<StoreFormat, StoreError> {
    let path = path.as_ref();
    let mut magic = [0u8; 4];
    let mut file = fs::File::open(path).map_err(|e| StoreError::io(e).with_path(path))?;
    let read = file.read(&mut magic).map_err(|e| StoreError::io(e).with_path(path))?;
    Ok(if read == 4 && magic == format::MAGIC { StoreFormat::Binary } else { StoreFormat::Xml })
}

/// Reads a whole file, with path context on failure.
fn read_file(path: &Path) -> Result<Vec<u8>, StoreError> {
    fs::read(path).map_err(|e| StoreError::io(e).with_path(path))
}

/// Decodes a single-record binary snapshot file, checking header and kind.
fn read_snapshot(path: &Path, expect: format::RecordKind) -> Result<Vec<u8>, StoreError> {
    let data = read_file(path)?;
    let start = format::check_header(&data).map_err(|e| e.with_path(path))?;
    match format::read_frame(&data, start) {
        format::Frame::Record { kind, payload, .. } if kind == expect => Ok(payload.to_vec()),
        format::Frame::Record { kind, .. } => Err(StoreError::corrupt(
            start as u64,
            format!(
                "expected a {} record, found {}",
                journal::record_kind_name(expect),
                journal::record_kind_name(kind)
            ),
        )
        .with_path(path)),
        _ => Err(StoreError::corrupt(start as u64, "damaged or truncated snapshot record").with_path(path)),
    }
}

/// Writes a single-record binary snapshot file (header + one record).
fn write_snapshot(path: &Path, kind: format::RecordKind, payload: &[u8]) -> Result<(), StoreError> {
    let mut bytes = Vec::with_capacity(format::HEADER_LEN + format::FRAME_LEN + payload.len());
    format::write_header(&mut bytes);
    format::write_frame(&mut bytes, kind, payload);
    fs::write(path, bytes).map_err(|e| StoreError::io(e).with_path(path))
}

/// Saves a [`ProfileStore`] as a binary snapshot file.
pub fn save_profile_store(path: impl AsRef<Path>, store: &ProfileStore) -> Result<(), StoreError> {
    write_snapshot(path.as_ref(), format::RecordKind::ProfileSnapshot, &encode_profile_store(store))
}

/// Loads a [`ProfileStore`] from `path`, sniffing the format by magic:
/// binary snapshot files decode through the checked codec, anything else
/// parses as the XML interchange format.  Errors name the path, offset and
/// detected format; truncated or hostile input never panics.
pub fn load_profile_store(path: impl AsRef<Path>) -> Result<ProfileStore, StoreError> {
    let path = path.as_ref();
    match sniff_format(path)? {
        StoreFormat::Binary => {
            let payload = read_snapshot(path, format::RecordKind::ProfileSnapshot)?;
            decode_profile_store(&payload).map_err(|e| e.with_path(path))
        }
        StoreFormat::Xml => {
            let text = String::from_utf8(read_file(path)?).map_err(|e| {
                StoreError::corrupt(e.utf8_error().valid_up_to() as u64, "non-UTF-8 XML document")
                    .with_format(StoreFormat::Xml)
                    .with_path(path)
            })?;
            ProfileStore::from_xml(&text).map_err(|e| StoreError::xml(e).with_path(path))
        }
    }
}

/// Saves an [`ExplorationStore`] as a binary snapshot file.
pub fn save_exploration(path: impl AsRef<Path>, store: &ExplorationStore) -> Result<(), StoreError> {
    write_snapshot(path.as_ref(), format::RecordKind::ExplorationSnapshot, &encode_exploration_store(store))
}

/// Loads an [`ExplorationStore`] from `path`, sniffing the format by
/// magic.  A binary file may be either a plain snapshot or a full journal
/// — a journal is recovered (snapshot + durable deltas, torn tail
/// truncated in memory, the file left untouched).
pub fn load_exploration(path: impl AsRef<Path>) -> Result<ExplorationStore, StoreError> {
    let path = path.as_ref();
    match sniff_format(path)? {
        StoreFormat::Binary => {
            let data = read_file(path)?;
            let start = format::check_header(&data).map_err(|e| e.with_path(path))?;
            let mut state: Option<ExplorationStore> = None;
            let mut offset = start;
            while let format::Frame::Record { kind, payload, next } = format::read_frame(&data, offset) {
                match Record::decode(kind, payload) {
                    Ok(Record::ExplorationSnapshot(store)) => state = Some(store),
                    Ok(Record::ExplorationDelta(delta)) => match state.as_mut() {
                        Some(state) => delta.apply(state),
                        None => {
                            return Err(StoreError::corrupt(offset as u64, "delta before any snapshot").with_path(path))
                        }
                    },
                    Ok(_) => {
                        return Err(StoreError::corrupt(offset as u64, "not an exploration store file").with_path(path))
                    }
                    Err(_) => break,
                }
                offset = next;
            }
            state.ok_or_else(|| {
                StoreError::corrupt(start as u64, "no durable exploration snapshot record").with_path(path)
            })
        }
        StoreFormat::Xml => {
            let text = String::from_utf8(read_file(path)?).map_err(|e| {
                StoreError::corrupt(e.utf8_error().valid_up_to() as u64, "non-UTF-8 XML document")
                    .with_format(StoreFormat::Xml)
                    .with_path(path)
            })?;
            ExplorationStore::from_xml(&text).map_err(|e| StoreError::xml(e).with_path(path))
        }
    }
}

/// Parses an [`ExplorationStore`] from XML text, wrapping failures in a
/// [`StoreError`] (format context included) instead of a raw
/// `ProfileError` — the robustness wrapper in-memory callers share with
/// the file path.
pub fn exploration_from_xml(text: &str) -> Result<ExplorationStore, StoreError> {
    ExplorationStore::from_xml(text).map_err(StoreError::xml)
}

/// Parses a [`ProfileStore`] from XML text, wrapping failures in a
/// [`StoreError`].
pub fn profile_store_from_xml(text: &str) -> Result<ProfileStore, StoreError> {
    ProfileStore::from_xml(text).map_err(StoreError::xml)
}
