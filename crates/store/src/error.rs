//! [`StoreError`]: every persistence failure, with the context a user needs
//! to act on it — which file, at which byte offset, in which format.

use std::error::Error;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use lfi_profile::ProfileError;

/// The on-disk format a load path detected (or was asked to write).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFormat {
    /// The XML interchange format (`to_xml`/`from_xml`).
    Xml,
    /// The `lfi-store` binary record format (magic `LFIS`).
    Binary,
}

impl fmt::Display for StoreFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreFormat::Xml => f.write_str("xml"),
            StoreFormat::Binary => f.write_str("binary"),
        }
    }
}

/// What went wrong, independent of where.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreErrorKind {
    /// The underlying file operation failed.
    Io(io::Error),
    /// The bytes do not decode as the detected format.
    Corrupt {
        /// What the decoder was reading when it gave up.
        message: String,
    },
    /// The file carries the right magic but a format version this build
    /// does not understand.
    UnsupportedVersion {
        /// The version the file claims.
        found: u16,
    },
    /// An XML-format document failed to parse.
    Xml(ProfileError),
}

/// A persistence error, carrying the path, byte offset and detected format
/// of the failing load or save.  Load paths never panic on truncated or
/// hostile input — every such condition surfaces as a `StoreError`.
#[derive(Debug)]
pub struct StoreError {
    /// The file involved, when the operation had one.
    pub path: Option<PathBuf>,
    /// Byte offset of the failure within the file, when known.
    pub offset: Option<u64>,
    /// The format the operation detected or targeted, when known.
    pub format: Option<StoreFormat>,
    /// The underlying failure.
    pub kind: StoreErrorKind,
}

impl StoreError {
    /// An IO failure with no location context yet.
    pub fn io(error: io::Error) -> Self {
        Self { path: None, offset: None, format: None, kind: StoreErrorKind::Io(error) }
    }

    /// A corruption failure at a byte offset.
    pub fn corrupt(offset: u64, message: impl Into<String>) -> Self {
        Self {
            path: None,
            offset: Some(offset),
            format: Some(StoreFormat::Binary),
            kind: StoreErrorKind::Corrupt { message: message.into() },
        }
    }

    /// A version-mismatch failure.
    pub fn unsupported_version(found: u16) -> Self {
        Self {
            path: None,
            offset: None,
            format: Some(StoreFormat::Binary),
            kind: StoreErrorKind::UnsupportedVersion { found },
        }
    }

    /// An XML parse failure.
    pub fn xml(error: ProfileError) -> Self {
        Self { path: None, offset: None, format: Some(StoreFormat::Xml), kind: StoreErrorKind::Xml(error) }
    }

    /// Attaches the file path (kept if already set).
    pub fn with_path(mut self, path: impl AsRef<Path>) -> Self {
        if self.path.is_none() {
            self.path = Some(path.as_ref().to_path_buf());
        }
        self
    }

    /// Attaches the detected format (kept if already set).
    pub fn with_format(mut self, format: StoreFormat) -> Self {
        if self.format.is_none() {
            self.format = Some(format);
        }
        self
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            StoreErrorKind::Io(error) => write!(f, "store io error: {error}")?,
            StoreErrorKind::Corrupt { message } => write!(f, "corrupt store data: {message}")?,
            StoreErrorKind::UnsupportedVersion { found } => {
                write!(f, "unsupported store format version {found}")?;
            }
            StoreErrorKind::Xml(error) => write!(f, "xml parse error: {error}")?,
        }
        if let Some(format) = self.format {
            write!(f, " [format: {format}]")?;
        }
        if let Some(offset) = self.offset {
            write!(f, " [offset: {offset}]")?;
        }
        if let Some(path) = &self.path {
            write!(f, " [path: {}]", path.display())?;
        }
        Ok(())
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            StoreErrorKind::Io(error) => Some(error),
            StoreErrorKind::Xml(error) => Some(error),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(error: io::Error) -> Self {
        StoreError::io(error)
    }
}
