use std::error::Error;
use std::fmt;

use crate::xml::XmlError;

/// Errors produced while reading a fault profile from XML.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProfileError {
    /// The document is not well-formed XML.
    Xml(XmlError),
    /// The document is XML but does not follow the profile schema.
    Schema {
        /// Description of the schema violation.
        message: String,
    },
    /// A numeric field could not be parsed.
    InvalidNumber {
        /// The attribute or element holding the number.
        field: String,
        /// The offending text.
        text: String,
    },
}

impl ProfileError {
    /// Convenience constructor for schema violations.
    pub fn schema(message: impl Into<String>) -> Self {
        ProfileError::Schema { message: message.into() }
    }
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Xml(e) => write!(f, "invalid XML: {e}"),
            ProfileError::Schema { message } => write!(f, "invalid fault profile: {message}"),
            ProfileError::InvalidNumber { field, text } => {
                write!(f, "invalid number {text:?} in field {field}")
            }
        }
    }
}

impl Error for ProfileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProfileError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XmlError> for ProfileError {
    fn from(value: XmlError) -> Self {
        ProfileError::Xml(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ProfileError::from(XmlError::NoRootElement);
        assert!(e.source().is_some());
        assert!(!e.to_string().is_empty());
        assert!(!ProfileError::schema("missing function name").to_string().is_empty());
        assert!(!ProfileError::InvalidNumber { field: "retval".into(), text: "x".into() }
            .to_string()
            .is_empty());
    }
}
