//! # lfi-profile — library fault profiles and their XML representation
//!
//! The output of the LFI profiler is a *fault profile* per analyzed library
//! (§3.3): for every exported function, the set of possible error return
//! values, each with the side effects (errno-style TLS writes, globals,
//! output arguments) that accompany it.  The paper uses "a general XML format
//! that is both human-readable and easy to parse"; this crate defines the
//! data model ([`FaultProfile`]) and a faithful XML round-trip for it, plus
//! the small in-tree XML reader/writer ([`xml`]) shared with the scenario
//! language in `lfi-scenario`.
//!
//! ```
//! use lfi_profile::{ErrorReturn, FaultProfile, FunctionProfile, SideEffect, SideEffectKind};
//!
//! let mut profile = FaultProfile::new("libc.so.6");
//! profile.push_function(FunctionProfile {
//!     name: "close".into(),
//!     error_returns: vec![ErrorReturn {
//!         retval: -1,
//!         side_effects: vec![SideEffect::tls("libc.so.6", 0x12fff4, -9)],
//!     }],
//! });
//! let xml = profile.to_xml();
//! let parsed = FaultProfile::from_xml(&xml).unwrap();
//! assert_eq!(profile, parsed);
//! # drop(SideEffectKind::Tls);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod profile;
mod store;
pub mod xml;

pub use error::ProfileError;
pub use profile::{ErrorReturn, FaultProfile, FunctionProfile, SideEffect, SideEffectKind};
pub use store::{ProfileKey, ProfileStore};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FaultProfile>();
        assert_send_sync::<ProfileStore>();
        assert_send_sync::<ProfileKey>();
        assert_send_sync::<FunctionProfile>();
        assert_send_sync::<ErrorReturn>();
        assert_send_sync::<SideEffect>();
        assert_send_sync::<ProfileError>();
    }
}
