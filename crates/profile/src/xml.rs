//! A minimal XML document model, writer and parser.
//!
//! The LFI fault-profile and fault-scenario formats are tiny XML dialects
//! (§3.3, §4).  Rather than pulling in an external XML dependency, this
//! module implements exactly the subset those dialects need: elements,
//! attributes, character data, comments, processing instructions and the five
//! predefined entities.  It is shared by `lfi-profile` and `lfi-scenario`.

use std::error::Error;
use std::fmt;

/// A node in an XML tree: an element or character data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    /// A child element.
    Element(XmlElement),
    /// Character data (entity-decoded).
    Text(String),
}

/// An XML element: name, attributes and children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlElement {
    /// Element name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<XmlNode>,
}

impl XmlElement {
    /// Creates an element with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), attributes: Vec::new(), children: Vec::new() }
    }

    /// Adds an attribute (builder style).
    pub fn attr(mut self, name: impl Into<String>, value: impl fmt::Display) -> Self {
        self.attributes.push((name.into(), value.to_string()));
        self
    }

    /// Adds a child element (builder style).
    pub fn child(mut self, child: XmlElement) -> Self {
        self.children.push(XmlNode::Element(child));
        self
    }

    /// Adds character data (builder style).
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.children.push(XmlNode::Text(text.into()));
        self
    }

    /// Looks up an attribute value by name.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Iterates over child elements with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlElement> + 'a {
        self.children.iter().filter_map(move |c| match c {
            XmlNode::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// Returns the first child element with the given name, if any.
    pub fn first_child(&self, name: &str) -> Option<&XmlElement> {
        self.children.iter().find_map(|c| match c {
            XmlNode::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// Concatenated character data of this element (direct children only),
    /// trimmed.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        for child in &self.children {
            if let XmlNode::Text(t) = child {
                out.push_str(t);
            }
        }
        out.trim().to_owned()
    }

    /// Serializes the element with two-space indentation.
    pub fn to_xml_string(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        self.write_into(&mut out, 0);
        out
    }

    fn write_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.name);
        for (name, value) in &self.attributes {
            out.push(' ');
            out.push_str(name);
            out.push_str("=\"");
            out.push_str(&escape(value));
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str(" />\n");
            return;
        }
        let only_text = self.children.iter().all(|c| matches!(c, XmlNode::Text(_)));
        out.push('>');
        if only_text {
            out.push_str(&escape(&self.text_content()));
        } else {
            out.push('\n');
            for child in &self.children {
                match child {
                    XmlNode::Element(e) => e.write_into(out, depth + 1),
                    XmlNode::Text(t) => {
                        let trimmed = t.trim();
                        if !trimmed.is_empty() {
                            out.push_str(&"  ".repeat(depth + 1));
                            out.push_str(&escape(trimmed));
                            out.push('\n');
                        }
                    }
                }
            }
            out.push_str(&pad);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }
}

/// Errors reported by the XML parser.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XmlError {
    /// The document ended unexpectedly.
    UnexpectedEof,
    /// A syntax error at the given byte offset.
    Syntax {
        /// Byte offset of the error.
        offset: usize,
        /// Short description of what was expected.
        expected: &'static str,
    },
    /// A closing tag did not match the element being closed.
    MismatchedTag {
        /// Name of the element that was open.
        open: String,
        /// Name found in the closing tag.
        close: String,
    },
    /// An unknown entity reference was encountered.
    UnknownEntity {
        /// The entity text, without `&` and `;`.
        entity: String,
    },
    /// The document contains no root element.
    NoRootElement,
    /// Content was found after the root element closed.
    TrailingContent {
        /// Byte offset of the trailing content.
        offset: usize,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof => write!(f, "unexpected end of document"),
            XmlError::Syntax { offset, expected } => write!(f, "syntax error at byte {offset}: expected {expected}"),
            XmlError::MismatchedTag { open, close } => {
                write!(f, "mismatched closing tag: <{open}> closed by </{close}>")
            }
            XmlError::UnknownEntity { entity } => write!(f, "unknown entity &{entity};"),
            XmlError::NoRootElement => write!(f, "document has no root element"),
            XmlError::TrailingContent { offset } => write!(f, "content after root element at byte {offset}"),
        }
    }
}

impl Error for XmlError {}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, prefix: &str) -> bool {
        self.bytes[self.pos..].starts_with(prefix.as_bytes())
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<?") {
                self.consume_until("?>")?;
            } else if self.starts_with("<!--") {
                self.consume_until("-->")?;
            } else if self.starts_with("<!") {
                self.consume_until(">")?;
            } else {
                return Ok(());
            }
        }
    }

    fn consume_until(&mut self, end: &str) -> Result<(), XmlError> {
        let haystack = &self.bytes[self.pos..];
        match haystack.windows(end.len()).position(|w| w == end.as_bytes()) {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => Err(XmlError::UnexpectedEof),
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(XmlError::Syntax { offset: start, expected: "a name" });
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_attribute_value(&mut self) -> Result<String, XmlError> {
        let quote = self.peek().ok_or(XmlError::UnexpectedEof)?;
        if quote != b'"' && quote != b'\'' {
            return Err(XmlError::Syntax { offset: self.pos, expected: "a quoted attribute value" });
        }
        self.bump(1);
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                self.bump(1);
                return unescape(&raw);
            }
            self.pos += 1;
        }
        Err(XmlError::UnexpectedEof)
    }

    fn parse_element(&mut self) -> Result<XmlElement, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(XmlError::Syntax { offset: self.pos, expected: "'<'" });
        }
        self.bump(1);
        let name = self.parse_name()?;
        let mut element = XmlElement::new(name);

        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'/') => {
                    if !self.starts_with("/>") {
                        return Err(XmlError::Syntax { offset: self.pos, expected: "'/>'" });
                    }
                    self.bump(2);
                    return Ok(element);
                }
                Some(b'>') => {
                    self.bump(1);
                    break;
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_whitespace();
                    if self.peek() != Some(b'=') {
                        return Err(XmlError::Syntax { offset: self.pos, expected: "'='" });
                    }
                    self.bump(1);
                    self.skip_whitespace();
                    let value = self.parse_attribute_value()?;
                    element.attributes.push((attr_name, value));
                }
                None => return Err(XmlError::UnexpectedEof),
            }
        }

        // Children until the matching closing tag.
        loop {
            if self.pos >= self.bytes.len() {
                return Err(XmlError::UnexpectedEof);
            }
            if self.starts_with("</") {
                self.bump(2);
                let close = self.parse_name()?;
                self.skip_whitespace();
                if self.peek() != Some(b'>') {
                    return Err(XmlError::Syntax { offset: self.pos, expected: "'>'" });
                }
                self.bump(1);
                if close != element.name {
                    return Err(XmlError::MismatchedTag { open: element.name, close });
                }
                return Ok(element);
            } else if self.starts_with("<!--") {
                self.consume_until("-->")?;
            } else if self.starts_with("<?") {
                self.consume_until("?>")?;
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element()?;
                element.children.push(XmlNode::Element(child));
            } else {
                let start = self.pos;
                while self.peek().is_some() && self.peek() != Some(b'<') {
                    self.pos += 1;
                }
                let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                let text = unescape(&raw)?;
                if !text.trim().is_empty() {
                    element.children.push(XmlNode::Text(text));
                }
            }
        }
    }
}

fn unescape(s: &str) -> Result<String, XmlError> {
    if !s.contains('&') {
        return Ok(s.to_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices();
    while let Some((_, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let mut entity = String::new();
        let mut closed = false;
        for (_, e) in chars.by_ref() {
            if e == ';' {
                closed = true;
                break;
            }
            entity.push(e);
        }
        if !closed {
            return Err(XmlError::UnknownEntity { entity });
        }
        match entity.as_str() {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            other => {
                if let Some(hex) = other.strip_prefix("#x") {
                    let code = u32::from_str_radix(hex, 16)
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or_else(|| XmlError::UnknownEntity { entity: other.to_owned() })?;
                    out.push(code);
                } else if let Some(dec) = other.strip_prefix('#') {
                    let code = dec
                        .parse::<u32>()
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or_else(|| XmlError::UnknownEntity { entity: other.to_owned() })?;
                    out.push(code);
                } else {
                    return Err(XmlError::UnknownEntity { entity: other.to_owned() });
                }
            }
        }
    }
    Ok(out)
}

/// Parses an XML document and returns its root element.
///
/// # Errors
///
/// Returns [`XmlError`] when the document is malformed.
pub fn parse(input: &str) -> Result<XmlElement, XmlError> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_misc()?;
    if parser.peek() != Some(b'<') {
        return Err(XmlError::NoRootElement);
    }
    let root = parser.parse_element()?;
    parser.skip_misc()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(XmlError::TrailingContent { offset: parser.pos });
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_serializes() {
        let doc = XmlElement::new("profile")
            .child(
                XmlElement::new("function").attr("name", "close").child(
                    XmlElement::new("error-codes")
                        .attr("retval", -1)
                        .child(XmlElement::new("side-effect").attr("type", "TLS").text("-9")),
                ),
            )
            .child(XmlElement::new("empty"));
        let xml = doc.to_xml_string();
        assert!(xml.contains("<?xml"));
        assert!(xml.contains("retval=\"-1\""));
        assert!(xml.contains("<empty />"));
        let parsed = parse(&xml).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parses_the_paper_profile_snippet() {
        let xml = r#"
            <profile>
              <function name="close">
                <error-codes retval="-1">
                  <side-effect type="TLS" module="libc.so.6" offset="12FFF4">-9</side-effect>
                  <side-effect type="TLS" module="libc.so.6" offset="12FFF4">-5</side-effect>
                </error-codes>
              </function>
            </profile>"#;
        let root = parse(xml).unwrap();
        assert_eq!(root.name, "profile");
        let function = root.first_child("function").unwrap();
        assert_eq!(function.attribute("name"), Some("close"));
        let codes = function.first_child("error-codes").unwrap();
        assert_eq!(codes.attribute("retval"), Some("-1"));
        let effects: Vec<_> = codes.children_named("side-effect").collect();
        assert_eq!(effects.len(), 2);
        assert_eq!(effects[0].text_content(), "-9");
        assert_eq!(effects[0].attribute("offset"), Some("12FFF4"));
    }

    #[test]
    fn parses_the_paper_plan_snippet() {
        let xml = r#"
            <plan>
              <function name="readdir64" inject="5" retval="0" errno="EBADF" calloriginal="false" />
              <function name="read" inject="20" calloriginal="true">
                <modify argument="3" op="sub" value="10" />
              </function>
            </plan>"#;
        let root = parse(xml).unwrap();
        let functions: Vec<_> = root.children_named("function").collect();
        assert_eq!(functions.len(), 2);
        assert_eq!(functions[0].attribute("errno"), Some("EBADF"));
        assert_eq!(functions[1].first_child("modify").unwrap().attribute("op"), Some("sub"));
    }

    #[test]
    fn entities_round_trip() {
        let doc = XmlElement::new("t").attr("a", "x<y&\"z'").text("a<b>&c");
        let xml = doc.to_xml_string();
        let parsed = parse(&xml).unwrap();
        assert_eq!(parsed.attribute("a"), Some("x<y&\"z'"));
        assert_eq!(parsed.text_content(), "a<b>&c");
    }

    #[test]
    fn numeric_entities_are_decoded() {
        let root = parse("<t>&#65;&#x42;</t>").unwrap();
        assert_eq!(root.text_content(), "AB");
    }

    #[test]
    fn comments_and_declarations_are_skipped() {
        let root = parse("<?xml version=\"1.0\"?><!-- hi --><t><!-- inner --><u /></t><!-- bye -->").unwrap();
        assert_eq!(root.name, "t");
        assert!(root.first_child("u").is_some());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(matches!(parse(""), Err(XmlError::NoRootElement)));
        assert!(matches!(parse("<a><b></a>"), Err(XmlError::MismatchedTag { .. })));
        assert!(parse("<a").is_err());
        assert!(parse("<a x=3></a>").is_err());
        assert!(matches!(parse("<a>&bogus;</a>"), Err(XmlError::UnknownEntity { .. })));
        assert!(matches!(parse("<a /><b />"), Err(XmlError::TrailingContent { .. })));
        assert!(parse("<a></a junk>").is_err());
    }

    #[test]
    fn single_quoted_attributes_are_accepted() {
        let root = parse("<t a='hello' />").unwrap();
        assert_eq!(root.attribute("a"), Some("hello"));
    }

    #[test]
    fn error_display_is_nonempty() {
        let errors = [
            XmlError::UnexpectedEof,
            XmlError::Syntax { offset: 3, expected: "x" },
            XmlError::MismatchedTag { open: "a".into(), close: "b".into() },
            XmlError::UnknownEntity { entity: "q".into() },
            XmlError::NoRootElement,
            XmlError::TrailingContent { offset: 9 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
