//! A reusable, thread-safe store of generated fault profiles.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::xml::{self, XmlElement};
use crate::{FaultProfile, ProfileError};

/// Identity of a stored profile: which library, on which platform, profiled
/// from which exact binary.
///
/// `code_hash` is whatever content hash the producer keys its binaries by
/// (the profiler uses `SharedObject::fingerprint`, folded with its own
/// options), so a stored profile can never be replayed against a binary other
/// than the one it was computed from.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProfileKey {
    /// Library file name (e.g. `libc.so.6`).
    pub library: String,
    /// Platform label, when the producer recorded one.
    pub platform: Option<String>,
    /// Content hash of the analyzed binary (plus any producer-side salt).
    pub code_hash: u64,
}

impl ProfileKey {
    /// Creates a key.
    pub fn new(library: impl Into<String>, platform: Option<String>, code_hash: u64) -> Self {
        Self { library: library.into(), platform, code_hash }
    }
}

/// An in-memory store of [`FaultProfile`]s keyed by [`ProfileKey`], with a
/// lossless XML round-trip for persistence.
///
/// The paper's workflow profiles a system once and then runs many injection
/// campaigns against the result; `ProfileStore` is the piece that makes
/// "once" literal.  `lfi_core::Lfi` consults its store before invoking the
/// profiler and inserts every fresh report, so repeated `profile()` calls,
/// `profiles_of()` chains and whole campaigns replay stored profiles for as
/// long as the underlying binaries (hence their `code_hash`) stay unchanged.
///
/// Invalidation is the producer's job, and how much to invalidate depends on
/// how profiles were produced: the facade conservatively [`clear`]s the whole
/// store whenever its library set or kernel image changes, because its
/// profiles embed cross-library import resolution.  Producers whose profiles
/// are per-library facts can use the finer-grained
/// [`ProfileStore::invalidate_library`] instead.
///
/// [`clear`]: ProfileStore::clear
///
/// Profiles are handed out as `Arc`s: a store hit never copies the profile.
/// All methods take `&self`; the store is safe to share across threads.
#[derive(Debug, Default)]
pub struct ProfileStore {
    entries: RwLock<HashMap<ProfileKey, Arc<FaultProfile>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Clone for ProfileStore {
    /// Clones the entries (cheaply — they are `Arc`s) with fresh counters.
    fn clone(&self) -> Self {
        let entries = self.entries.read().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
        Self { entries: RwLock::new(entries), hits: AtomicU64::new(0), misses: AtomicU64::new(0) }
    }
}

impl PartialEq for ProfileStore {
    fn eq(&self, other: &Self) -> bool {
        *self.entries.read().unwrap_or_else(std::sync::PoisonError::into_inner)
            == *other.entries.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl ProfileStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stored profile for `key`, if any.  Counts toward the hit/miss
    /// statistics.
    pub fn get(&self, key: &ProfileKey) -> Option<Arc<FaultProfile>> {
        let entries = self.entries.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        let found = entries.get(key).cloned();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores `profile` under `key`, replacing any previous entry, and
    /// returns the shared handle.
    pub fn insert(&self, key: ProfileKey, profile: FaultProfile) -> Arc<FaultProfile> {
        let profile = Arc::new(profile);
        let mut entries = self.entries.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        entries.insert(key, Arc::clone(&profile));
        profile
    }

    /// Drops every entry for the named library.  This is the right hook only
    /// when stored profiles are per-library facts; profiles that embed
    /// cross-library analysis (the facade's do) need [`ProfileStore::clear`]
    /// when the library set changes.  Returns how many entries were dropped.
    pub fn invalidate_library(&self, library: &str) -> usize {
        let mut entries = self.entries.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        let before = entries.len();
        entries.retain(|key, _| key.library != library);
        before - entries.len()
    }

    /// Number of stored profiles.
    pub fn len(&self) -> usize {
        self.entries.read().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// True when the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Store hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Store misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The stored entries, sorted by key — the deterministic iteration
    /// every serializer builds on ([`ProfileStore::to_xml`] here,
    /// `lfi-store`'s binary codec externally).  Profiles are `Arc`s, so
    /// the snapshot copies handles, not profile bodies.
    pub fn snapshot(&self) -> Vec<(ProfileKey, Arc<FaultProfile>)> {
        let entries = self.entries.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut sorted: Vec<(ProfileKey, Arc<FaultProfile>)> =
            entries.iter().map(|(key, profile)| (key.clone(), Arc::clone(profile))).collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        sorted
    }

    /// Drops every entry and resets the counters.
    pub fn clear(&self) {
        self.entries.write().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Serializes the store to XML: a `<profile-store>` document with one
    /// `<entry>` per profile, sorted by key so output is deterministic.
    pub fn to_xml(&self) -> String {
        let entries = self.entries.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut sorted: Vec<(&ProfileKey, &Arc<FaultProfile>)> = entries.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(b.0));
        let mut root = XmlElement::new("profile-store");
        for (key, profile) in sorted {
            let mut entry = XmlElement::new("entry").attr("library", &key.library);
            if let Some(platform) = &key.platform {
                entry = entry.attr("platform", platform);
            }
            entry = entry.attr("code-hash", format!("{:016X}", key.code_hash));
            root = root.child(entry.child(profile.to_xml_element()));
        }
        root.to_xml_string()
    }

    /// Parses a store from its XML form.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] if the document is not well-formed XML or
    /// does not follow the store schema.
    pub fn from_xml(text: &str) -> Result<ProfileStore, ProfileError> {
        let root = xml::parse(text)?;
        if root.name != "profile-store" {
            return Err(ProfileError::schema(format!("expected <profile-store>, found <{}>", root.name)));
        }
        let store = ProfileStore::new();
        for entry in root.children_named("entry") {
            let library = entry
                .attribute("library")
                .ok_or_else(|| ProfileError::schema("<entry> missing library attribute"))?
                .to_owned();
            let platform = entry.attribute("platform").map(str::to_owned);
            let hash_text = entry
                .attribute("code-hash")
                .ok_or_else(|| ProfileError::schema("<entry> missing code-hash attribute"))?;
            let code_hash = u64::from_str_radix(hash_text, 16)
                .map_err(|_| ProfileError::InvalidNumber { field: "code-hash".into(), text: hash_text.to_owned() })?;
            let profile_element = entry
                .first_child("profile")
                .ok_or_else(|| ProfileError::schema("<entry> missing <profile> child"))?;
            let profile = FaultProfile::from_xml_element(profile_element)?;
            store.insert(ProfileKey { library, platform, code_hash }, profile);
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ErrorReturn, FunctionProfile, SideEffect};

    fn profile(library: &str) -> FaultProfile {
        let mut profile = FaultProfile::new(library).with_platform("Linux/x86");
        profile.push_function(FunctionProfile {
            name: "close".into(),
            error_returns: vec![ErrorReturn { retval: -1, side_effects: vec![SideEffect::tls(library, 0x12fff4, -9)] }],
        });
        profile
    }

    fn key(library: &str, hash: u64) -> ProfileKey {
        ProfileKey::new(library, Some("Linux/x86".into()), hash)
    }

    #[test]
    fn store_round_trips_entries_and_counts() {
        let store = ProfileStore::new();
        assert!(store.is_empty());
        assert!(store.get(&key("libc.so.6", 1)).is_none());
        let handle = store.insert(key("libc.so.6", 1), profile("libc.so.6"));
        let found = store.get(&key("libc.so.6", 1)).unwrap();
        assert!(Arc::ptr_eq(&handle, &found));
        // A different code hash is a different binary: miss.
        assert!(store.get(&key("libc.so.6", 2)).is_none());
        assert_eq!((store.hits(), store.misses()), (1, 2));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn invalidation_is_by_library_name() {
        let store = ProfileStore::new();
        store.insert(key("liba.so", 1), profile("liba.so"));
        store.insert(key("liba.so", 2), profile("liba.so"));
        store.insert(key("libb.so", 3), profile("libb.so"));
        assert_eq!(store.invalidate_library("liba.so"), 2);
        assert_eq!(store.len(), 1);
        assert!(store.get(&key("libb.so", 3)).is_some());
        store.clear();
        assert!(store.is_empty());
        assert_eq!((store.hits(), store.misses()), (0, 0));
    }

    #[test]
    fn xml_round_trip_preserves_the_store() {
        let store = ProfileStore::new();
        store.insert(key("libc.so.6", 0xDEAD_BEEF), profile("libc.so.6"));
        store.insert(ProfileKey::new("libx.so", None, 7), FaultProfile::new("libx.so"));
        let xml = store.to_xml();
        assert!(xml.contains("<profile-store>"));
        assert!(xml.contains("code-hash=\"00000000DEADBEEF\""));
        let parsed = ProfileStore::from_xml(&xml).unwrap();
        assert_eq!(parsed, store);
        // And the clone carries the same entries.
        assert_eq!(store.clone(), store);
    }

    #[test]
    fn schema_violations_are_reported() {
        assert!(matches!(ProfileStore::from_xml("<plan />"), Err(ProfileError::Schema { .. })));
        assert!(matches!(
            ProfileStore::from_xml("<profile-store><entry /></profile-store>"),
            Err(ProfileError::Schema { .. })
        ));
        assert!(matches!(
            ProfileStore::from_xml("<profile-store><entry library=\"l\" /></profile-store>"),
            Err(ProfileError::Schema { .. })
        ));
        assert!(matches!(
            ProfileStore::from_xml("<profile-store><entry library=\"l\" code-hash=\"zz\" /></profile-store>"),
            Err(ProfileError::InvalidNumber { .. })
        ));
        assert!(matches!(
            ProfileStore::from_xml("<profile-store><entry library=\"l\" code-hash=\"1\" /></profile-store>"),
            Err(ProfileError::Schema { .. })
        ));
    }

    #[test]
    fn concurrent_access_is_safe() {
        let store = ProfileStore::new();
        std::thread::scope(|scope| {
            for i in 0..4u64 {
                let store = &store;
                scope.spawn(move || {
                    store.insert(key("libshared.so", i), profile("libshared.so"));
                    assert!(store.get(&key("libshared.so", i)).is_some());
                });
            }
        });
        assert_eq!(store.len(), 4);
    }
}
