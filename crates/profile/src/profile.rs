use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::xml::{self, XmlElement};
use crate::ProfileError;

/// The channel through which an error side effect is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SideEffectKind {
    /// A thread-local-storage variable (e.g. `errno`).
    Tls,
    /// A module-global variable.
    Global,
    /// A value written through a pointer argument (output parameter).
    OutputArg,
}

impl fmt::Display for SideEffectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SideEffectKind::Tls => "TLS",
            SideEffectKind::Global => "global",
            SideEffectKind::OutputArg => "argument",
        };
        f.write_str(s)
    }
}

impl SideEffectKind {
    fn parse(text: &str) -> Option<Self> {
        match text {
            "TLS" => Some(SideEffectKind::Tls),
            "global" => Some(SideEffectKind::Global),
            "argument" => Some(SideEffectKind::OutputArg),
            _ => None,
        }
    }
}

/// One side effect accompanying an error return (§3.2, §3.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SideEffect {
    /// Channel used to expose the error detail.
    pub kind: SideEffectKind,
    /// Module whose data image holds the location (for TLS/global effects).
    pub module: String,
    /// Offset of the location within the module data image; for
    /// [`SideEffectKind::OutputArg`] this is the argument index instead.
    pub offset: u32,
    /// Value written into the location.
    pub value: i64,
}

impl SideEffect {
    /// A TLS side effect (the `errno` pattern).
    pub fn tls(module: impl Into<String>, offset: u32, value: i64) -> Self {
        Self { kind: SideEffectKind::Tls, module: module.into(), offset, value }
    }

    /// A global-variable side effect.
    pub fn global(module: impl Into<String>, offset: u32, value: i64) -> Self {
        Self { kind: SideEffectKind::Global, module: module.into(), offset, value }
    }

    /// An output-argument side effect.
    pub fn output_arg(module: impl Into<String>, arg_index: u32, value: i64) -> Self {
        Self { kind: SideEffectKind::OutputArg, module: module.into(), offset: arg_index, value }
    }
}

/// One possible error return of a function, with its side effects.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorReturn {
    /// The error return value.
    pub retval: i64,
    /// Side effects that accompany this return value (possibly several
    /// alternatives, e.g. the different errno values of `close`).
    pub side_effects: Vec<SideEffect>,
}

impl ErrorReturn {
    /// An error return with no side effects.
    pub fn bare(retval: i64) -> Self {
        Self { retval, side_effects: Vec::new() }
    }

    /// The distinct errno-style TLS values attached to this return.
    pub fn errno_values(&self) -> Vec<i64> {
        let mut values: Vec<i64> = self
            .side_effects
            .iter()
            .filter(|s| s.kind == SideEffectKind::Tls)
            .map(|s| s.value)
            .collect();
        values.sort_unstable();
        values.dedup();
        values
    }
}

/// The fault profile of one exported function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionProfile {
    /// Exported function name.
    pub name: String,
    /// Every error return the profiler found.
    pub error_returns: Vec<ErrorReturn>,
}

impl FunctionProfile {
    /// Creates an empty profile for a function.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), error_returns: Vec::new() }
    }

    /// The set of distinct error return values.
    pub fn error_values(&self) -> BTreeSet<i64> {
        self.error_returns.iter().map(|e| e.retval).collect()
    }

    /// True if the profiler found no injectable errors for this function.
    pub fn is_empty(&self) -> bool {
        self.error_returns.is_empty()
    }

    /// Number of injectable faults: one per (return value, side-effect
    /// alternative) pair, or one per bare return value.
    pub fn fault_count(&self) -> usize {
        self.error_returns.iter().map(|e| e.side_effects.len().max(1)).sum()
    }
}

/// The fault profile of a whole library (§3.3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Library file name (e.g. `libc.so.6`).
    pub library: String,
    /// Platform label, informational only.
    pub platform: Option<String>,
    /// Per-function profiles, in the order functions were analyzed.
    pub functions: Vec<FunctionProfile>,
}

impl FaultProfile {
    /// Creates an empty profile for a library.
    pub fn new(library: impl Into<String>) -> Self {
        Self { library: library.into(), platform: None, functions: Vec::new() }
    }

    /// Sets the platform label.
    pub fn with_platform(mut self, platform: impl Into<String>) -> Self {
        self.platform = Some(platform.into());
        self
    }

    /// Adds a function profile.
    pub fn push_function(&mut self, function: FunctionProfile) {
        self.functions.push(function);
    }

    /// Looks up a function profile by name.
    pub fn function(&self, name: &str) -> Option<&FunctionProfile> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Number of profiled functions.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// Total number of injectable faults across all functions.
    pub fn total_faults(&self) -> usize {
        self.functions.iter().map(FunctionProfile::fault_count).sum()
    }

    /// Retains only the named functions — the "testers can alter the
    /// generated profiles" workflow from §2.
    pub fn retain_functions(&mut self, names: &[&str]) {
        self.functions.retain(|f| names.contains(&f.name.as_str()));
    }

    /// Serializes the profile to the XML dialect of §3.3.
    pub fn to_xml(&self) -> String {
        self.to_xml_element().to_xml_string()
    }

    /// Builds the `<profile>` element, for callers that embed profiles in a
    /// larger document (e.g. [`crate::ProfileStore`]).
    pub fn to_xml_element(&self) -> XmlElement {
        let mut root = XmlElement::new("profile").attr("library", &self.library);
        if let Some(platform) = &self.platform {
            root = root.attr("platform", platform);
        }
        for function in &self.functions {
            let mut fe = XmlElement::new("function").attr("name", &function.name);
            for error in &function.error_returns {
                let mut ee = XmlElement::new("error-codes").attr("retval", error.retval);
                for effect in &error.side_effects {
                    let se = XmlElement::new("side-effect")
                        .attr("type", effect.kind)
                        .attr("module", &effect.module)
                        .attr("offset", format!("{:X}", effect.offset))
                        .text(effect.value.to_string());
                    ee = ee.child(se);
                }
                fe = fe.child(ee);
            }
            root = root.child(fe);
        }
        root
    }

    /// Parses a profile from its XML form.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] if the document is not well-formed XML or does
    /// not follow the profile schema.
    pub fn from_xml(text: &str) -> Result<FaultProfile, ProfileError> {
        Self::from_xml_element(&xml::parse(text)?)
    }

    /// Parses a profile from an already-parsed `<profile>` element.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Schema`] or [`ProfileError::InvalidNumber`] if
    /// the element does not follow the profile schema.
    pub fn from_xml_element(root: &XmlElement) -> Result<FaultProfile, ProfileError> {
        if root.name != "profile" {
            return Err(ProfileError::schema(format!("expected <profile>, found <{}>", root.name)));
        }
        let library = root.attribute("library").unwrap_or("").to_owned();
        let platform = root.attribute("platform").map(str::to_owned);
        let mut functions = Vec::new();
        for fe in root.children_named("function") {
            let name = fe
                .attribute("name")
                .ok_or_else(|| ProfileError::schema("<function> missing name attribute"))?
                .to_owned();
            let mut error_returns = Vec::new();
            for ee in fe.children_named("error-codes") {
                let retval_text = ee
                    .attribute("retval")
                    .ok_or_else(|| ProfileError::schema("<error-codes> missing retval attribute"))?;
                let retval = retval_text.parse::<i64>().map_err(|_| ProfileError::InvalidNumber {
                    field: "retval".into(),
                    text: retval_text.to_owned(),
                })?;
                let mut side_effects = Vec::new();
                for se in ee.children_named("side-effect") {
                    let kind_text = se
                        .attribute("type")
                        .ok_or_else(|| ProfileError::schema("<side-effect> missing type attribute"))?;
                    let kind = SideEffectKind::parse(kind_text)
                        .ok_or_else(|| ProfileError::schema(format!("unknown side-effect type {kind_text:?}")))?;
                    let module = se.attribute("module").unwrap_or("").to_owned();
                    let offset_text = se.attribute("offset").unwrap_or("0");
                    let offset = u32::from_str_radix(offset_text, 16).map_err(|_| ProfileError::InvalidNumber {
                        field: "offset".into(),
                        text: offset_text.to_owned(),
                    })?;
                    let value_text = se.text_content();
                    let value = value_text.parse::<i64>().map_err(|_| ProfileError::InvalidNumber {
                        field: "side-effect value".into(),
                        text: value_text.clone(),
                    })?;
                    side_effects.push(SideEffect { kind, module, offset, value });
                }
                error_returns.push(ErrorReturn { retval, side_effects });
            }
            functions.push(FunctionProfile { name, error_returns });
        }
        Ok(FaultProfile { library, platform, functions })
    }
}

impl fmt::Display for FaultProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fault profile of {}: {} functions, {} injectable faults",
            self.library,
            self.function_count(),
            self.total_faults()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close_profile() -> FaultProfile {
        let mut profile = FaultProfile::new("libc.so.6").with_platform("Linux/x86");
        profile.push_function(FunctionProfile {
            name: "close".into(),
            error_returns: vec![ErrorReturn {
                retval: -1,
                side_effects: vec![
                    SideEffect::tls("libc.so.6", 0x12fff4, -9),
                    SideEffect::tls("libc.so.6", 0x12fff4, -5),
                    SideEffect::tls("libc.so.6", 0x12fff4, -4),
                ],
            }],
        });
        profile.push_function(FunctionProfile::new("getpid"));
        profile
    }

    #[test]
    fn xml_round_trip_preserves_profile() {
        let profile = close_profile();
        let xml = profile.to_xml();
        assert!(xml.contains("<function name=\"close\">"));
        assert!(xml.contains("retval=\"-1\""));
        assert!(xml.contains("offset=\"12FFF4\""));
        let parsed = FaultProfile::from_xml(&xml).unwrap();
        assert_eq!(parsed, profile);
    }

    #[test]
    fn counting_and_lookup() {
        let profile = close_profile();
        assert_eq!(profile.function_count(), 2);
        assert_eq!(profile.total_faults(), 3);
        let close = profile.function("close").unwrap();
        assert_eq!(close.fault_count(), 3);
        assert_eq!(close.error_values().into_iter().collect::<Vec<_>>(), vec![-1]);
        assert_eq!(
            close.error_returns[0].errno_values(),
            vec![-9, -5, -4]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()
        );
        assert!(profile.function("getpid").unwrap().is_empty());
        assert!(profile.function("missing").is_none());
        assert!(profile.to_string().contains("libc.so.6"));
    }

    #[test]
    fn retain_functions_narrows_the_profile() {
        let mut profile = close_profile();
        profile.retain_functions(&["close"]);
        assert_eq!(profile.function_count(), 1);
        assert!(profile.function("getpid").is_none());
    }

    #[test]
    fn schema_violations_are_reported() {
        assert!(matches!(FaultProfile::from_xml("<plan />"), Err(ProfileError::Schema { .. })));
        assert!(matches!(FaultProfile::from_xml("<profile><function /></profile>"), Err(ProfileError::Schema { .. })));
        assert!(matches!(
            FaultProfile::from_xml("<profile><function name=\"f\"><error-codes /></function></profile>"),
            Err(ProfileError::Schema { .. })
        ));
        assert!(matches!(
            FaultProfile::from_xml("<profile><function name=\"f\"><error-codes retval=\"x\" /></function></profile>"),
            Err(ProfileError::InvalidNumber { .. })
        ));
        assert!(matches!(FaultProfile::from_xml("not xml"), Err(ProfileError::Xml(_))));
    }

    #[test]
    fn bare_error_returns_count_as_one_fault() {
        let mut profile = FaultProfile::new("libx.so");
        profile.push_function(FunctionProfile {
            name: "f".into(),
            error_returns: vec![ErrorReturn::bare(-1), ErrorReturn::bare(-2)],
        });
        assert_eq!(profile.total_faults(), 2);
    }

    #[test]
    fn output_arg_side_effects_round_trip() {
        let mut profile = FaultProfile::new("libssl.so");
        profile.push_function(FunctionProfile {
            name: "ssl_read".into(),
            error_returns: vec![ErrorReturn {
                retval: -1,
                side_effects: vec![SideEffect::output_arg("libssl.so", 2, 0), SideEffect::global("libssl.so", 0x40, 7)],
            }],
        });
        let parsed = FaultProfile::from_xml(&profile.to_xml()).unwrap();
        assert_eq!(parsed, profile);
    }
}
