//! Ablation micro-benchmark: the per-call cost of trigger evaluation in the
//! interceptor stub, as a function of the number of plan entries attached to
//! the intercepted function.  This is the mechanism behind the "overhead is
//! influenced by … how many triggers are present" observation in §6.4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lfi_controller::Injector;
use lfi_profile::FaultProfile;
use lfi_runtime::{NativeLibrary, Process};
use lfi_scenario::generator::{ScenarioGenerator, TriggerLoad};

fn process_with_triggers(triggers: usize) -> Process {
    let mut process = Process::new();
    process.load(NativeLibrary::builder("libc.so.6").function("read", |ctx| ctx.arg(2)).build());
    if triggers > 0 {
        // All triggers target the same function so every call evaluates all
        // of them; call-count triggers placed beyond the benchmark's call
        // count never fire, isolating pure evaluation cost.
        let plan = TriggerLoad::new(["read"], triggers, 7).generate(&[FaultProfile::new("libc.so.6")]);
        let injector = Injector::new(plan);
        process.preload(injector.synthesize_interceptor());
    }
    process
}

fn bench_trigger_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trigger_evaluation_per_call");
    for triggers in [0usize, 1, 10, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(triggers), &triggers, |b, &triggers| {
            let mut process = process_with_triggers(triggers);
            let mut i = 0i64;
            b.iter(|| {
                i += 1;
                process.call("read", &[3, 0, i]).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trigger_evaluation);
criterion_main!(benches);
