//! Table 2 bench: time profiling + accuracy scoring for representative
//! libraries of the named corpus (small, medium, large) and print the
//! measured accuracy table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lfi_core::experiments::table2_accuracy;
use lfi_corpus::named::{build_table2_library, TABLE2};
use lfi_profiler::{score_profile, Profiler, ProfilerOptions};

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_profiler_accuracy");
    group.sample_size(10);
    for name in ["libdmx", "libldap", "libvorbisfile"] {
        let entry = TABLE2.iter().find(|e| e.name == name && e.name != "libxml2").unwrap();
        let library = build_table2_library(entry, 2009);
        group.bench_with_input(BenchmarkId::from_parameter(name), &library, |b, library| {
            b.iter(|| {
                let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
                profiler.add_library(library.compiled.object.clone());
                let report = profiler.profile_library(library.name()).unwrap();
                score_profile(&report.profile, &library.documentation)
            })
        });
    }
    group.finish();

    println!("{}", table2_accuracy(2009).render());
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
