//! Profiling throughput over the shared analysis cache (`AnalysisDb`) and
//! the facade's `ProfileStore`:
//!
//! * `cold`  — a fresh profiler per iteration: full disassembly + analysis;
//! * `warm`  — one shared profiler: repeat profiling replays memoized
//!   resolutions and `Arc`'d disassemblies;
//! * `store` — the `Lfi` facade replays the whole profile from its
//!   `ProfileStore` without touching the analyzer;
//! * `profile_all-{cold,warm}` — the §6.2 "profile the whole system"
//!   workflow over a corpus whose libraries share libc and the kernel image.
//!
//! Before/after figures for the shared-cache refactor are recorded in
//! CHANGES.md; the acceptance bar is warm ≥ 5× faster than cold.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lfi_asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
use lfi_core::Lfi;
use lfi_corpus::{build_kernel, build_libc_scaled};
use lfi_isa::Platform;
use lfi_objfile::SharedObject;
use lfi_profiler::Profiler;

const LIBC_EXPORTS: usize = 120;

fn corpus() -> Vec<SharedObject> {
    let mut libraries = vec![build_libc_scaled(Platform::LinuxX86, LIBC_EXPORTS).compiled.object];
    // Three dependent app libraries that resolve into the shared libc.
    for (name, ret) in [("libapp.so", -11), ("libnet.so", -12), ("libui.so", -13)] {
        let spec = LibrarySpec::new(name, Platform::LinuxX86)
            .dependency("libc.so.6")
            .import("close", Some("libc.so.6"))
            .function(FunctionSpec::scalar("api_entry", 2).success(0).fault(FaultSpec::via_callee("close")))
            .function(FunctionSpec::scalar("api_fail", 1).success(0).fault(FaultSpec::returning(ret)));
        libraries.push(LibraryCompiler::new().compile(&spec).object);
    }
    libraries
}

fn profiler_over(libraries: &[SharedObject]) -> Profiler {
    let mut profiler = Profiler::new();
    for library in libraries {
        profiler.add_library(library.clone());
    }
    profiler.set_kernel(build_kernel(Platform::LinuxX86));
    profiler
}

fn bench_profiler_throughput(c: &mut Criterion) {
    let libraries = corpus();
    let mut group = c.benchmark_group("profiler_throughput");
    group.sample_size(10);

    group.bench_function("libc-cold", |b| {
        b.iter(|| {
            let profiler = profiler_over(&libraries);
            black_box(profiler.profile_library("libc.so.6").unwrap())
        })
    });

    let warm_profiler = profiler_over(&libraries);
    warm_profiler.profile_library("libc.so.6").unwrap();
    group.bench_function("libc-warm", |b| b.iter(|| black_box(warm_profiler.profile_library("libc.so.6").unwrap())));

    let mut warm_lfi = Lfi::new();
    for library in &libraries {
        warm_lfi.add_library(library.clone());
    }
    warm_lfi.set_kernel(build_kernel(Platform::LinuxX86));
    warm_lfi.profile("libc.so.6").unwrap();
    group.bench_function("libc-store", |b| b.iter(|| black_box(warm_lfi.profile("libc.so.6").unwrap())));

    group.bench_function("profile_all-cold", |b| {
        b.iter(|| {
            let profiler = profiler_over(&libraries);
            black_box(profiler.profile_all().unwrap())
        })
    });

    let warm_all = profiler_over(&libraries);
    warm_all.profile_all().unwrap();
    group.bench_function("profile_all-warm", |b| b.iter(|| black_box(warm_all.profile_all().unwrap())));

    group.finish();

    // The acceptance assertion behind the numbers: a warm profile_all never
    // re-disassembles shared dependencies.
    let checked = profiler_over(&libraries);
    checked.profile_all().unwrap();
    let warm_reports = checked.profile_all().unwrap();
    let warm_misses: u64 = warm_reports.iter().map(|r| r.stats.disasm_cache_misses).sum();
    assert_eq!(warm_misses, 0, "warm profile_all must not re-disassemble anything");
    println!(
        "profile_all warm: {} resolution hits, 0 disassemblies, {} libraries",
        warm_reports.iter().map(|r| r.stats.resolution_cache_hits).sum::<u64>(),
        warm_reports.len(),
    );
}

criterion_group!(benches, bench_profiler_throughput);
criterion_main!(benches);
