//! Isolates the per-call cost of interceptor dispatch from workload noise:
//! one intercepted call on the three interesting paths — uninstrumented
//! (no interceptor at all), pass-through (a trigger is armed but never
//! fires), and triggered (a probability-1 fault is applied on every call).
//!
//! The numbers from this bench are the §6.4 "interception overhead must be
//! negligible" trajectory for this repo; before/after figures for the
//! interned-symbol refactor are recorded in CHANGES.md.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lfi_controller::Injector;
use lfi_runtime::{NativeLibrary, Process, Symbol};
use lfi_scenario::{FaultAction, Plan, PlanEntry, Trigger};

/// Calls per timed sample: individual calls are ~100 ns, far below timer
/// resolution for the shim's 10-sample strategy, so each iteration batches.
const CALLS_PER_ITER: u64 = 100_000;

fn libc() -> NativeLibrary {
    NativeLibrary::builder("libc.so.6").function("read", |ctx| ctx.arg(2)).build()
}

fn intercepted_process(plan: Plan) -> (Process, Injector) {
    let mut process = Process::new();
    process.load(libc());
    let injector = Injector::new(plan);
    process.preload(injector.synthesize_interceptor());
    (process, injector)
}

fn passthrough_plan() -> Plan {
    // The trigger is armed (so the stub evaluates it on every call) but its
    // ordinal is unreachable, so every call takes the pass-through path.
    Plan::new().entry(PlanEntry {
        function: "read".into(),
        trigger: Trigger::on_call(u64::MAX),
        action: FaultAction::return_value(-1).with_errno(9),
    })
}

fn general_passthrough_plan() -> Plan {
    // A second never-firing entry on the same function defeats stub
    // specialization, so this plan measures the pre-specialization general
    // stub (per-call entry walk) on identical traffic to `passthrough`,
    // which now compiles to the deterministic baked-in stub.
    passthrough_plan().entry(PlanEntry {
        function: "read".into(),
        trigger: Trigger::on_call(u64::MAX - 1),
        action: FaultAction::return_value(-2),
    })
}

fn triggered_plan() -> Plan {
    // Probability 1.0: the fault (retval + errno) is applied on every call,
    // exercising the full decide-and-apply path including the log append.
    Plan::new().with_seed(7).entry(PlanEntry {
        function: "read".into(),
        trigger: Trigger::with_probability(1.0),
        action: FaultAction::return_value(-1).with_errno(9),
    })
}

fn run_calls(process: &mut Process) -> i64 {
    let mut acc = 0i64;
    for i in 0..CALLS_PER_ITER {
        acc ^= process.call("read", &[3, 0, (i & 0xff) as i64]).unwrap();
    }
    acc
}

/// Prints a per-call figure (the shim reports per-iteration means, and one
/// iteration here is [`CALLS_PER_ITER`] calls).
fn per_call_summary(label: &str, process: &mut Process) {
    let start = Instant::now();
    let acc = run_calls(process);
    let elapsed = start.elapsed();
    black_box(acc);
    println!("{label}: {:.1} ns/call", elapsed.as_secs_f64() * 1e9 / CALLS_PER_ITER as f64);
}

fn bench_dispatch_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_hot_path");

    group.bench_function("uninstrumented", |b| {
        let mut process = Process::new();
        process.load(libc());
        b.iter(|| run_calls(&mut process))
    });

    group.bench_function("passthrough", |b| {
        let (mut process, _injector) = intercepted_process(passthrough_plan());
        b.iter(|| run_calls(&mut process))
    });

    group.bench_function("passthrough_general", |b| {
        let (mut process, _injector) = intercepted_process(general_passthrough_plan());
        b.iter(|| run_calls(&mut process))
    });

    group.bench_function("triggered", |b| {
        let (mut process, injector) = intercepted_process(triggered_plan());
        b.iter(|| {
            // Every call injects, so reset between iterations keeps the
            // injection log at steady state instead of growing across
            // samples and timing reallocs of an ever-larger Vec.
            injector.reset();
            run_calls(&mut process)
        })
    });

    // The resolve-once contract end to end: the workload resolves `read` to a
    // Symbol at setup and dispatches by id, so not even the call boundary
    // hashes a string.
    group.bench_function("passthrough_presym", |b| {
        let (mut process, _injector) = intercepted_process(passthrough_plan());
        let read = Symbol::intern("read");
        b.iter(|| {
            let mut acc = 0i64;
            for i in 0..CALLS_PER_ITER {
                acc ^= process.call_sym(read, &[3, 0, (i & 0xff) as i64]).unwrap();
            }
            acc
        })
    });

    group.finish();

    let mut process = Process::new();
    process.load(libc());
    per_call_summary("uninstrumented      ", &mut process);
    per_call_summary("passthrough (spec)  ", &mut intercepted_process(passthrough_plan()).0);
    per_call_summary("passthrough (general)", &mut intercepted_process(general_passthrough_plan()).0);
    per_call_summary("triggered           ", &mut intercepted_process(triggered_plan()).0);
}

criterion_group!(benches, bench_dispatch_hot_path);
criterion_main!(benches);
