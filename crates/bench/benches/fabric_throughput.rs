//! Throughput of the campaign fabric against the pre-fabric baseline:
//!
//! * `multiplexed_3jobs` — three 16-cell jobs submitted together to one
//!   fabric with four workers; the deficit scheduler interleaves their
//!   leases over the shared fleet;
//! * `back_to_back`      — the same 48 cells as three sequential
//!   `Campaign::run` calls at parallelism 4, i.e. what three tenants would
//!   pay queuing for the machine one after another.
//!
//! The acceptance bar for the fabric is that multiplexing stays close to
//! the back-to-back baseline (CI gates at 1.35x in fast mode): the lease
//! bookkeeping, event fan-in and checkpoint-grade accounting must cost
//! little next to the per-case work.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lfi_controller::{Campaign, FnWorkload, TestCase};
use lfi_fabric::{Fabric, JobSpec};
use lfi_runtime::{ExitStatus, NativeLibrary, Process};
use lfi_scenario::{FaultAction, Plan, PlanEntry, Trigger};

/// Cells per job, jobs per round, and dispatched calls per case: enough
/// per-case dispatch work that the numbers reflect scheduling overhead
/// amortized over real cases.
const CELLS_PER_JOB: u64 = 16;
const JOBS: usize = 3;
const CALLS_PER_CASE: i64 = 200;
const WORKERS: usize = 4;

fn setup() -> Process {
    let mut process = Process::new();
    process.load(NativeLibrary::builder("libc.so.6").function("read", |ctx| ctx.arg(2)).build());
    process
}

fn workload(process: &mut Process) -> ExitStatus {
    let mut failures = 0;
    for i in 0..CALLS_PER_CASE {
        if process.call("read", &[3, 0, i & 0xff]).unwrap_or(-1) < 0 {
            failures += 1;
        }
    }
    ExitStatus::Exited(failures.min(1))
}

/// One job's faultload: `CELLS_PER_JOB` cells on distinct call ordinals.
fn job_plan() -> Plan {
    (1..=CELLS_PER_JOB).fold(Plan::new(), |plan, ordinal| {
        plan.entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(ordinal),
            action: FaultAction::return_value(-1).with_errno(5),
        })
    })
}

/// The same cells as explicit campaign test cases (the baseline path).
fn job_cases() -> Vec<TestCase> {
    (1..=CELLS_PER_JOB)
        .map(|ordinal| {
            TestCase::new(
                format!("case-{ordinal:02}"),
                Plan::new().entry(PlanEntry {
                    function: "read".into(),
                    trigger: Trigger::on_call(ordinal),
                    action: FaultAction::return_value(-1).with_errno(5),
                }),
            )
        })
        .collect()
}

fn bench_fabric_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric_throughput");
    group.sample_size(10);

    group.bench_function("multiplexed_3jobs", |b| {
        b.iter(|| {
            let fabric = Fabric::builder()
                .workers(WORKERS)
                .register(FnWorkload::new("reader", setup, workload))
                .build();
            for tenant in 0..JOBS {
                fabric.submit(JobSpec::new(format!("tenant-{tenant}"), "reader", job_plan())).unwrap();
            }
            let reports = fabric.drain();
            assert_eq!(reports.len(), JOBS);
            let executed: usize = reports.iter().map(|r| r.coverage.executed).sum();
            assert_eq!(executed, JOBS * CELLS_PER_JOB as usize);
            black_box(executed)
        })
    });

    group.bench_function("back_to_back", |b| {
        b.iter(|| {
            let mut executed = 0usize;
            for _ in 0..JOBS {
                let report = Campaign::new().cases(job_cases()).parallelism(WORKERS).run(setup, workload);
                executed += report.outcomes.len();
            }
            assert_eq!(executed, JOBS * CELLS_PER_JOB as usize);
            black_box(executed)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fabric_throughput);
criterion_main!(benches);
