//! Overhead of closed-loop rule evaluation on the campaign event stream:
//!
//! * `passive` — an empty `RuleSet`: the engine folds every event into
//!   `CampaignState` (the vitals any consumer pays for) but evaluates no
//!   rules or machines;
//! * `active`  — a realistic policy: a per-symbol escalation rule, a
//!   global rate watch, and the canonical circuit breaker, all evaluated
//!   on every event.
//!
//! Both feed the *same* pre-recorded event stream (one fixed campaign over
//! the dispatch corpus) through a fresh engine per iteration, so the pair
//! isolates exactly the marginal cost of rule + machine evaluation.  The
//! acceptance bar for the rules layer is `active <= 1.10x passive`: policy
//! evaluation must stay in the noise next to state folding, because every
//! campaign worker thread pays it inline on the observer hooks.
//!
//! # Methodology
//!
//! The two sides are measured in short **interleaved rounds** (the same
//! label is re-benched [`ROUNDS`] times) and the CI gate compares the
//! per-label *minima* across rounds.  One long passive run followed by one
//! long active run would fold CPU frequency drift into the ratio; paired
//! short rounds hit both sides with the same clock, and the minimum
//! discards the samples a migration or thermal step inflated.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lfi_controller::{Campaign, CaseEvent, FnWorkload, TestCase};
use lfi_rules::{Action, CircuitBreaker, Cmp, Condition, Metric, Rule, RuleEngine, RuleSet};
use lfi_runtime::{ExitStatus, NativeLibrary, Process};
use lfi_scenario::{FaultAction, Plan, PlanEntry, Trigger};

/// Campaign length: long enough that one-time engine construction (rule
/// builders, breaker lowering, machine compilation) amortizes out and the
/// pair compares steady-state per-event cost, which is what the observer
/// hooks pay.
const CASES: usize = 512;
const CALLS_PER_CASE: i64 = 40;
/// Fresh-engine replays of the recorded stream per timed iteration — each
/// iteration is ~1 ms, long enough that scheduler jitter does not swamp
/// the active/passive ratio the CI gate checks.
const REPLAYS: usize = 4;
/// Interleaved passive/active measurement rounds (see module docs).
const ROUNDS: usize = 8;

fn setup() -> Process {
    let mut process = Process::new();
    process.load(NativeLibrary::builder("libc.so.6").function("read", |ctx| ctx.arg(2)).build());
    process
}

fn workload(process: &mut Process) -> ExitStatus {
    let mut failures = 0;
    for i in 0..CALLS_PER_CASE {
        if process.call("read", &[3, 0, i & 0xff]).unwrap_or(-1) < 0 {
            failures += 1;
        }
    }
    ExitStatus::Exited(failures.min(1))
}

/// One fixed serial campaign, recorded as the event stream both engines
/// replay.
fn record_events() -> Vec<CaseEvent> {
    let cases: Vec<TestCase> = (0..CASES)
        .map(|i| {
            TestCase::new(
                format!("rules-{i:02}"),
                Plan::new().entry(PlanEntry {
                    function: "read".into(),
                    trigger: Trigger::on_call(1 + (i as u64 % 16)),
                    action: FaultAction::return_value(-1).with_errno(5),
                }),
            )
        })
        .collect();
    Campaign::new()
        .cases(cases)
        .start(FnWorkload::new("dispatch-corpus", setup, workload))
        .collect()
}

/// The canonical closed-loop policy (the `closed_loop` example's rule
/// set): per-symbol escalation on new crash clusters, a global crash
/// budget, and the per-symbol circuit breaker.
///
/// Windowed-rate guards (e.g. [`Metric::CrashRate`]) are deliberately
/// absent: a sliding window moves on every fold, so such rules opt out of
/// the engine's change-mask gating by design and pay per-event evaluation.
fn active_set() -> RuleSet {
    RuleSet::new()
        .rule(
            Rule::per_symbol(
                "escalate-on-crash",
                Condition::at_least(Metric::CrashClusters, 1.0),
                [Action::EscalateSiblings],
            )
            .once(),
        )
        .rule(Rule::global("crash-budget", Condition::threshold(Metric::Crashes, Cmp::Ge, 6.0), [Action::Cancel]))
        .machine(CircuitBreaker::tripping_after(2).cooldown(64))
}

fn bench_rules_overhead(c: &mut Criterion) {
    let events = record_events();
    assert!(events.len() >= CASES * 2, "the recorded stream covers every case");

    let mut group = c.benchmark_group("rules_overhead");
    group.sample_size(2);

    let run = |b: &mut criterion::Bencher, set: &dyn Fn() -> RuleSet| {
        b.iter(|| {
            let mut seen = 0;
            for _ in 0..REPLAYS {
                let mut engine = RuleEngine::new(set());
                for event in &events {
                    black_box(engine.observe(event));
                }
                seen += engine.state().events_seen;
            }
            black_box(seen)
        })
    };

    for _ in 0..ROUNDS {
        group.bench_function("passive", |b| run(b, &RuleSet::new));
        group.bench_function("active", |b| run(b, &active_set));
    }

    group.finish();
}

criterion_group!(benches, bench_rules_overhead);
criterion_main!(benches);
