//! Steps-per-second of the SimISA interpreter on a compute-heavy loop body:
//! the decode-per-step reference walk ([`Vm::run`]) against the pre-decoded
//! dense dispatch loop ([`Vm::run_decoded`]), plus the one-time compile cost
//! the fast path pays ([`Vm::compile`]).
//!
//! The loop body is shaped like what the library compiler emits for a real
//! C function: stack-spilled locals, an errno-style TLS counter and a
//! PIC-addressed global, alongside register arithmetic, flags and a
//! conditional back-edge.  The reference interpreter pays a `HashMap` probe
//! for every stack/TLS/global access where the decoded body pays a dense
//! `Vec` index into its unified frame — the cost the pre-decode pass exists
//! to eliminate.  The acceptance bar for the fast path is
//! `reference >= 5 x decoded` per run (gated in CI against the emitted
//! JSON).

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lfi_isa::vm::{ConstEnv, Vm, VmOptions};
use lfi_isa::{BinAluOp, Cond, Inst, Loc, Operand, Platform, Reg};

/// Loop iterations per run: each iteration executes 7 instructions, so one
/// run is ~140k steps — long enough that per-run overheads vanish.
const LOOP_ITERS: i64 = 20_000;

/// A counted loop with the memory mix of a compiled library body: two
/// stack-spilled locals, a TLS counter and a global accumulator updated per
/// iteration, returning the stack accumulator.
fn loop_body() -> Vec<Inst> {
    vec![
        Inst::MovImm { dst: Loc::Reg(Reg(1)), imm: LOOP_ITERS },
        Inst::MovImm { dst: Loc::Stack(-8), imm: 0 },
        Inst::MovImm { dst: Loc::Stack(-16), imm: 0 },
        // Loop head (target 3).
        Inst::Alu { op: BinAluOp::Add, dst: Loc::Stack(-8), src: Operand::Loc(Loc::Reg(Reg(1))) },
        Inst::Alu { op: BinAluOp::Xor, dst: Loc::Stack(-16), src: Operand::Loc(Loc::Stack(-8)) },
        Inst::Alu { op: BinAluOp::Add, dst: Loc::Tls(0x10), src: Operand::Imm(1) },
        Inst::Alu { op: BinAluOp::Add, dst: Loc::Global(0x20), src: Operand::Loc(Loc::Stack(-16)) },
        Inst::Alu { op: BinAluOp::Sub, dst: Loc::Reg(Reg(1)), src: Operand::Imm(1) },
        Inst::Cmp { a: Loc::Reg(Reg(1)), b: Operand::Imm(0) },
        Inst::JmpCond { cond: Cond::Gt, target: 3 },
        Inst::Mov { dst: Loc::Reg(Reg(0)), src: Loc::Stack(-8) },
        Inst::Ret,
    ]
}

fn vm() -> Vm {
    Vm::with_options(Platform::LinuxX86, VmOptions { step_limit: 10_000_000 })
}

fn bench_vm_throughput(c: &mut Criterion) {
    let vm = vm();
    let body = loop_body();
    let decoded = vm.compile(&body).expect("the loop body compiles");

    // The two execution paths must agree before their speeds are compared.
    let reference = vm.run(&body, &[], &mut ConstEnv::default()).expect("reference run");
    let fast = vm.run_decoded(&decoded, &[], &mut ConstEnv::default()).expect("decoded run");
    assert_eq!(reference.return_value, fast.return_value);
    assert_eq!(reference.steps, fast.steps);

    let mut group = c.benchmark_group("vm_throughput");

    group.bench_function("reference", |b| {
        b.iter(|| {
            let outcome = vm.run(black_box(&body), &[], &mut ConstEnv::default()).unwrap();
            black_box(outcome.return_value)
        })
    });

    group.bench_function("decoded", |b| {
        b.iter(|| {
            let outcome = vm.run_decoded(black_box(&decoded), &[], &mut ConstEnv::default()).unwrap();
            black_box(outcome.return_value)
        })
    });

    // The setup-time half of the bargain: what one pre-decode pass costs.
    group.bench_function("compile", |b| b.iter(|| black_box(vm.compile(black_box(&body)).unwrap())));

    group.finish();

    // A steps/sec summary, since the shim reports only per-iteration means.
    for (label, decoded_path) in [("reference", false), ("decoded  ", true)] {
        let start = Instant::now();
        let steps = if decoded_path {
            vm.run_decoded(&decoded, &[], &mut ConstEnv::default()).unwrap().steps
        } else {
            vm.run(&body, &[], &mut ConstEnv::default()).unwrap().steps
        };
        let elapsed = start.elapsed().as_secs_f64();
        println!("{label}: {:.1} M steps/s ({steps} steps)", steps as f64 / elapsed / 1e6);
    }
}

criterion_group!(benches, bench_vm_throughput);
criterion_main!(benches);
