//! Per-case process acquisition cost: building the full app process from
//! scratch (world + APR + aprutil + libc, the pre-arena per-case path)
//! against one checkout/return cycle on a pre-warmed [`ProcessArena`].
//!
//! The arena cycle pays an `Arc` bump per library, a state restore and the
//! world-reset hook instead of re-running every library builder, so it must
//! be at least 5x cheaper than the cold build (gated in CI against the
//! emitted JSON) — that margin is what pushes the per-case floor of a
//! campaign below the dispatch work itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lfi_apps::{base_process, new_world};
use lfi_runtime::{PreparedProcess, ProcessArena};

fn arena() -> ProcessArena {
    ProcessArena::new(|| {
        let world = new_world();
        let process = base_process(&world, true);
        PreparedProcess::with_reset(process, move |_| world.lock().reset())
    })
}

fn bench_case_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("case_setup");

    group.bench_function("cold_build", |b| {
        b.iter(|| {
            let world = new_world();
            let process = base_process(&world, true);
            black_box(process.loaded_libraries().count())
        })
    });

    group.bench_function("arena_cycle", |b| {
        let arena = arena();
        arena.prewarm(1);
        b.iter(|| {
            let process = arena.checkout();
            black_box(process.loaded_libraries().count())
            // Dropping the guard restores the snapshot, runs the world-reset
            // hook and returns the process to the pool — the full per-case
            // cost a campaign session pays.
        })
    });

    // The same cycle with per-case interceptor traffic: a preload makes the
    // library list diverge from the snapshot, so the return path also pays
    // the library-vector restore and chain-cache clear.
    group.bench_function("arena_cycle_preload", |b| {
        let arena = arena();
        arena.prewarm(1);
        let interceptor = lfi_controller::Injector::new(lfi_scenario::Plan::new().entry(lfi_scenario::PlanEntry {
            function: "read".into(),
            trigger: lfi_scenario::Trigger::on_call(1),
            action: lfi_scenario::FaultAction::return_value(-1).with_errno(9),
        }))
        .synthesize_interceptor();
        b.iter(|| {
            let mut process = arena.checkout();
            process.preload(interceptor.clone());
            black_box(process.call("read", &[3, 0, 8]).unwrap())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_case_setup);
criterion_main!(benches);
