//! Overhead of the streaming campaign session on the dispatch corpus:
//!
//! * `inline_loop`    — the pre-session baseline: a hand-rolled serial loop
//!   (setup + interceptor + workload per case) with no threads, channel or
//!   events — what the old blocking `Campaign::run` compiled down to;
//! * `blocking_run`   — `Campaign::run`, now a thin wrapper that collects
//!   the event stream into a report;
//! * `streaming_report` — `Campaign::start(...).into_report()`, the same
//!   path spelled out;
//! * `streaming_drain` — `Campaign::start` with the events consumed one by
//!   one on the session side (what an observer UI or the explorer does).
//!
//! The acceptance bar for the session redesign is that the streaming paths
//! stay within a few percent of the blocking baseline: the per-case cost
//! (process setup, interceptor synthesis, a few hundred dispatched calls)
//! must dwarf the channel and worker-handoff overhead.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lfi_controller::{Campaign, CaseEvent, FnWorkload, Injector, TestCase};
use lfi_runtime::{ExitStatus, NativeLibrary, Process, ProcessArena};
use lfi_scenario::{FaultAction, Plan, PlanEntry, Trigger};

/// Cases per campaign and dispatched calls per case: enough dispatch work
/// that the numbers reflect campaign plumbing amortized over real cases.
const CASES: usize = 24;
const CALLS_PER_CASE: i64 = 400;

fn libc() -> NativeLibrary {
    NativeLibrary::builder("libc.so.6").function("read", |ctx| ctx.arg(2)).build()
}

fn setup() -> Process {
    let mut process = Process::new();
    process.load(libc());
    process
}

fn workload(process: &mut Process) -> ExitStatus {
    let mut failures = 0;
    for i in 0..CALLS_PER_CASE {
        if process.call("read", &[3, 0, i & 0xff]).unwrap_or(-1) < 0 {
            failures += 1;
        }
    }
    ExitStatus::Exited(failures.min(1))
}

/// One fault per case, each on a distinct call ordinal of the dispatch
/// corpus function.
fn cases() -> Vec<TestCase> {
    (0..CASES)
        .map(|i| {
            TestCase::new(
                format!("stream-{i:02}"),
                Plan::new().entry(PlanEntry {
                    function: "read".into(),
                    trigger: Trigger::on_call(1 + (i as u64 % 16)),
                    action: FaultAction::return_value(-1).with_errno(5),
                }),
            )
        })
        .collect()
}

fn bench_campaign_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_stream");
    group.sample_size(10);

    group.bench_function("inline_loop", |b| {
        b.iter(|| {
            let mut outcomes = 0usize;
            for case in cases() {
                let mut process = setup();
                let injector = Injector::new(case.plan.clone());
                process.preload(injector.synthesize_interceptor());
                let status = workload(&mut process);
                let log = injector.log();
                black_box(log.replay_plan());
                black_box(log);
                black_box(status);
                outcomes += 1;
            }
            black_box(outcomes)
        })
    });

    group.bench_function("inline_loop_arena", |b| {
        // The same serial loop with per-case setup drawn from a process
        // arena: the pooled process is restored (not rebuilt) between cases,
        // and the plan's single deterministic entry compiles to the
        // specialized stub — the post-PR per-case floor.
        let arena = ProcessArena::new(setup);
        arena.prewarm(1);
        b.iter(|| {
            let mut outcomes = 0usize;
            for case in cases() {
                let mut process = arena.checkout();
                let injector = Injector::new(case.plan.clone());
                process.preload(injector.synthesize_interceptor());
                let status = workload(&mut process);
                let log = injector.log();
                black_box(log.replay_plan());
                black_box(log);
                black_box(status);
                outcomes += 1;
            }
            black_box(outcomes)
        })
    });

    group.bench_function("blocking_run", |b| {
        b.iter(|| {
            let report = Campaign::new().cases(cases()).run(setup, workload);
            assert_eq!(report.outcomes.len(), CASES);
            black_box(report.total_injections())
        })
    });

    group.bench_function("streaming_report", |b| {
        b.iter(|| {
            let report = Campaign::new()
                .cases(cases())
                .start(FnWorkload::new("dispatch-corpus", setup, workload))
                .into_report();
            assert_eq!(report.outcomes.len(), CASES);
            black_box(report.total_injections())
        })
    });

    group.bench_function("streaming_drain", |b| {
        b.iter(|| {
            let run = Campaign::new().cases(cases()).start(FnWorkload::new("dispatch-corpus", setup, workload));
            let mut outcomes = 0usize;
            for event in run {
                if matches!(event, CaseEvent::Outcome { .. }) {
                    outcomes += 1;
                }
            }
            assert_eq!(outcomes, CASES);
            black_box(outcomes)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_campaign_stream);
criterion_main!(benches);
