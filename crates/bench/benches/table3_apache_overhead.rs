//! Table 3 bench: Apache + AB completion time as a function of the number of
//! installed triggers, for the static-HTML and PHP workloads.  The Criterion
//! series *is* the table: one benchmark id per (workload, trigger count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lfi_apps::apache::ab::run_ab;
use lfi_apps::apache::{most_called_functions, ApacheServer, RequestKind};
use lfi_apps::{base_process, new_world};
use lfi_controller::Injector;
use lfi_core::experiments::{table3_apache_overhead, TRIGGER_COUNTS};
use lfi_corpus::{build_kernel, build_libc_scaled};
use lfi_isa::Platform;
use lfi_profiler::{Profiler, ProfilerOptions};
use lfi_scenario::generator::{ScenarioGenerator, TriggerLoad};

fn bench_table3(c: &mut Criterion) {
    let platform = Platform::LinuxX86;
    let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
    profiler.add_library(build_libc_scaled(platform, 80).compiled.object);
    profiler.add_library(lfi_corpus::libc::build_apr_scaled(platform, 40).compiled.object);
    profiler.add_library(lfi_corpus::libc::build_aprutil_scaled(platform, 30).compiled.object);
    profiler.set_kernel(build_kernel(platform));
    let profiles: Vec<_> = profiler.profile_all().unwrap().into_iter().map(|r| r.profile).collect();

    let mut group = c.benchmark_group("table3_apache_overhead");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for (label, kind) in [("static_html", RequestKind::StaticHtml), ("php", RequestKind::Php)] {
        for &triggers in TRIGGER_COUNTS {
            group.bench_with_input(BenchmarkId::new(label, triggers), &(kind, triggers), |b, &(kind, triggers)| {
                b.iter(|| {
                    let world = new_world();
                    let mut process = base_process(&world, true);
                    if triggers > 0 {
                        let top = most_called_functions(triggers.min(300));
                        let plan = TriggerLoad::new(top, triggers, 2009).generate(&profiles);
                        let injector = Injector::new(plan);
                        process.preload(injector.synthesize_interceptor());
                    }
                    let mut server = ApacheServer::start(&mut process);
                    run_ab(&mut server, &mut process, kind, 100)
                })
            });
        }
    }
    group.finish();

    let table = table3_apache_overhead(1000, 2009);
    println!("{}", table.render());
    println!("{}", lfi_bench::summarize_overhead(&table));
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
