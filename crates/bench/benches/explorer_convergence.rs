//! Convergence of the coverage-guided explorer on the libc-120 corpus with
//! a seeded crash cell ((close, EIO, 2nd call)):
//!
//! * `explore-to-crash`   — probe + prune + prioritized batches until the
//!   crash cluster appears (the `lfi-explore` loop end to end);
//! * `exhaustive-to-crash` — the non-adaptive baseline: the exhaustive
//!   campaign with `stop_on_first_crash`, which grinds through every
//!   unreachable export's cases on the way;
//! * `store-roundtrip`    — serializing + reparsing the mid-run
//!   `ExplorationStore` (the kill/resume tax).
//!
//! The explorer also asserts its acceptance bar here: the crash is found
//! within a quarter of the exhaustive campaign's cases.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lfi_core::Lfi;
use lfi_corpus::{build_kernel, build_libc_scaled};
use lfi_isa::Platform;
use lfi_profiler::ProfilerOptions;
use lfi_runtime::{ExitStatus, NativeLibrary, Process, Signal};
use lfi_scenario::Exhaustive;

fn lfi_over_libc() -> Lfi {
    let mut lfi = Lfi::with_options(ProfilerOptions::with_heuristics());
    lfi.add_library(build_libc_scaled(Platform::LinuxX86, 120).compiled.object);
    lfi.set_kernel(build_kernel(Platform::LinuxX86));
    lfi
}

fn setup() -> Process {
    let mut process = Process::new();
    process.load(
        NativeLibrary::builder("libc.so.6")
            .function("open", |_| 3)
            .function("write", |ctx| ctx.arg(2))
            .function("fsync", |_| 0)
            .function("close", |_| 0)
            .build(),
    );
    process
}

fn workload(process: &mut Process) -> ExitStatus {
    if process.call("open", &[0, 0, 0]).unwrap_or(-1) < 0 {
        return ExitStatus::Exited(2);
    }
    for _ in 0..4 {
        if process.call("write", &[3, 0, 64]).unwrap_or(-1) < 0 {
            return ExitStatus::Exited(1);
        }
    }
    if process.call("fsync", &[3]).unwrap_or(-1) < 0 {
        return ExitStatus::Exited(1);
    }
    for _ in 0..2 {
        if process.call("close", &[3]).unwrap_or(-1) < 0 {
            if process.state().errno() == 5 {
                return ExitStatus::Crashed(Signal::Segv);
            }
            return ExitStatus::Exited(1);
        }
    }
    ExitStatus::Exited(0)
}

fn explore_to_crash(lfi: &Lfi) -> u64 {
    let mut explorer = lfi
        .explore(&Exhaustive, &["libc.so.6"])
        .unwrap()
        .seed(2009)
        .batch_size(12)
        .halt_on_crash(true);
    explorer.run(setup, workload);
    assert!(explorer.crash_found());
    explorer.cases_executed()
}

fn bench_explorer_convergence(c: &mut Criterion) {
    let lfi = lfi_over_libc();
    // Warm the profile store so every iteration measures exploration, not
    // profiling.
    lfi.profile("libc.so.6").unwrap();
    let exhaustive_cases = lfi.campaign(&Exhaustive, &["libc.so.6"]).unwrap().case_list().len();

    let mut group = c.benchmark_group("explorer_convergence");
    group.sample_size(10);

    group.bench_function("explore-to-crash", |b| b.iter(|| black_box(explore_to_crash(&lfi))));

    group.bench_function("exhaustive-to-crash", |b| {
        b.iter(|| {
            let campaign = lfi.campaign(&Exhaustive, &["libc.so.6"]).unwrap();
            let report = campaign
                .policy(lfi_controller::ExecutionPolicy::run_all().stop_on_first_crash())
                .run(setup, workload);
            assert!(report.crashes().count() > 0, "the exhaustive sweep finds the crash too");
            black_box(report.outcomes.len())
        })
    });

    // A mid-run store (two batches in) for the serialization tax.
    let mut killed = lfi.explore(&Exhaustive, &["libc.so.6"]).unwrap().seed(2009).batch_size(12);
    for _ in 0..2 {
        killed.step(setup, workload).unwrap();
    }
    let store = killed.store();
    group.bench_function("store-roundtrip", |b| {
        b.iter(|| {
            let xml = store.to_xml();
            black_box(lfi_explore::ExplorationStore::from_xml(&xml).unwrap())
        })
    });

    group.finish();

    // The acceptance bar behind the numbers: the adaptive path reaches the
    // crash within a quarter of the exhaustive campaign's case count.
    let adaptive_cases = explore_to_crash(&lfi);
    assert!(
        adaptive_cases as usize * 4 <= exhaustive_cases,
        "explorer took {adaptive_cases} cases, exhaustive has {exhaustive_cases}"
    );
    println!("explorer: crash in {adaptive_cases} cases vs {exhaustive_cases} exhaustive cases");
}

criterion_group!(benches, bench_explorer_convergence);
criterion_main!(benches);
