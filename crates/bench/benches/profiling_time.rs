//! §6.2 efficiency bench: profiling time as a function of library size, from
//! the libdmx-sized library to the libxml2-sized one and the full libc.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lfi_core::experiments::profiling_efficiency;
use lfi_corpus::named::{build_table2_library, libdmx_entry, libxml2_linux_entry, TABLE2};
use lfi_corpus::{build_kernel, build_libc_scaled};
use lfi_isa::Platform;
use lfi_profiler::Profiler;

fn bench_profiling_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiling_time");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));

    // Small, medium and large named libraries.
    let libldap_entry = *TABLE2.iter().find(|e| e.name == "libldap").unwrap();
    for entry in [libdmx_entry(), libldap_entry, libxml2_linux_entry()] {
        let library = build_table2_library(&entry, 2009);
        let label = format!("{}-{}kb", entry.name, entry.code_kb);
        group.bench_with_input(BenchmarkId::from_parameter(label), &library, |b, library| {
            b.iter(|| {
                let mut profiler = Profiler::new();
                profiler.add_library(library.compiled.object.clone());
                profiler.profile_library(library.name()).unwrap()
            })
        });
    }

    // Full-scale libc (1535 exports) with the kernel image attached.
    let libc = build_libc_scaled(Platform::LinuxX86, lfi_corpus::libc::LIBC_EXPORTS);
    let kernel = build_kernel(Platform::LinuxX86);
    group.bench_function("libc-1535-exports", |b| {
        b.iter(|| {
            let mut profiler = Profiler::new();
            profiler.add_library(libc.compiled.object.clone());
            profiler.set_kernel(kernel.clone());
            profiler.profile_library("libc.so.6").unwrap()
        })
    });
    group.finish();

    println!("{}", profiling_efficiency(2009).render());
}

criterion_group!(benches, bench_profiling_time);
criterion_main!(benches);
