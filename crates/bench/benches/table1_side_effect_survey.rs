//! Table 1 bench: time the error-detail-channel survey (corpus generation +
//! profiling + classification) and print the resulting table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lfi_core::experiments::table1_survey;
use lfi_corpus::survey::SurveyConfig;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_side_effect_survey");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for functions_per_library in [100usize, 400] {
        let config = SurveyConfig { libraries: 2, functions_per_library, seed: 2009 };
        group.bench_with_input(BenchmarkId::from_parameter(config.total_functions()), &config, |b, config| {
            b.iter(|| table1_survey(*config))
        });
    }
    group.finish();

    // Print the table once so bench logs double as experiment output.
    let result = table1_survey(SurveyConfig { libraries: 4, functions_per_library: 500, seed: 2009 });
    println!("{}", result.render());
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
