//! Persistence at survey scale: the binary store format against the XML
//! interchange baseline over a 10,000-function corpus
//! (`SurveyConfig::scaled(10_000)` through the fast profile generator).
//!
//! * `snapshot_write` — full binary exploration snapshot to disk;
//! * `binary_load`    — format-sniffing load of that snapshot;
//! * `xml_write`      — the same store serialized as XML (baseline);
//! * `xml_load`       — format-sniffing load of the XML file (baseline);
//! * `delta_append`   — one O(delta) journal append (a 32-cell batch);
//! * `fold_delta`     — the typed append: frame write + in-memory fold;
//! * `compact`        — rewriting the journal as one fresh snapshot.
//!
//! CI gates the two tentpole ratios: `binary_load * 5 <= xml_load` (binary
//! decode beats XML parse by 5x) and `delta_append * 10 <= snapshot_write`
//! (incremental checkpoints are at least 10x cheaper than full snapshots).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lfi_corpus::{survey_profiles, SurveyConfig};
use lfi_explore::{ExplorationDelta, ExplorationStore, FrontierCell, FunctionCoverage};
use lfi_intern::Symbol;
use lfi_scenario::FaultCell;
use lfi_store::{load_exploration, save_exploration, ExplorationJournal, Journal, Record};

const CORPUS_FUNCTIONS: usize = 10_000;
const DELTA_BATCH: usize = 32;

/// An exploration store shaped like a campaign over the scaled survey
/// corpus: one frontier cell per profiled function, coverage entries for a
/// quarter of them.
fn survey_exploration_store() -> ExplorationStore {
    let profiles = survey_profiles(SurveyConfig::scaled(CORPUS_FUNCTIONS));
    let mut frontier = Vec::new();
    let mut coverage = Vec::new();
    for profile in &profiles {
        for (index, function) in profile.functions.iter().enumerate() {
            let symbol = Symbol::intern(&function.name);
            let retval = function.error_returns.first().map_or(-1, |e| e.retval);
            frontier.push(FrontierCell {
                cell: FaultCell { function: symbol, call_ordinal: 1, retval, errno: Some(5) },
                priority: (index % 7) as i32 - 3,
            });
            if index % 4 == 0 {
                coverage.push((
                    symbol,
                    FunctionCoverage {
                        observed_calls: 1 + index as u64 % 9,
                        triggered: [(1u64, retval, Some(5i64))].into_iter().collect(),
                    },
                ));
            }
        }
    }
    let universe = frontier.len();
    ExplorationStore {
        seed: 2009,
        batch_size: DELTA_BATCH,
        parallelism: 4,
        halt_on_crash: false,
        case_budget: None,
        injection_budget: None,
        time_budget_ms: None,
        universe,
        batch_index: 12,
        rng_draws: 4096,
        probe_done: true,
        crash_found: false,
        cases_executed: 3000,
        injections_performed: 2500,
        elapsed_ms: 90_000,
        frontier,
        executed: Vec::new(),
        unreached: Vec::new(),
        pruned_functions: Vec::new(),
        coverage,
        clusters: Vec::new(),
    }
}

/// One batch's delta against the big store: `DELTA_BATCH` cells leave the
/// frontier and land in `executed`, one coverage entry is touched.  Deltas
/// carry absolute values, so re-applying the same delta each iteration is
/// idempotent — exactly what the append benchmark wants.
fn one_batch_delta(store: &ExplorationStore) -> ExplorationDelta {
    let batch: Vec<FaultCell> = store.frontier.iter().take(DELTA_BATCH).map(|f| f.cell).collect();
    let mut executed = batch.clone();
    executed.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    ExplorationDelta {
        batch_index: store.batch_index + 1,
        rng_draws: store.rng_draws + 64,
        probe_done: true,
        crash_found: false,
        cases_executed: store.cases_executed + DELTA_BATCH as u64,
        injections_performed: store.injections_performed + DELTA_BATCH as u64,
        elapsed_ms: store.elapsed_ms + 450,
        frontier_remove: batch,
        frontier_upsert: Vec::new(),
        executed,
        unreached: Vec::new(),
        pruned_functions: Vec::new(),
        coverage: store.coverage.first().cloned().into_iter().collect(),
        clusters: Vec::new(),
    }
}

fn bench_store_scale(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("lfi-store-scale-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let store = survey_exploration_store();
    assert!(store.universe >= CORPUS_FUNCTIONS * 7 / 10, "scaled survey keeps its non-void majority");
    let delta = one_batch_delta(&store);

    let binary_path = dir.join("survey.lfis");
    let xml_path = dir.join("survey.xml");
    save_exploration(&binary_path, &store).unwrap();
    std::fs::write(&xml_path, store.to_xml()).unwrap();

    let mut group = c.benchmark_group("store_scale");
    group.sample_size(10);

    group.bench_function("snapshot_write", |b| {
        let path = dir.join("write.lfis");
        b.iter(|| {
            save_exploration(&path, black_box(&store)).unwrap();
            black_box(())
        })
    });

    group.bench_function("binary_load", |b| {
        b.iter(|| {
            let loaded = load_exploration(black_box(&binary_path)).unwrap();
            assert_eq!(loaded.universe, store.universe);
            black_box(loaded)
        })
    });

    group.bench_function("xml_write", |b| {
        let path = dir.join("write.xml");
        b.iter(|| {
            std::fs::write(&path, black_box(&store).to_xml()).unwrap();
            black_box(())
        })
    });

    group.bench_function("xml_load", |b| {
        b.iter(|| {
            let loaded = load_exploration(black_box(&xml_path)).unwrap();
            assert_eq!(loaded.universe, store.universe);
            black_box(loaded)
        })
    });

    group.bench_function("delta_append", |b| {
        let path = dir.join("append.lfij");
        // The untyped journal layer: appending one framed delta record is
        // the pure O(delta) write-ahead cost the CI ratio gates against the
        // full snapshot write.  (The typed `ExplorationJournal` adds the
        // in-memory fold on top — covered by `fold_delta` below.)
        let mut journal = Journal::create(&path, &Record::ExplorationSnapshot(store.clone())).unwrap();
        let record = Record::ExplorationDelta(delta.clone());
        b.iter(|| {
            journal.append(black_box(&record)).unwrap();
            black_box(())
        })
    });

    group.bench_function("fold_delta", |b| {
        // The typed journal's full append: frame write plus folding the
        // delta into the in-memory state (idempotent, so re-appending the
        // same batch each iteration is well-defined).
        let path = dir.join("fold.lfij");
        let mut journal = ExplorationJournal::create(&path, &store).unwrap().compact_every(u64::MAX);
        b.iter(|| {
            journal.append_delta(black_box(&delta)).unwrap();
            black_box(())
        })
    });

    group.bench_function("compact", |b| {
        let path = dir.join("compact.lfij");
        let mut journal = ExplorationJournal::create(&path, &store).unwrap().compact_every(u64::MAX);
        journal.append_delta(&delta).unwrap();
        b.iter(|| {
            journal.compact().unwrap();
            black_box(())
        })
    });

    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_store_scale);
criterion_main!(benches);
