//! Table 4 bench: MySQL + SysBench-OLTP throughput as a function of the
//! number of installed triggers, for read-only and read/write transactions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lfi_apps::mysql::sysbench::{run_oltp, OltpMode};
use lfi_apps::mysql::MysqlServer;
use lfi_apps::{base_process, new_world};
use lfi_controller::Injector;
use lfi_core::experiments::{table4_mysql_overhead, TRIGGER_COUNTS};
use lfi_corpus::{build_kernel, build_libc_scaled};
use lfi_isa::Platform;
use lfi_profiler::{Profiler, ProfilerOptions};
use lfi_scenario::generator::{ScenarioGenerator, TriggerLoad};

fn bench_table4(c: &mut Criterion) {
    let platform = Platform::LinuxX86;
    let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
    profiler.add_library(build_libc_scaled(platform, 80).compiled.object);
    profiler.set_kernel(build_kernel(platform));
    let profiles = vec![profiler.profile_library("libc.so.6").unwrap().profile];
    let top = ["send", "malloc", "free", "write", "read", "recv", "fsync", "open", "close", "socket"];

    let mut group = c.benchmark_group("table4_mysql_overhead");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for (label, mode) in [("read_only", OltpMode::ReadOnly), ("read_write", OltpMode::ReadWrite)] {
        for &triggers in TRIGGER_COUNTS {
            group.bench_with_input(BenchmarkId::new(label, triggers), &(mode, triggers), |b, &(mode, triggers)| {
                b.iter(|| {
                    let world = new_world();
                    let mut process = base_process(&world, false);
                    if triggers > 0 {
                        let plan = TriggerLoad::new(top.iter().copied(), triggers, 2009).generate(&profiles);
                        let injector = Injector::new(plan);
                        process.preload(injector.synthesize_interceptor());
                    }
                    let mut server = MysqlServer::start(&mut process);
                    for i in 0..100 {
                        let _ = server.insert(&mut process, i, true);
                    }
                    run_oltp(&mut server, &mut process, mode, 50)
                })
            });
        }
    }
    group.finish();

    let table = table4_mysql_overhead(1000, 2009);
    println!("{}", table.render());
    println!("{}", lfi_bench::summarize_overhead(&table));
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
