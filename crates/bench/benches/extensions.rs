//! Benches for the reproduction's extension features: the documentation
//! parser and combined profiles (§6.3 extension), the argument-constraint
//! inference (§3.1 extension), and the cost of dispatching intercepted calls
//! through function pointers versus directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lfi_controller::Injector;
use lfi_core::experiments::{combined_accuracy, heuristics_ablation};
use lfi_corpus::{build_kernel, build_libc_scaled};
use lfi_docs::{CombinedProfile, DocParser, DocumentationSet, StylePolicy};
use lfi_isa::Platform;
use lfi_profiler::{Profiler, ProfilerOptions};
use lfi_runtime::{NativeLibrary, Process};
use lfi_scenario::{FaultAction, Plan, PlanEntry, Trigger};

fn libc_profiler(exports: usize) -> (Profiler, lfi_corpus::CorpusLibrary) {
    let platform = Platform::LinuxX86;
    let library = build_libc_scaled(platform, exports);
    let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
    profiler.add_library(library.compiled.object.clone());
    profiler.set_kernel(build_kernel(platform));
    (profiler, library)
}

fn bench_doc_pipeline(c: &mut Criterion) {
    let (profiler, library) = libc_profiler(400);
    let profile = profiler.profile_library("libc.so.6").unwrap().profile;
    let manual = DocumentationSet::from_error_map("libc.so.6", &library.documentation, StylePolicy::realistic(), 2009);
    let rendered = manual.render();

    let mut group = c.benchmark_group("doc_pipeline");
    group.sample_size(20);
    group.bench_function("render_manual_400_functions", |b| b.iter(|| manual.render()));
    group.bench_function("parse_manual_400_functions", |b| {
        b.iter(|| DocParser::new().parse_set("libc.so.6", &rendered).unwrap())
    });
    let mut parsed = DocParser::new().parse_set("libc.so.6", &rendered).unwrap();
    parsed.resolve_cross_references().unwrap();
    group.bench_function("combine_static_and_docs", |b| b.iter(|| CombinedProfile::combine(&profile, &parsed)));
    group.finish();
}

fn bench_arg_constraints(c: &mut Criterion) {
    let mut group = c.benchmark_group("arg_constraints");
    group.sample_size(20);
    for exports in [100usize, 400] {
        let (profiler, _) = libc_profiler(exports);
        group.bench_with_input(BenchmarkId::from_parameter(exports), &profiler, |b, profiler| {
            b.iter(|| profiler.argument_constraints("libc.so.6").unwrap())
        });
    }
    group.finish();
}

fn bench_indirect_dispatch(c: &mut Criterion) {
    // Compare the per-call cost of direct vs function-pointer dispatch under
    // an interceptor that always passes through.
    let plan = Plan::new().entry(PlanEntry {
        function: "read".into(),
        trigger: Trigger::on_call(u64::MAX),
        action: FaultAction::return_value(-1),
    });
    let build_process = || {
        let mut process = Process::new();
        process.load(NativeLibrary::builder("libc.so.6").function("read", |ctx| ctx.arg(2)).build());
        let injector = Injector::new(plan.clone());
        process.preload(injector.synthesize_interceptor());
        process
    };

    let mut group = c.benchmark_group("intercepted_dispatch");
    group.sample_size(30);
    group.bench_function("direct_call", |b| {
        let mut process = build_process();
        b.iter(|| process.call("read", &[3, 0, 64]).unwrap())
    });
    group.bench_function("function_pointer_call", |b| {
        let mut process = build_process();
        let ptr = process.fnptr("read").unwrap();
        b.iter(|| process.call_ptr(ptr, &[3, 0, 64]).unwrap())
    });
    group.finish();
}

fn report_tables(_c: &mut Criterion) {
    // Print the ablation and combined-accuracy tables alongside the timing
    // numbers so `cargo bench` output carries the full story.
    println!("{}", heuristics_ablation(2009).render());
    println!("{}", combined_accuracy(2009).render());
}

criterion_group!(benches, bench_doc_pipeline, bench_arg_constraints, bench_indirect_dispatch, report_tables);
criterion_main!(benches);
