//! Reproduce the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [experiment ...]
//!
//! experiments:
//!   table1          error-detail channel survey (Table 1)
//!   table2          profiler accuracy vs documentation (Table 2)
//!   combined-accuracy  static+documentation combined accuracy (§6.3 extension)
//!   arg-constraints    argument-dependent error values (§3.1 extension)
//!   heuristics-ablation  the §3.1 filtering heuristics on/off
//!   table3          Apache + AB overhead (Table 3)
//!   table4          MySQL + SysBench OLTP overhead (Table 4)
//!   efficiency      profiling time vs library size (§6.2)
//!   pidgin          the Pidgin bug hunt and replay (§6.1)
//!   mysql-coverage  MySQL test-suite coverage improvement (§6.1)
//!   libpcre         accuracy vs execution ground truth (§6.3)
//!   indirect-stats  indirect branch/call statistics (§3.1)
//!   doc-mismatch    documentation mismatches (§3.1, §3.3)
//!   figure2         CFG of an exported function, in DOT (Figure 2)
//!   all             everything above (default)
//! ```

use std::env;

use lfi_core::experiments;
use lfi_corpus::survey::SurveyConfig;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args.iter().map(String::as_str).filter(|a| *a != "--quick").collect();
    let run_all = selected.is_empty() || selected.contains(&"all");
    let wants = |name: &str| run_all || selected.contains(&name);
    let seed = 2009u64;

    println!("LFI reproduction — experiment harness");
    println!("=====================================\n");

    if wants("table1") {
        let config = if quick {
            SurveyConfig { libraries: 4, functions_per_library: 300, seed }
        } else {
            SurveyConfig::full()
        };
        println!("{}", experiments::table1_survey(config).render());
    }

    if wants("table2") {
        println!("{}", experiments::table2_accuracy(seed).render());
    }

    if wants("libpcre") {
        let report = experiments::libpcre_accuracy(7);
        println!("libpcre accuracy vs manual/execution ground truth (§6.3): {report}  [paper: 84% (52 TPs, 10 FNs, 0 FPs)]\n");
    }

    if wants("combined-accuracy") {
        println!("{}", experiments::combined_accuracy(seed).render());
    }

    if wants("arg-constraints") {
        let exports = if quick { 120 } else { 400 };
        println!("{}", experiments::argument_dependence(exports).render());
    }

    if wants("heuristics-ablation") {
        println!("{}", experiments::heuristics_ablation(seed).render());
    }

    if wants("table3") {
        let requests = if quick { 200 } else { 1000 };
        let result = experiments::table3_apache_overhead(requests, seed);
        println!("{}", result.render());
        println!("worst-case overhead: {:.1}%\n", result.max_overhead_percent());
    }

    if wants("table4") {
        let transactions = if quick { 200 } else { 1000 };
        let result = experiments::table4_mysql_overhead(transactions, seed);
        println!("{}", result.render());
        println!("worst-case overhead: {:.1}%\n", result.max_overhead_percent());
    }

    if wants("efficiency") {
        println!("{}", experiments::profiling_efficiency(seed).render());
    }

    if wants("pidgin") {
        println!("{}", experiments::pidgin_bug_hunt(200, seed).render());
    }

    if wants("mysql-coverage") {
        let cases = if quick { 200 } else { 400 };
        println!("{}", experiments::mysql_coverage(cases, seed).render());
    }

    if wants("indirect-stats") {
        let config = if quick {
            SurveyConfig { libraries: 4, functions_per_library: 300, seed }
        } else {
            SurveyConfig::full()
        };
        let stats = experiments::indirect_statistics(config);
        println!("{}", experiments::render_indirect_statistics(&stats));
    }

    if wants("doc-mismatch") {
        println!("{}", experiments::render_doc_mismatches(&experiments::doc_mismatches(seed)));
    }

    if wants("figure2") {
        println!(
            "Figure 2: control flow graph of an exported library function (DOT)\n{}",
            experiments::figure2_cfg_dot()
        );
    }
}
