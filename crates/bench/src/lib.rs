//! # lfi-bench — benchmark harness and experiment reproduction binary
//!
//! This crate hosts:
//!
//! * the Criterion benchmarks (`benches/`), one per table or figure of the
//!   paper's evaluation plus an ablation micro-benchmark of trigger
//!   evaluation;
//! * the `repro` binary (`src/bin/repro.rs`), which prints every table and
//!   figure in the paper's layout; its output is recorded in EXPERIMENTS.md.
//!
//! The heavy lifting lives in [`lfi_core::experiments`]; this crate only adds
//! timing harnesses and command-line plumbing.

#![forbid(unsafe_code)]

/// Shared helper: a compact one-line summary of an overhead table used by the
/// benches' console output.
pub fn summarize_overhead(result: &lfi_core::experiments::OverheadResult) -> String {
    format!("{} — worst-case overhead {:.1}%", result.title, result.max_overhead_percent())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_the_title() {
        let result = lfi_core::experiments::OverheadResult {
            title: "Table X".into(),
            metric: "seconds".into(),
            series: vec![(
                "w".into(),
                vec![
                    lfi_core::experiments::OverheadRow { triggers: 0, value: 1.0 },
                    lfi_core::experiments::OverheadRow { triggers: 10, value: 1.1 },
                ],
            )],
        };
        let summary = summarize_overhead(&result);
        assert!(summary.contains("Table X"));
        assert!(summary.contains("10.0%"));
    }
}
