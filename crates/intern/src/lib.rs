//! # lfi-intern — the shared symbol table behind the interception fast path
//!
//! The paper's §6.4 requirement is that interception overhead stays
//! negligible even for the most-called libc functions.  Every layer of this
//! workspace that used to key on `String` function names (library dispatch,
//! the process call stack, injector trigger tables, TLS/global side-effect
//! slots) now keys on a [`Symbol`]: a small copyable id handed out by a
//! [`SymbolTable`].  Names are resolved to ids once, at setup time; the
//! per-call paths compare and index integers only.
//!
//! ```
//! use lfi_intern::Symbol;
//!
//! let read = Symbol::intern("read");
//! assert_eq!(read, Symbol::intern("read")); // same name, same id
//! assert_eq!(read.as_str(), "read");
//! assert_eq!(read, "read"); // symbols compare against &str for convenience
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned function or module name.
///
/// A `Symbol` is a dense `u32` index into the [`SymbolTable`] that created
/// it: `Copy`, 4 bytes, and comparable/hashable without touching the
/// underlying string.  Two symbols from the same table are equal exactly
/// when their names are equal.
///
/// # The resolve-once-at-setup contract
///
/// Symbols exist so that per-call code never allocates or hashes strings.
/// Resolve names to symbols exactly once, at setup time — when a library is
/// built, a plan is compiled, an interceptor is synthesized — and pass the
/// `Symbol` (or a table slot derived from [`Symbol::index`]) to the hot
/// path.  [`Symbol::intern`] hashes its argument, so calling it inside a
/// dispatch loop reintroduces the cost this type removes; if you find an
/// `intern` in per-call code, hoist it to setup.
///
/// The convenience constructors and accessors on `Symbol` itself
/// ([`Symbol::intern`], [`Symbol::lookup`], [`Symbol::as_str`]) all use the
/// process-wide table from [`SymbolTable::global`], which is what the whole
/// workspace shares.  **They are only meaningful for symbols minted by that
/// global table**: a `Symbol` is a bare index, so resolving one that came
/// from a standalone [`SymbolTable`] against the global table returns
/// whatever name happens to sit at that index there (or panics when the
/// global table is shorter).  Symbols from standalone tables must be
/// resolved with [`SymbolTable::resolve`] on the table that created them —
/// this also applies to `Display`, `Debug` and the `PartialEq<str>`
/// comparisons, which all go through the global table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Interns `name` in the [global table](SymbolTable::global), returning
    /// its id (allocating one if the name was never seen).  Setup-time only —
    /// see the resolve-once contract above.
    pub fn intern(name: &str) -> Symbol {
        SymbolTable::global().intern(name)
    }

    /// The id of `name` in the global table, or `None` if it was never
    /// interned.  Unlike [`Symbol::intern`] this never grows the table, so it
    /// is the right query for "is this name known at all?".
    pub fn lookup(name: &str) -> Option<Symbol> {
        SymbolTable::global().lookup(name)
    }

    /// The interned name (global table).
    pub fn as_str(self) -> &'static str {
        SymbolTable::global().resolve(self)
    }

    /// The dense 0-based index of this symbol, usable directly as a slot in
    /// `Vec`-backed per-symbol tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match SymbolTable::global().try_resolve(*self) {
            Some(name) => write!(f, "Symbol({:?})", name),
            None => write!(f, "Symbol(#{})", self.0),
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        SymbolTable::global().try_resolve(*self) == Some(other)
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        SymbolTable::global().try_resolve(*self) == Some(*other)
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        other == self
    }
}

impl From<&str> for Symbol {
    fn from(name: &str) -> Symbol {
        Symbol::intern(name)
    }
}

impl From<&String> for Symbol {
    fn from(name: &String) -> Symbol {
        Symbol::intern(name)
    }
}

#[derive(Default)]
struct Inner {
    ids: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

/// An append-only, thread-safe string interner.
///
/// Interned names live for the rest of the process (they are leaked into
/// `'static` storage), which is what makes [`SymbolTable::resolve`] free of
/// locks-held-while-borrowing complications: the table only ever grows, and
/// the set of distinct library/function names a fault-injection campaign
/// touches is small and bounded.
///
/// Most code wants the process-wide shared instance from
/// [`SymbolTable::global`]; standalone tables are for tests and tools that
/// need isolated id spaces.  Symbols are only meaningful together with the
/// table that created them.
#[derive(Default)]
pub struct SymbolTable {
    inner: RwLock<Inner>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide table every crate in this workspace shares.  Using
    /// one table means a `Symbol` minted by the scenario compiler can be
    /// compared directly against one minted by the runtime's library
    /// builder.
    pub fn global() -> &'static SymbolTable {
        static GLOBAL: OnceLock<SymbolTable> = OnceLock::new();
        GLOBAL.get_or_init(SymbolTable::new)
    }

    /// Interns `name`, returning its id (allocating one on first sight).
    pub fn intern(&self, name: &str) -> Symbol {
        if let Some(existing) = self.lookup(name) {
            return existing;
        }
        let mut inner = self.inner.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        // Double-check under the write lock: another thread may have interned
        // the same name between our read and write sections.
        if let Some(&id) = inner.ids.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(inner.names.len()).expect("symbol table overflow");
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        inner.names.push(leaked);
        inner.ids.insert(leaked, id);
        Symbol(id)
    }

    /// The id of `name`, or `None` if it was never interned.  Never grows
    /// the table.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        let inner = self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.ids.get(name).map(|&id| Symbol(id))
    }

    /// The name of `symbol`.
    ///
    /// # Panics
    ///
    /// Panics when `symbol` was not created by this table (a sign of mixing
    /// symbols across tables — use the [global](SymbolTable::global) table
    /// to avoid the hazard entirely).
    pub fn resolve(&self, symbol: Symbol) -> &'static str {
        self.try_resolve(symbol).expect("symbol not interned in this table")
    }

    /// The name of `symbol`, or `None` when this table did not create it.
    pub fn try_resolve(&self, symbol: Symbol) -> Option<&'static str> {
        let inner = self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.names.get(symbol.index()).copied()
    }

    /// Number of distinct names interned so far.
    pub fn len(&self) -> usize {
        let inner = self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.names.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SymbolTable").field("symbols", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let table = SymbolTable::new();
        let a = table.intern("read");
        let b = table.intern("write");
        let a2 = table.intern("read");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
        assert_eq!(table.resolve(a), "read");
        assert_eq!(table.resolve(b), "write");
        assert_eq!(table.lookup("read"), Some(a));
        assert_eq!(table.lookup("close"), None);
        assert_eq!(table.try_resolve(Symbol(99)), None);
    }

    #[test]
    fn global_table_backs_the_symbol_conveniences() {
        let read = Symbol::intern("lfi_intern_test_read");
        assert_eq!(Symbol::lookup("lfi_intern_test_read"), Some(read));
        assert_eq!(Symbol::lookup("lfi_intern_test_never_interned"), None);
        assert_eq!(read.as_str(), "lfi_intern_test_read");
        assert_eq!(read, "lfi_intern_test_read");
        assert_eq!("lfi_intern_test_read", read);
        assert_eq!(read.to_string(), "lfi_intern_test_read");
        assert!(format!("{read:?}").contains("lfi_intern_test_read"));
        assert_eq!(Symbol::from("lfi_intern_test_read"), read);
        assert_eq!(Symbol::from(&"lfi_intern_test_read".to_owned()), read);
    }

    #[test]
    fn concurrent_interning_agrees_on_ids() {
        let table = SymbolTable::new();
        let names: Vec<String> = (0..64).map(|i| format!("sym{i}")).collect();
        let per_thread: Vec<Vec<Symbol>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| names.iter().map(|n| table.intern(n)).collect::<Vec<_>>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for ids in &per_thread {
            assert_eq!(ids, &per_thread[0]);
        }
        assert_eq!(table.len(), 64);
    }
}
