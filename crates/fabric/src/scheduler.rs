//! The multi-tenant scheduler: per-job frontiers, deficit-weighted lease
//! issuing, crash-safe lease accounting, and the fold from acked cells to
//! checkpoints and reports.
//!
//! The scheduler is a plain synchronous state machine — every method runs
//! under the fabric's one mutex, takes `now` as a parameter (so expiry is
//! unit-testable without sleeping), and never blocks.  Workers live in
//! `fabric.rs`; everything they do against shared state funnels through
//! here as three calls: [`Scheduler::next_lease`], [`Scheduler::ack`],
//! [`Scheduler::requeue_panic`].

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lfi_controller::{CancelHandle, ProgressSnapshot, Workload};
use lfi_explore::{CrashCluster, ExplorationStore, FrontierCell, FunctionCoverage, OutcomeClass};
use lfi_intern::Symbol;
use lfi_scenario::FaultCell;

use crate::job::{JobCoverage, JobEvent, JobEventKind, JobId, JobReport, JobSnapshot, JobSpec, JobState};

/// How many events a job's ring buffer retains before the oldest fall off.
const EVENT_BUFFER_CAP: usize = 4096;

/// A worker that panics this many times on one job marks the job `Failed`.
const MAX_JOB_PANICS: u64 = 3;

/// The deterministic, cell-derived test-case name: stable across lease
/// re-issues, worker deaths and checkpoint restores, so reports and
/// clusters of an interrupted run are byte-identical to a clean one.
pub(crate) fn case_name(cell: &FaultCell) -> String {
    match cell.errno {
        Some(errno) => format!("{}-c{}-r{}-e{}", cell.function.as_str(), cell.call_ordinal, cell.retval, errno),
        None => format!("{}-c{}-r{}", cell.function.as_str(), cell.call_ordinal, cell.retval),
    }
}

/// One lease handed to a worker: a batch of cells plus everything needed to
/// run them without touching the scheduler.
pub(crate) struct LeaseAssignment {
    pub job: JobId,
    pub lease: u64,
    pub cells: Vec<FaultCell>,
    pub workload: Arc<dyn Workload>,
    pub seed: Option<u64>,
    pub halt_on_crash: bool,
}

/// What one executed (or partially executed) cell came back with.
#[derive(Debug, Clone)]
pub(crate) struct CellOutcome {
    pub outcome: OutcomeClass,
    pub injections: usize,
    pub triggered: bool,
    pub stack: Vec<Symbol>,
    pub case: String,
}

/// Everything a worker reports when acking a lease.
#[derive(Debug, Clone, Default)]
pub(crate) struct LeaseResult {
    pub events: Vec<JobEventKind>,
    pub outcomes: Vec<(FaultCell, CellOutcome)>,
    pub skipped: Vec<FaultCell>,
}

/// A lease that has been issued but not acked.
struct OutstandingLease {
    cells: Vec<FaultCell>,
    deadline: Instant,
    cancel: Option<CancelHandle>,
}

/// Sequence-numbered ring buffer of a job's events.
#[derive(Default)]
struct EventBuffer {
    base: u64,
    buf: VecDeque<JobEvent>,
}

impl EventBuffer {
    fn push(&mut self, kind: JobEventKind) {
        let seq = self.base + self.buf.len() as u64;
        self.buf.push_back(JobEvent { seq, kind });
        while self.buf.len() > EVENT_BUFFER_CAP {
            self.buf.pop_front();
            self.base += 1;
        }
    }

    /// Events with `seq >= from`, capped at `max`; returns the cursor to
    /// pass next time.
    fn read(&self, from: u64, max: usize) -> (u64, Vec<JobEvent>) {
        let start = from.max(self.base);
        let offset = (start - self.base) as usize;
        let events: Vec<JobEvent> = self.buf.iter().skip(offset).take(max).cloned().collect();
        let next = events.last().map_or(start, |event| event.seq + 1);
        (next, events)
    }
}

/// Already-executed state carried over from a restored
/// [`ExplorationStore`] checkpoint.
struct RestoredBase {
    executed: Vec<FaultCell>,
    executed_set: HashSet<FaultCell>,
    skipped: Vec<FaultCell>,
    coverage: Vec<(Symbol, FunctionCoverage)>,
    clusters: Vec<CrashCluster>,
    injections: u64,
    crashes: u64,
    failures: u64,
}

impl RestoredBase {
    fn from_store(store: &ExplorationStore) -> Self {
        let crashes = store.clusters.iter().filter(|c| c.is_crash()).map(|c| c.count).sum();
        let failures = store.clusters.iter().filter(|c| !c.is_crash()).map(|c| c.count).sum();
        Self {
            executed_set: store.executed.iter().copied().collect(),
            executed: store.executed.clone(),
            skipped: store.unreached.clone(),
            coverage: store.coverage.clone(),
            clusters: store.clusters.clone(),
            injections: store.injections_performed,
            crashes,
            failures,
        }
    }
}

/// One job's complete scheduler-side state.
struct JobRecord {
    spec: JobSpec,
    workload: Arc<dyn Workload>,
    state: JobState,
    cases_total: usize,
    frontier: VecDeque<FaultCell>,
    outstanding: HashMap<u64, OutstandingLease>,
    done: HashMap<FaultCell, CellOutcome>,
    skipped: HashSet<FaultCell>,
    base: Option<RestoredBase>,
    /// Cells leased cumulatively (re-issues count) — the `started` counter.
    started: u64,
    /// Deficit counter for weighted fairness; decremented when a lease's
    /// cells return unexecuted, so a crashed worker does not eat the job's
    /// fair share.
    issued: u64,
    requeued: u64,
    panics: u64,
    events: EventBuffer,
}

impl JobRecord {
    fn already_executed(&self, cell: &FaultCell) -> bool {
        self.done.contains_key(cell) || self.base.as_ref().is_some_and(|b| b.executed_set.contains(cell))
    }

    fn runnable(&self) -> bool {
        matches!(self.state, JobState::Queued | JobState::Running) && !self.frontier.is_empty()
    }

    /// The fairness key: cells issued normalized by weight, ties broken by
    /// job id at the call site.  Lower runs first.
    fn deficit(&self) -> u64 {
        self.issued.saturating_mul(1000) / u64::from(self.spec.weight.max(1))
    }

    fn set_state(&mut self, state: JobState) {
        if self.state != state {
            self.state = state;
            self.events.push(JobEventKind::State(state));
        }
    }

    /// Moves every pending frontier cell to the skipped set (cancel,
    /// crash-halt, repeated-panic failure).
    fn skip_frontier(&mut self) {
        while let Some(cell) = self.frontier.pop_front() {
            self.events.push(JobEventKind::Skipped { case: case_name(&cell) });
            self.skipped.insert(cell);
        }
    }

    /// Returns a lease's cells to the *front* of the frontier, preserving
    /// their order, and counts the requeue.
    fn requeue_cells(&mut self, cells: Vec<FaultCell>) {
        if cells.is_empty() {
            return;
        }
        self.requeued += cells.len() as u64;
        self.issued = self.issued.saturating_sub(cells.len() as u64);
        self.events.push(JobEventKind::Requeued { cells: cells.len() });
        for cell in cells.into_iter().rev() {
            self.frontier.push_front(cell);
        }
    }

    /// Done when nothing is pending and nothing is out on lease.
    fn maybe_complete(&mut self) {
        if self.state == JobState::Running && self.frontier.is_empty() && self.outstanding.is_empty() {
            self.set_state(JobState::Done);
        }
    }

    fn crashes(&self) -> u64 {
        let new = self.done.values().filter(|o| o.outcome.is_crash()).count() as u64;
        new + self.base.as_ref().map_or(0, |b| b.crashes)
    }

    fn failures(&self) -> u64 {
        let new = self.done.values().filter(|o| matches!(o.outcome, OutcomeClass::Failure(_))).count() as u64;
        new + self.base.as_ref().map_or(0, |b| b.failures)
    }

    fn executed_count(&self) -> usize {
        self.done.len() + self.base.as_ref().map_or(0, |b| b.executed.len())
    }

    fn injections(&self) -> u64 {
        let new: u64 = self.done.values().map(|o| o.injections as u64).sum();
        new + self.base.as_ref().map_or(0, |b| b.injections)
    }

    fn skipped_count(&self) -> usize {
        self.skipped.len() + self.base.as_ref().map_or(0, |b| b.skipped.len())
    }

    /// The done cells in process-independent order — the spine every
    /// deterministic fold (clusters, coverage, checkpoints) walks.
    fn done_cells_sorted(&self) -> Vec<FaultCell> {
        let mut cells: Vec<FaultCell> = self.done.keys().copied().collect();
        cells.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        cells
    }

    /// Base clusters plus the acked cells folded in sorted-cell order.
    fn merged_clusters(&self) -> Vec<CrashCluster> {
        let mut clusters: Vec<CrashCluster> = self.base.as_ref().map_or_else(Vec::new, |b| b.clusters.clone());
        for cell in self.done_cells_sorted() {
            let outcome = &self.done[&cell];
            if outcome.outcome == OutcomeClass::Success {
                continue;
            }
            match clusters
                .iter_mut()
                .find(|c| c.function == cell.function && c.stack == outcome.stack && c.outcome == outcome.outcome)
            {
                Some(cluster) => cluster.count += 1,
                None => clusters.push(CrashCluster {
                    function: cell.function,
                    stack: outcome.stack.clone(),
                    outcome: outcome.outcome,
                    count: 1,
                    example: cell,
                    example_case: outcome.case.clone(),
                }),
            }
        }
        clusters
    }

    /// Base coverage plus the triggered acked cells, sorted by function
    /// name.
    fn merged_coverage(&self) -> Vec<(Symbol, FunctionCoverage)> {
        let mut map: BTreeMap<&'static str, (Symbol, FunctionCoverage)> = BTreeMap::new();
        if let Some(base) = &self.base {
            for (symbol, function) in &base.coverage {
                map.insert(symbol.as_str(), (*symbol, function.clone()));
            }
        }
        for (cell, outcome) in &self.done {
            if !outcome.triggered {
                continue;
            }
            let entry = map
                .entry(cell.function.as_str())
                .or_insert_with(|| (cell.function, FunctionCoverage::default()));
            entry.1.triggered.insert((cell.call_ordinal, cell.retval, cell.errno));
        }
        map.into_values().collect()
    }
}

/// The fabric's job table and lease book-keeping — see the module docs.
pub(crate) struct Scheduler {
    jobs: BTreeMap<u64, JobRecord>,
    next_job: u64,
    next_lease: u64,
    lease_deadline: Duration,
    default_lease_batch: usize,
}

impl Scheduler {
    pub fn new(default_lease_batch: usize, lease_deadline: Duration) -> Self {
        Self {
            jobs: BTreeMap::new(),
            next_job: 1,
            next_lease: 1,
            lease_deadline,
            default_lease_batch: default_lease_batch.max(1),
        }
    }

    /// Admits a job: enumerates the plan's deterministic cells in
    /// process-independent order, truncates at `max_cases`, and queues it.
    pub fn submit(&mut self, spec: JobSpec, workload: Arc<dyn Workload>) -> JobId {
        let mut cells = spec.plan.compile().cells();
        cells.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        cells.dedup();
        if let Some(max) = spec.max_cases {
            cells.truncate(max);
        }
        self.admit(spec, workload, cells, None)
    }

    /// Admits a job resuming from a checkpoint: the store's frontier (in
    /// its scheduling order) is the pending work, its executed/coverage/
    /// cluster state is carried over as the base the new cells fold onto.
    pub fn submit_restored(&mut self, spec: JobSpec, workload: Arc<dyn Workload>, store: &ExplorationStore) -> JobId {
        let base = RestoredBase::from_store(store);
        let cells: Vec<FaultCell> = store
            .frontier
            .iter()
            .map(|entry| entry.cell)
            .filter(|cell| !base.executed_set.contains(cell))
            .collect();
        self.admit(spec, workload, cells, Some(base))
    }

    fn admit(
        &mut self,
        spec: JobSpec,
        workload: Arc<dyn Workload>,
        cells: Vec<FaultCell>,
        base: Option<RestoredBase>,
    ) -> JobId {
        let id = JobId(self.next_job);
        self.next_job += 1;
        let base_executed = base.as_ref().map_or(0, |b| b.executed.len());
        let mut record = JobRecord {
            cases_total: cells.len() + base_executed + base.as_ref().map_or(0, |b| b.skipped.len()),
            frontier: cells.into(),
            spec,
            workload,
            state: JobState::Queued,
            outstanding: HashMap::new(),
            done: HashMap::new(),
            skipped: HashSet::new(),
            base,
            started: 0,
            issued: 0,
            requeued: 0,
            panics: 0,
            events: EventBuffer::default(),
        };
        record.events.push(JobEventKind::State(JobState::Queued));
        if record.frontier.is_empty() {
            record.set_state(JobState::Done);
        }
        self.jobs.insert(id.0, record);
        id
    }

    /// Issues the next lease, picking the runnable job with the smallest
    /// weighted deficit (ties to the lowest id) — the per-job fairness that
    /// keeps a 1000-case sweep from starving a 10-case smoke job.
    pub fn next_lease(&mut self, now: Instant) -> Option<LeaseAssignment> {
        let id = self
            .jobs
            .iter()
            .filter(|(_, record)| record.runnable())
            .min_by_key(|(id, record)| (record.deficit(), **id))
            .map(|(id, _)| *id)?;
        let record = self.jobs.get_mut(&id).expect("picked job exists");
        let batch = record.spec.lease_batch.unwrap_or(self.default_lease_batch).max(1);
        let cells: Vec<FaultCell> = (0..batch).map_while(|_| record.frontier.pop_front()).collect();
        record.started += cells.len() as u64;
        record.issued += cells.len() as u64;
        record.set_state(JobState::Running);
        let lease = self.next_lease;
        self.next_lease += 1;
        record.outstanding.insert(
            lease,
            OutstandingLease { cells: cells.clone(), deadline: now + self.lease_deadline, cancel: None },
        );
        Some(LeaseAssignment {
            job: JobId(id),
            lease,
            cells,
            workload: Arc::clone(&record.workload),
            seed: record.spec.plan.seed,
            halt_on_crash: record.spec.halt_on_crash,
        })
    }

    /// Attaches the campaign run's cancel handle to a lease, so a job
    /// cancel (or lease expiry) can stop the worker's in-flight run instead
    /// of letting it finish as a zombie.  Returns `false` — and fires
    /// nothing — when the lease is already stale; the caller should cancel
    /// its own run.
    pub fn attach_cancel(&mut self, job: JobId, lease: u64, handle: CancelHandle) -> bool {
        let Some(record) = self.jobs.get_mut(&job.0) else {
            return false;
        };
        let cancelled = record.state == JobState::Cancelled;
        match record.outstanding.get_mut(&lease) {
            Some(entry) => {
                if cancelled {
                    handle.cancel();
                }
                entry.cancel = Some(handle);
                true
            }
            None => false,
        }
    }

    /// Acks a lease: folds its outcomes in, requeues its skipped cells, and
    /// completes the job if this was the last outstanding work.  A stale
    /// ack — the lease already expired and was re-issued — is discarded
    /// wholesale (returns `false`), which is what makes re-execution safe:
    /// only the ack that still holds the lease counts.
    pub fn ack(&mut self, job: JobId, lease: u64, result: LeaseResult) -> bool {
        let Some(record) = self.jobs.get_mut(&job.0) else {
            return false;
        };
        if record.outstanding.remove(&lease).is_none() {
            return false;
        }
        record.panics = 0;
        for kind in result.events {
            record.events.push(kind);
        }
        let mut crash_halt = false;
        for (cell, outcome) in result.outcomes {
            crash_halt |= record.spec.halt_on_crash && outcome.outcome.is_crash();
            if !record.already_executed(&cell) {
                record.done.insert(cell, outcome);
            }
        }
        if record.state == JobState::Cancelled || record.state == JobState::Failed {
            for cell in result.skipped {
                record.skipped.insert(cell);
            }
        } else if crash_halt {
            for cell in result.skipped {
                record.skipped.insert(cell);
            }
            record.skip_frontier();
            record.set_state(JobState::Done);
        } else {
            record.requeue_cells(result.skipped.into_iter().filter(|c| !record.done.contains_key(c)).collect());
        }
        record.maybe_complete();
        true
    }

    /// Replays a journaled lease acknowledgement during recovery:
    /// synthesizes the outstanding lease the journal entry implies (its
    /// cells leave the frontier exactly as the live issue removed them) and
    /// folds the result through [`Scheduler::ack`] — the same body, so a
    /// recovered job steps through the very states the live job did.
    /// Replaying acks in journal order reproduces the live frontier even
    /// when concurrent workers acked out of issue order, because requeues
    /// always go to the *front* in ack order.
    pub fn replay_ack(&mut self, job: JobId, result: LeaseResult) -> bool {
        let lease = self.next_lease;
        self.next_lease += 1;
        let Some(record) = self.jobs.get_mut(&job.0) else {
            return false;
        };
        let mut leased: Vec<FaultCell> = Vec::with_capacity(result.outcomes.len() + result.skipped.len());
        leased.extend(result.outcomes.iter().map(|(cell, _)| *cell));
        leased.extend(result.skipped.iter().copied());
        for cell in &leased {
            if let Some(position) = record.frontier.iter().position(|c| c == cell) {
                record.frontier.remove(position);
            }
        }
        record.started += leased.len() as u64;
        record.issued += leased.len() as u64;
        if record.state == JobState::Queued {
            record.set_state(JobState::Running);
        }
        record
            .outstanding
            .insert(lease, OutstandingLease { cells: leased, deadline: Instant::now(), cancel: None });
        self.ack(job, lease, result)
    }

    /// A worker died (panicked) holding a lease: every cell of the lease
    /// goes back to the front of the job's frontier — nothing the dead
    /// worker half-did was acked, so nothing can be double-counted.  A job
    /// that kills its workers repeatedly is marked `Failed`.
    pub fn requeue_panic(&mut self, job: JobId, lease: u64) -> bool {
        let Some(record) = self.jobs.get_mut(&job.0) else {
            return false;
        };
        let Some(entry) = record.outstanding.remove(&lease) else {
            return false;
        };
        record.panics += 1;
        if record.state.is_terminal() {
            for cell in entry.cells {
                record.skipped.insert(cell);
            }
            return true;
        }
        record.requeue_cells(entry.cells);
        if record.panics >= MAX_JOB_PANICS {
            record.skip_frontier();
            record.set_state(JobState::Failed);
        }
        record.maybe_complete();
        true
    }

    /// Expires every lease whose deadline has passed: its cells return to
    /// the front of the owning job's frontier and a late ack becomes stale.
    /// Returns how many leases expired.
    pub fn expire(&mut self, now: Instant) -> usize {
        let mut expired = 0;
        for record in self.jobs.values_mut() {
            let lapsed: Vec<u64> = record
                .outstanding
                .iter()
                .filter(|(_, lease)| lease.deadline <= now)
                .map(|(id, _)| *id)
                .collect();
            for id in lapsed {
                let lease = record.outstanding.remove(&id).expect("lapsed lease exists");
                if let Some(handle) = lease.cancel {
                    handle.cancel();
                }
                if record.state.is_terminal() {
                    for cell in lease.cells {
                        record.skipped.insert(cell);
                    }
                } else {
                    record.requeue_cells(lease.cells);
                }
                expired += 1;
            }
        }
        expired
    }

    /// Cancels a job: pending cells are counted skipped, in-flight leases
    /// are cancelled through their campaign handles (their cells surface as
    /// lease-skipped and join the skipped set at ack).  Idempotent — like
    /// [`CancelHandle::cancel`], a repeat or a cancel of a terminal job
    /// changes nothing.
    pub fn cancel(&mut self, job: JobId) -> Option<JobState> {
        let record = self.jobs.get_mut(&job.0)?;
        if record.state.is_terminal() {
            return Some(record.state);
        }
        record.skip_frontier();
        record.set_state(JobState::Cancelled);
        for lease in record.outstanding.values() {
            if let Some(handle) = &lease.cancel {
                handle.cancel();
            }
        }
        Some(record.state)
    }

    /// Pauses a job: outstanding leases finish, no new lease is issued.
    pub fn pause(&mut self, job: JobId) -> Option<JobState> {
        let record = self.jobs.get_mut(&job.0)?;
        if matches!(record.state, JobState::Queued | JobState::Running) {
            record.set_state(JobState::Paused);
        }
        Some(record.state)
    }

    /// Resumes a paused job.
    pub fn resume(&mut self, job: JobId) -> Option<JobState> {
        let record = self.jobs.get_mut(&job.0)?;
        if record.state == JobState::Paused {
            record.set_state(JobState::Running);
            record.maybe_complete();
        }
        Some(record.state)
    }

    pub fn snapshot(&self, job: JobId) -> Option<JobSnapshot> {
        let record = self.jobs.get(&job.0)?;
        Some(JobSnapshot {
            id: job,
            name: record.spec.name.clone(),
            workload: record.spec.workload.clone(),
            state: record.state,
            cases: record.cases_total,
            pending: record.frontier.len(),
            outstanding: record.outstanding.values().map(|l| l.cells.len()).sum(),
            progress: ProgressSnapshot {
                started: record.started as usize,
                finished: record.executed_count(),
                skipped: record.skipped_count(),
                crashes: record.crashes() as usize,
                injections: record.injections() as usize,
            },
            requeued: record.requeued,
            clusters: record.merged_clusters().len(),
        })
    }

    pub fn snapshots(&self) -> Vec<JobSnapshot> {
        self.jobs.keys().filter_map(|id| self.snapshot(JobId(*id))).collect()
    }

    pub fn state(&self, job: JobId) -> Option<JobState> {
        self.jobs.get(&job.0).map(|record| record.state)
    }

    pub fn events(&self, job: JobId, from: u64, max: usize) -> Option<(u64, Vec<JobEvent>)> {
        self.jobs.get(&job.0).map(|record| record.events.read(from, max))
    }

    /// Serializes a job's complete state as an [`ExplorationStore`] — the
    /// crash-safe handoff format.  The fold walks acked cells in
    /// process-independent sort order, so a run interrupted by worker
    /// deaths checkpoints byte-identically to an uninterrupted one.
    pub fn checkpoint(&self, job: JobId) -> Option<ExplorationStore> {
        let record = self.jobs.get(&job.0)?;
        let mut frontier: Vec<FrontierCell> =
            record.frontier.iter().map(|cell| FrontierCell { cell: *cell, priority: 0 }).collect();
        let mut lease_ids: Vec<u64> = record.outstanding.keys().copied().collect();
        lease_ids.sort_unstable();
        for id in lease_ids {
            frontier.extend(record.outstanding[&id].cells.iter().map(|cell| FrontierCell { cell: *cell, priority: 0 }));
        }
        let mut executed = record.done_cells_sorted();
        if let Some(base) = &record.base {
            executed.extend(base.executed.iter().copied());
            executed.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
            executed.dedup();
        }
        let mut unreached: Vec<FaultCell> = record.skipped.iter().copied().collect();
        unreached.extend(record.base.as_ref().map_or(&[][..], |b| &b.skipped).iter().copied());
        unreached.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        unreached.dedup();
        Some(ExplorationStore {
            seed: record.spec.plan.seed.unwrap_or(0),
            batch_size: record.spec.lease_batch.unwrap_or(self.default_lease_batch),
            parallelism: 1,
            halt_on_crash: record.spec.halt_on_crash,
            case_budget: record.spec.max_cases.map(|max| max as u64),
            injection_budget: None,
            time_budget_ms: None,
            universe: record.cases_total,
            batch_index: 0,
            rng_draws: 0,
            probe_done: true,
            crash_found: record.crashes() > 0,
            cases_executed: record.executed_count() as u64,
            injections_performed: record.injections(),
            elapsed_ms: 0,
            frontier,
            executed,
            unreached,
            pruned_functions: Vec::new(),
            coverage: record.merged_coverage(),
            clusters: record.merged_clusters(),
        })
    }

    /// The job's coverage/cluster report, derived by the same deterministic
    /// fold as [`Scheduler::checkpoint`].
    pub fn report(&self, job: JobId) -> Option<JobReport> {
        let record = self.jobs.get(&job.0)?;
        let coverage = record.merged_coverage();
        Some(JobReport {
            id: job,
            name: record.spec.name.clone(),
            state: record.state,
            coverage: JobCoverage {
                universe: record.cases_total,
                executed: record.executed_count(),
                triggered: coverage.iter().map(|(_, f)| f.triggered.len()).sum(),
                crashes: record.crashes() as usize,
                failures: record.failures() as usize,
                skipped: record.skipped_count(),
            },
            clusters: record.merged_clusters(),
        })
    }

    pub fn reports(&self) -> Vec<JobReport> {
        self.jobs.keys().filter_map(|id| self.report(JobId(*id))).collect()
    }

    pub fn job_ids(&self) -> Vec<JobId> {
        self.jobs.keys().map(|id| JobId(*id)).collect()
    }

    /// True when no job can make further progress: every job terminal (or
    /// paused with nothing in flight) and no lease outstanding.
    pub fn quiescent(&self) -> bool {
        self.jobs.values().all(|record| {
            (record.state.is_terminal() || record.state == JobState::Paused) && record.outstanding.is_empty()
        })
    }

    /// Fires the cancel handle of every outstanding lease (fabric
    /// shutdown), so in-flight campaign runs stop at their next case
    /// boundary.
    pub fn cancel_outstanding(&mut self) {
        for record in self.jobs.values_mut() {
            for lease in record.outstanding.values() {
                if let Some(handle) = &lease.cancel {
                    handle.cancel();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_controller::FnWorkload;
    use lfi_runtime::ExitStatus;
    use lfi_runtime::Process;
    use lfi_scenario::{FaultAction, Plan, PlanEntry, Trigger};

    fn noop_workload() -> Arc<dyn Workload> {
        FnWorkload::shared("noop", Process::new, |_| ExitStatus::Exited(0))
    }

    fn plan_with_cells(function: &str, ordinals: std::ops::RangeInclusive<u64>) -> Plan {
        let mut plan = Plan::new();
        for ordinal in ordinals {
            plan = plan.entry(PlanEntry {
                function: function.into(),
                trigger: Trigger::on_call(ordinal),
                action: FaultAction::return_value(-1).with_errno(5),
            });
        }
        plan
    }

    fn success_result(cells: &[FaultCell]) -> LeaseResult {
        LeaseResult {
            events: Vec::new(),
            outcomes: cells
                .iter()
                .map(|cell| {
                    (
                        *cell,
                        CellOutcome {
                            outcome: OutcomeClass::Success,
                            injections: 1,
                            triggered: true,
                            stack: Vec::new(),
                            case: case_name(cell),
                        },
                    )
                })
                .collect(),
            skipped: Vec::new(),
        }
    }

    #[test]
    fn deficit_fairness_alternates_between_equal_weight_jobs() {
        let mut sched = Scheduler::new(4, Duration::from_secs(60));
        let now = Instant::now();
        let big = sched.submit(JobSpec::new("big", "noop", plan_with_cells("read", 1..=100)), noop_workload());
        let small = sched.submit(JobSpec::new("small", "noop", plan_with_cells("write", 1..=8)), noop_workload());
        // Tie at zero deficit goes to the lower id, then strict alternation
        // until the small job's 8 cells are exhausted (two leases of 4) —
        // after which only the big job issues.
        let order: Vec<JobId> = (0..6).map(|_| sched.next_lease(now).unwrap().job).collect();
        assert_eq!(order, vec![big, small, big, small, big, big]);
        assert_eq!(sched.snapshot(small).unwrap().pending, 0);
    }

    #[test]
    fn weighted_jobs_get_proportional_leases() {
        let mut sched = Scheduler::new(2, Duration::from_secs(60));
        let now = Instant::now();
        let light = sched.submit(JobSpec::new("light", "noop", plan_with_cells("read", 1..=40)), noop_workload());
        let heavy =
            sched.submit(JobSpec::new("heavy", "noop", plan_with_cells("write", 1..=40)).weight(2), noop_workload());
        let picks: Vec<JobId> = (0..9).map(|_| sched.next_lease(now).unwrap().job).collect();
        let heavy_picks = picks.iter().filter(|id| **id == heavy).count();
        let light_picks = picks.iter().filter(|id| **id == light).count();
        assert_eq!(heavy_picks, 6, "weight-2 job gets ~2/3 of leases: {picks:?}");
        assert_eq!(light_picks, 3);
    }

    #[test]
    fn expired_lease_requeues_cells_and_late_ack_is_stale() {
        let mut sched = Scheduler::new(4, Duration::from_secs(10));
        let base = Instant::now();
        let job = sched.submit(JobSpec::new("job", "noop", plan_with_cells("read", 1..=4)), noop_workload());
        let lease = sched.next_lease(base).unwrap();
        assert_eq!(lease.cells.len(), 4);
        assert_eq!(sched.snapshot(job).unwrap().outstanding, 4);

        // Nothing expires before the deadline.
        assert_eq!(sched.expire(base + Duration::from_secs(9)), 0);
        assert_eq!(sched.expire(base + Duration::from_secs(11)), 1);
        let snapshot = sched.snapshot(job).unwrap();
        assert_eq!(snapshot.outstanding, 0);
        assert_eq!(snapshot.pending, 4, "expired cells return to the frontier");
        assert_eq!(snapshot.requeued, 4);

        // The zombie worker's late ack is discarded wholesale.
        assert!(!sched.ack(job, lease.lease, success_result(&lease.cells)));
        assert_eq!(sched.snapshot(job).unwrap().progress.finished, 0);

        // The re-issued lease preserves the original cell order.
        let reissued = sched.next_lease(base + Duration::from_secs(12)).unwrap();
        assert_eq!(reissued.cells, lease.cells);
        assert!(sched.ack(job, reissued.lease, success_result(&reissued.cells)));
        let snapshot = sched.snapshot(job).unwrap();
        assert_eq!(snapshot.state, JobState::Done);
        assert_eq!(snapshot.progress.finished, 4, "each cell counted exactly once");
    }

    #[test]
    fn repeated_panics_fail_the_job() {
        let mut sched = Scheduler::new(4, Duration::from_secs(60));
        let now = Instant::now();
        let job = sched.submit(JobSpec::new("job", "noop", plan_with_cells("read", 1..=4)), noop_workload());
        for round in 0..MAX_JOB_PANICS {
            let lease = sched.next_lease(now).unwrap();
            assert!(sched.requeue_panic(job, lease.lease), "round {round}");
        }
        let snapshot = sched.snapshot(job).unwrap();
        assert_eq!(snapshot.state, JobState::Failed);
        assert_eq!(snapshot.pending, 0);
        assert_eq!(snapshot.progress.skipped, 4, "failed job accounts for every cell");
        assert!(sched.next_lease(now).is_none());
        // A successful ack resets the panic streak.
        let job2 = sched.submit(JobSpec::new("job2", "noop", plan_with_cells("write", 1..=8)), noop_workload());
        let lease = sched.next_lease(now).unwrap();
        sched.requeue_panic(job2, lease.lease);
        let lease = sched.next_lease(now).unwrap();
        assert!(sched.ack(job2, lease.lease, success_result(&lease.cells)));
        let lease = sched.next_lease(now).unwrap();
        sched.requeue_panic(job2, lease.lease);
        assert_eq!(sched.state(job2), Some(JobState::Running), "streak was reset by the ack");
    }

    #[test]
    fn cancel_skips_pending_and_is_idempotent() {
        let mut sched = Scheduler::new(2, Duration::from_secs(60));
        let now = Instant::now();
        let job = sched.submit(JobSpec::new("job", "noop", plan_with_cells("read", 1..=6)), noop_workload());
        let lease = sched.next_lease(now).unwrap();
        assert_eq!(sched.cancel(job), Some(JobState::Cancelled));
        assert_eq!(sched.cancel(job), Some(JobState::Cancelled), "double cancel is a no-op");
        assert!(sched.next_lease(now).is_none(), "cancelled job issues no leases");
        // The in-flight lease comes back with its cells skipped mid-run.
        let result = LeaseResult { skipped: lease.cells.clone(), ..LeaseResult::default() };
        assert!(sched.ack(job, lease.lease, result));
        let snapshot = sched.snapshot(job).unwrap();
        assert_eq!(snapshot.progress.skipped, 6);
        assert_eq!(snapshot.pending + snapshot.outstanding, 0);
        assert!(sched.quiescent());
    }

    #[test]
    fn pause_withholds_leases_and_resume_restores_them() {
        let mut sched = Scheduler::new(2, Duration::from_secs(60));
        let now = Instant::now();
        let job = sched.submit(JobSpec::new("job", "noop", plan_with_cells("read", 1..=4)), noop_workload());
        assert_eq!(sched.pause(job), Some(JobState::Paused));
        assert!(sched.next_lease(now).is_none());
        assert!(sched.quiescent(), "paused with nothing in flight is quiescent");
        assert_eq!(sched.resume(job), Some(JobState::Running));
        assert!(sched.next_lease(now).is_some());
    }

    #[test]
    fn crash_halt_completes_job_and_skips_remainder() {
        let mut sched = Scheduler::new(2, Duration::from_secs(60));
        let now = Instant::now();
        let job =
            sched.submit(JobSpec::new("job", "noop", plan_with_cells("read", 1..=6)).halt_on_crash(), noop_workload());
        let lease = sched.next_lease(now).unwrap();
        let mut result = success_result(&lease.cells[..1]);
        result.outcomes[0].1.outcome = OutcomeClass::Crash(lfi_runtime::Signal::Segv);
        result.skipped = lease.cells[1..].to_vec();
        assert!(sched.ack(job, lease.lease, result));
        let snapshot = sched.snapshot(job).unwrap();
        assert_eq!(snapshot.state, JobState::Done);
        assert_eq!(snapshot.progress.finished, 1);
        assert_eq!(snapshot.progress.skipped, 5);
        assert_eq!(snapshot.clusters, 1);
    }

    #[test]
    fn checkpoint_restores_into_equivalent_job() {
        let mut sched = Scheduler::new(4, Duration::from_secs(60));
        let now = Instant::now();
        let spec = JobSpec::new("sweep", "noop", plan_with_cells("read", 1..=12));
        let job = sched.submit(spec.clone(), noop_workload());
        let first = sched.next_lease(now).unwrap();
        assert!(sched.ack(job, first.lease, success_result(&first.cells)));
        // Take a mid-run checkpoint: one lease outstanding, one acked.
        let second = sched.next_lease(now).unwrap();
        let store = sched.checkpoint(job).unwrap();
        assert_eq!(store.cases_executed, 4);
        assert_eq!(store.frontier.len(), 8, "pending plus outstanding cells");
        assert_eq!(store.universe, 12);
        let xml = store.to_xml();
        let reloaded = ExplorationStore::from_xml(&xml).unwrap();
        assert_eq!(reloaded, store);
        drop(second);

        // A fresh scheduler resumes from the checkpoint and finishes.
        let mut resumed = Scheduler::new(4, Duration::from_secs(60));
        let job2 = resumed.submit_restored(spec, noop_workload(), &reloaded);
        let mut acked = 0;
        while let Some(lease) = resumed.next_lease(now) {
            acked += lease.cells.len();
            assert!(resumed.ack(job2, lease.lease, success_result(&lease.cells)));
        }
        assert_eq!(acked, 8, "only the unexecuted cells re-run");
        let report = resumed.report(job2).unwrap();
        assert_eq!(report.state, JobState::Done);
        assert_eq!(report.coverage.universe, 12);
        assert_eq!(report.coverage.executed, 12, "union coverage spans both halves");
        assert_eq!(report.coverage.triggered, 12);
        let final_store = resumed.checkpoint(job2).unwrap();
        assert_eq!(final_store.executed.len(), 12);
        assert!(final_store.frontier.is_empty());
    }

    #[test]
    fn replayed_acks_in_journal_order_reconstruct_the_live_fold() {
        // Live run: two concurrent leases acked out of issue order — the
        // second lease comes back fully skipped (its cells requeue to the
        // front), then the first lands successfully.
        let mut sched = Scheduler::new(4, Duration::from_secs(60));
        let now = Instant::now();
        let spec = JobSpec::new("job", "noop", plan_with_cells("read", 1..=12));
        let job = sched.submit(spec.clone(), noop_workload());
        let initial = sched.checkpoint(job).unwrap();
        let first = sched.next_lease(now).unwrap();
        let second = sched.next_lease(now).unwrap();
        let skip_second = LeaseResult { skipped: second.cells.clone(), ..LeaseResult::default() };
        assert!(sched.ack(job, second.lease, skip_second.clone()));
        assert!(sched.ack(job, first.lease, success_result(&first.cells)));
        let live = sched.checkpoint(job).unwrap();

        // Recovery: restore from the submit-time snapshot, then replay the
        // two acks in the order they were journaled.
        let mut replayed = Scheduler::new(4, Duration::from_secs(60));
        let job2 = replayed.submit_restored(spec, noop_workload(), &initial);
        assert!(replayed.replay_ack(job2, skip_second));
        assert!(replayed.replay_ack(job2, success_result(&first.cells)));
        assert_eq!(replayed.checkpoint(job2).unwrap(), live, "replay reproduces frontier order and done set");
        assert_eq!(replayed.snapshot(job2).unwrap().progress.finished, 4);
        assert!(!replayed.replay_ack(JobId(99), LeaseResult::default()), "unknown job replays nothing");
    }

    #[test]
    fn empty_plan_job_is_immediately_done() {
        let mut sched = Scheduler::new(4, Duration::from_secs(60));
        let job = sched.submit(JobSpec::new("empty", "noop", Plan::new()), noop_workload());
        assert_eq!(sched.state(job), Some(JobState::Done));
        assert!(sched.next_lease(Instant::now()).is_none());
        let (next, events) = sched.events(job, 0, 16).unwrap();
        assert_eq!(next, 2);
        assert_eq!(events[0].kind, JobEventKind::State(JobState::Queued));
        assert_eq!(events[1].kind, JobEventKind::State(JobState::Done));
        // Reading past the end leaves the cursor in place.
        let (next, rest) = sched.events(job, next, 16).unwrap();
        assert_eq!(next, 2);
        assert!(rest.is_empty());
    }
}
