//! Serving the wire protocol: request dispatch on a [`FabricHandle`], an
//! in-process duplex transport, a `std::net::TcpListener` front end, and
//! the [`FabricClient`] that speaks both.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use lfi_explore::ExplorationStore;

use crate::fabric::FabricHandle;
use crate::job::{JobEvent, JobId, JobSnapshot, JobSpec, JobState};
use crate::wire::{Request, Response, WireError};

impl FabricHandle {
    /// Dispatches one parsed request against this fabric.
    pub fn handle_request(&self, request: Request) -> Response {
        match request {
            Request::Ping => Response::Pong,
            Request::Jobs => {
                Response::Jobs { jobs: self.jobs().into_iter().map(|job| (job.id, job.name, job.state)).collect() }
            }
            Request::Submit { spec } => match self.submit(spec) {
                Ok(job) => Response::Submitted { job },
                Err(error) => Response::Error { message: error.to_string() },
            },
            Request::Status { job } => match self.status(job) {
                Some(snapshot) => Response::Status { snapshot },
                None => Response::Error { message: format!("no job with id {job}") },
            },
            Request::Events { job, after, max } => match self.events(job, after, max.min(1024)) {
                Some((next, events)) => Response::Events { job, next, events },
                None => Response::Error { message: format!("no job with id {job}") },
            },
            Request::Cancel { job } => match self.cancel(job) {
                Some(state) => Response::StateChanged { job, state },
                None => Response::Error { message: format!("no job with id {job}") },
            },
            Request::Pause { job } => match self.pause(job) {
                Some(state) => Response::StateChanged { job, state },
                None => Response::Error { message: format!("no job with id {job}") },
            },
            Request::Resume { job } => match self.resume(job) {
                Some(state) => Response::StateChanged { job, state },
                None => Response::Error { message: format!("no job with id {job}") },
            },
            Request::Checkpoint { job } => match self.checkpoint(job) {
                Some(store) => Response::Checkpoint { job, store_xml: store.to_xml() },
                None => Response::Error { message: format!("no job with id {job}") },
            },
            Request::Drain => {
                self.begin_drain();
                Response::Draining
            }
        }
    }

    /// Parses one request line and renders the response line — the whole
    /// server side of the protocol in one call.  A malformed line becomes
    /// an `error` response, never a dropped connection.
    pub fn handle_line(&self, line: &str) -> String {
        match Request::parse(line.trim_end()) {
            Ok(request) => self.handle_request(request),
            Err(error) => Response::Error { message: error.to_string() },
        }
        .encode()
    }

    /// Connects an in-process duplex client: a service thread owns the
    /// other end of a channel pair and answers until the client drops.
    pub fn connect(&self) -> FabricClient {
        let (request_tx, request_rx) = std::sync::mpsc::channel::<String>();
        let (response_tx, response_rx) = std::sync::mpsc::channel::<String>();
        let handle = self.clone();
        std::thread::Builder::new()
            .name("lfi-fabric-duplex".into())
            .spawn(move || {
                while let Ok(line) = request_rx.recv() {
                    if response_tx.send(handle.handle_line(&line)).is_err() {
                        break;
                    }
                }
            })
            .expect("duplex service thread spawns");
        FabricClient { transport: Transport::Duplex { tx: request_tx, rx: response_rx } }
    }

    /// Serves the protocol over TCP: one accept loop thread, one thread
    /// per connection, newline-delimited requests until the peer closes.
    /// Returns a guard that stops the accept loop when dropped.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures.
    pub fn serve_tcp(&self, listener: TcpListener) -> std::io::Result<ServerGuard> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_stop = Arc::clone(&stop);
        let accept_connections = Arc::clone(&connections);
        let handle = self.clone();
        let acceptor = std::thread::Builder::new()
            .name("lfi-fabric-accept".into())
            .spawn(move || {
                while !accept_stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let handle = handle.clone();
                            let worker = std::thread::Builder::new()
                                .name("lfi-fabric-conn".into())
                                .spawn(move || serve_connection(&handle, stream))
                                .expect("connection thread spawns");
                            let mut guard =
                                accept_connections.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                            guard.push(worker);
                        }
                        Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("accept thread spawns");
        Ok(ServerGuard { addr, stop, acceptor: Some(acceptor), connections })
    }
}

/// One TCP connection: newline-delimited requests answered in order.
fn serve_connection(handle: &FabricHandle, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = write_half;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = handle.handle_line(&line);
        if writer.write_all(response.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            break;
        }
        let _ = writer.flush();
    }
}

/// Keeps a [`FabricHandle::serve_tcp`] accept loop alive; dropping it
/// stops accepting and joins the server threads (connections must be
/// closed by their peers first).
pub struct ServerGuard {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerGuard {
    /// The address the server is listening on (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop (idempotent; also done on drop).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        self.stop();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let connections =
            std::mem::take(&mut *self.connections.lock().unwrap_or_else(std::sync::PoisonError::into_inner));
        for connection in connections {
            let _ = connection.join();
        }
    }
}

impl std::fmt::Debug for ServerGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerGuard").field("addr", &self.addr).finish()
    }
}

enum Transport {
    Duplex {
        tx: Sender<String>,
        rx: Receiver<String>,
    },
    Tcp {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    },
}

/// A typed client for the wire protocol, over either transport.
pub struct FabricClient {
    transport: Transport,
}

impl FabricClient {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn tcp(addr: SocketAddr) -> std::io::Result<FabricClient> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(FabricClient { transport: Transport::Tcp { reader, writer: stream } })
    }

    /// Sends one request and parses the response.
    ///
    /// # Errors
    ///
    /// [`WireError::Transport`] when the connection drops,
    /// [`WireError::Malformed`] when the peer breaks the protocol.
    pub fn request(&mut self, request: &Request) -> Result<Response, WireError> {
        let line = request.encode();
        let reply = match &mut self.transport {
            Transport::Duplex { tx, rx } => {
                tx.send(line)
                    .map_err(|_| WireError::Transport { message: "duplex service gone".into() })?;
                rx.recv().map_err(|_| WireError::Transport { message: "duplex service gone".into() })?
            }
            Transport::Tcp { reader, writer } => {
                writer
                    .write_all(format!("{line}\n").as_bytes())
                    .map_err(|error| WireError::Transport { message: error.to_string() })?;
                let mut reply = String::new();
                let read = reader
                    .read_line(&mut reply)
                    .map_err(|error| WireError::Transport { message: error.to_string() })?;
                if read == 0 {
                    return Err(WireError::Transport { message: "connection closed".into() });
                }
                reply
            }
        };
        Response::parse(reply.trim_end())
    }

    fn expect_error<T>(response: Response) -> Result<T, WireError> {
        match response {
            Response::Error { message } => Err(WireError::Malformed { message }),
            other => Err(WireError::malformed(format!("unexpected response {other:?}"))),
        }
    }

    /// `ping` → `pong`.
    ///
    /// # Errors
    ///
    /// [`WireError`] on transport failure or an unexpected response.
    pub fn ping(&mut self) -> Result<(), WireError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Self::expect_error(other),
        }
    }

    /// Submits a job and returns its id.
    ///
    /// # Errors
    ///
    /// [`WireError`] on transport failure or a server-side error (e.g. an
    /// unknown workload name).
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, WireError> {
        match self.request(&Request::Submit { spec })? {
            Response::Submitted { job } => Ok(job),
            other => Self::expect_error(other),
        }
    }

    /// Lists every job as `(id, name, state)`.
    ///
    /// # Errors
    ///
    /// [`WireError`] on transport failure or an unexpected response.
    pub fn jobs(&mut self) -> Result<Vec<(JobId, String, JobState)>, WireError> {
        match self.request(&Request::Jobs)? {
            Response::Jobs { jobs } => Ok(jobs),
            other => Self::expect_error(other),
        }
    }

    /// Snapshots one job.
    ///
    /// # Errors
    ///
    /// [`WireError`] on transport failure or an unknown job.
    pub fn status(&mut self, job: JobId) -> Result<JobSnapshot, WireError> {
        match self.request(&Request::Status { job })? {
            Response::Status { snapshot } => Ok(snapshot),
            other => Self::expect_error(other),
        }
    }

    /// Polls a job's event stream from the `after` cursor; returns the
    /// next cursor and the events.
    ///
    /// # Errors
    ///
    /// [`WireError`] on transport failure or an unknown job.
    pub fn events(&mut self, job: JobId, after: u64, max: usize) -> Result<(u64, Vec<JobEvent>), WireError> {
        match self.request(&Request::Events { job, after, max })? {
            Response::Events { next, events, .. } => Ok((next, events)),
            other => Self::expect_error(other),
        }
    }

    /// Cancels a job; returns its state after the request.
    ///
    /// # Errors
    ///
    /// [`WireError`] on transport failure or an unknown job.
    pub fn cancel(&mut self, job: JobId) -> Result<JobState, WireError> {
        match self.request(&Request::Cancel { job })? {
            Response::StateChanged { state, .. } => Ok(state),
            other => Self::expect_error(other),
        }
    }

    /// Pauses a job; returns its state after the request.
    ///
    /// # Errors
    ///
    /// [`WireError`] on transport failure or an unknown job.
    pub fn pause(&mut self, job: JobId) -> Result<JobState, WireError> {
        match self.request(&Request::Pause { job })? {
            Response::StateChanged { state, .. } => Ok(state),
            other => Self::expect_error(other),
        }
    }

    /// Resumes a job; returns its state after the request.
    ///
    /// # Errors
    ///
    /// [`WireError`] on transport failure or an unknown job.
    pub fn resume(&mut self, job: JobId) -> Result<JobState, WireError> {
        match self.request(&Request::Resume { job })? {
            Response::StateChanged { state, .. } => Ok(state),
            other => Self::expect_error(other),
        }
    }

    /// Fetches a job's crash-safe checkpoint.
    ///
    /// # Errors
    ///
    /// [`WireError`] on transport failure, an unknown job, or a store
    /// document that does not parse.
    pub fn checkpoint(&mut self, job: JobId) -> Result<ExplorationStore, WireError> {
        match self.request(&Request::Checkpoint { job })? {
            Response::Checkpoint { store_xml, .. } => ExplorationStore::from_xml(&store_xml)
                .map_err(|error| WireError::malformed(format!("checkpoint is not store XML: {error}"))),
            other => Self::expect_error(other),
        }
    }

    /// Asks the fabric to drain.
    ///
    /// # Errors
    ///
    /// [`WireError`] on transport failure or an unexpected response.
    pub fn drain(&mut self) -> Result<(), WireError> {
        match self.request(&Request::Drain)? {
            Response::Draining => Ok(()),
            other => Self::expect_error(other),
        }
    }
}

impl std::fmt::Debug for FabricClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let transport = match &self.transport {
            Transport::Duplex { .. } => "duplex",
            Transport::Tcp { .. } => "tcp",
        };
        f.debug_struct("FabricClient").field("transport", &transport).finish()
    }
}
