//! Serving the wire protocol: request dispatch on a [`FabricHandle`], an
//! in-process duplex transport, a `std::net::TcpListener` front end, and
//! the [`FabricClient`] that speaks both.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use lfi_explore::ExplorationStore;

use crate::fabric::FabricHandle;
use crate::job::{JobEvent, JobId, JobSnapshot, JobSpec, JobState};
use crate::wire::{Request, Response, WireError};

impl FabricHandle {
    /// Dispatches one parsed request against this fabric.
    ///
    /// ```
    /// use lfi_fabric::{Fabric, Request, Response};
    ///
    /// let fabric = Fabric::builder().workers(0).build();
    /// assert_eq!(fabric.handle().handle_request(Request::Ping), Response::Pong);
    /// ```
    pub fn handle_request(&self, request: Request) -> Response {
        match request {
            Request::Ping => Response::Pong,
            Request::Jobs => {
                Response::Jobs { jobs: self.jobs().into_iter().map(|job| (job.id, job.name, job.state)).collect() }
            }
            Request::Submit { spec } => match self.submit(spec) {
                Ok(job) => Response::Submitted { job },
                Err(error) => Response::Error { message: error.to_string() },
            },
            Request::Status { job } => match self.status(job) {
                Some(snapshot) => Response::Status { snapshot },
                None => Response::Error { message: format!("no job with id {job}") },
            },
            Request::Events { job, after, max } => match self.events(job, after, max.min(1024)) {
                Some((next, events)) => Response::Events { job, next, events },
                None => Response::Error { message: format!("no job with id {job}") },
            },
            Request::Cancel { job } => match self.cancel(job) {
                Some(state) => Response::StateChanged { job, state },
                None => Response::Error { message: format!("no job with id {job}") },
            },
            Request::Pause { job } => match self.pause(job) {
                Some(state) => Response::StateChanged { job, state },
                None => Response::Error { message: format!("no job with id {job}") },
            },
            Request::Resume { job } => match self.resume(job) {
                Some(state) => Response::StateChanged { job, state },
                None => Response::Error { message: format!("no job with id {job}") },
            },
            Request::Checkpoint { job } => match self.checkpoint(job) {
                Some(store) => Response::Checkpoint { job, store_xml: store.to_xml() },
                None => Response::Error { message: format!("no job with id {job}") },
            },
            Request::Drain => {
                self.begin_drain();
                Response::Draining
            }
        }
    }

    /// Parses one request line and renders the response line — the whole
    /// server side of the protocol in one call.  A malformed line becomes
    /// an `error` response, never a dropped connection.
    ///
    /// ```
    /// use lfi_fabric::Fabric;
    ///
    /// let fabric = Fabric::builder().workers(0).build();
    /// assert_eq!(fabric.handle().handle_line("ping\n"), "pong");
    /// assert!(fabric.handle().handle_line("warp").starts_with("error message="));
    /// ```
    pub fn handle_line(&self, line: &str) -> String {
        match Request::parse(line.trim_end()) {
            Ok(request) => self.handle_request(request),
            Err(error) => Response::Error { message: error.to_string() },
        }
        .encode()
    }

    /// Connects an in-process duplex client: a service thread owns the
    /// other end of a channel pair and answers until the client drops.
    ///
    /// ```
    /// use lfi_fabric::Fabric;
    ///
    /// let fabric = Fabric::builder().workers(0).build();
    /// let mut client = fabric.handle().connect();
    /// client.ping().unwrap();
    /// ```
    pub fn connect(&self) -> FabricClient {
        let (request_tx, request_rx) = std::sync::mpsc::channel::<String>();
        let (response_tx, response_rx) = std::sync::mpsc::channel::<String>();
        let handle = self.clone();
        std::thread::Builder::new()
            .name("lfi-fabric-duplex".into())
            .spawn(move || {
                while let Ok(line) = request_rx.recv() {
                    if response_tx.send(handle.handle_line(&line)).is_err() {
                        break;
                    }
                }
            })
            .expect("duplex service thread spawns");
        FabricClient { transport: Transport::Duplex { tx: request_tx, rx: response_rx } }
    }

    /// Serves the protocol over TCP: one accept loop thread, one thread
    /// per connection, newline-delimited requests until the peer closes.
    /// Returns a guard that stops the accept loop when dropped.
    ///
    /// ```no_run
    /// use lfi_fabric::{Fabric, FabricClient};
    ///
    /// let fabric = Fabric::builder().build();
    /// let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
    /// let guard = fabric.handle().serve_tcp(listener)?;
    /// let mut client = FabricClient::tcp(guard.addr()).expect("connects");
    /// client.ping().expect("server answers");
    /// # Ok::<(), std::io::Error>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures.
    pub fn serve_tcp(&self, listener: TcpListener) -> std::io::Result<ServerGuard> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_stop = Arc::clone(&stop);
        let accept_connections = Arc::clone(&connections);
        let handle = self.clone();
        let acceptor = std::thread::Builder::new()
            .name("lfi-fabric-accept".into())
            .spawn(move || {
                while !accept_stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let handle = handle.clone();
                            let worker = std::thread::Builder::new()
                                .name("lfi-fabric-conn".into())
                                .spawn(move || serve_connection(&handle, stream))
                                .expect("connection thread spawns");
                            let mut guard =
                                accept_connections.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                            guard.push(worker);
                        }
                        Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("accept thread spawns");
        Ok(ServerGuard { addr, stop, acceptor: Some(acceptor), connections })
    }
}

/// One TCP connection: newline-delimited requests answered in order.
fn serve_connection(handle: &FabricHandle, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = write_half;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = handle.handle_line(&line);
        if writer.write_all(response.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            break;
        }
        let _ = writer.flush();
    }
}

/// Keeps a [`FabricHandle::serve_tcp`] accept loop alive; dropping it
/// stops accepting and joins the server threads (connections must be
/// closed by their peers first).
///
/// ```no_run
/// use lfi_fabric::Fabric;
///
/// let fabric = Fabric::builder().build();
/// let guard = fabric.handle().serve_tcp(std::net::TcpListener::bind("127.0.0.1:0")?)?;
/// println!("serving on {}", guard.addr());
/// drop(guard); // stops accepting, joins the server threads
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct ServerGuard {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerGuard {
    /// The address the server is listening on (useful with port 0, where
    /// the OS picks the port and this is the only way to learn it).
    ///
    /// ```no_run
    /// # let fabric = lfi_fabric::Fabric::builder().build();
    /// # let guard = fabric.handle().serve_tcp(std::net::TcpListener::bind("127.0.0.1:0")?)?;
    /// let mut client = lfi_fabric::FabricClient::tcp(guard.addr()).expect("connects");
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop (idempotent; also done on drop).
    ///
    /// ```no_run
    /// # let fabric = lfi_fabric::Fabric::builder().build();
    /// # let guard = fabric.handle().serve_tcp(std::net::TcpListener::bind("127.0.0.1:0")?)?;
    /// guard.stop(); // new connections now refused; drop() joins the threads
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        self.stop();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let connections =
            std::mem::take(&mut *self.connections.lock().unwrap_or_else(std::sync::PoisonError::into_inner));
        for connection in connections {
            let _ = connection.join();
        }
    }
}

impl std::fmt::Debug for ServerGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerGuard").field("addr", &self.addr).finish()
    }
}

enum Transport {
    Duplex {
        tx: Sender<String>,
        rx: Receiver<String>,
    },
    Tcp {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    },
}

/// A typed client for the wire protocol, over either transport.
///
/// An in-process duplex client exercises the full protocol without a
/// socket (an inert `workers(0)` fabric keeps the job deterministically
/// queued):
///
/// ```
/// use lfi_controller::FnWorkload;
/// use lfi_fabric::{Fabric, JobSpec, JobState};
/// use lfi_runtime::{ExitStatus, Process};
/// use lfi_scenario::{FaultAction, Plan, PlanEntry, Trigger};
///
/// let fabric = Fabric::builder()
///     .workers(0)
///     .register(FnWorkload::new("noop", Process::new, |_: &mut Process| ExitStatus::Exited(0)))
///     .build();
/// let plan = Plan::new().entry(PlanEntry {
///     function: "read".into(),
///     trigger: Trigger::on_call(1),
///     action: FaultAction::return_value(-1).with_errno(5),
/// });
///
/// let mut client = fabric.handle().connect();
/// let job = client.submit(JobSpec::new("smoke", "noop", plan)).unwrap();
/// assert_eq!(client.status(job).unwrap().state, JobState::Queued);
/// ```
pub struct FabricClient {
    transport: Transport,
}

impl FabricClient {
    /// Connects over TCP.
    ///
    /// ```no_run
    /// # let fabric = lfi_fabric::Fabric::builder().build();
    /// # let guard = fabric.handle().serve_tcp(std::net::TcpListener::bind("127.0.0.1:0")?)?;
    /// let mut client = lfi_fabric::FabricClient::tcp(guard.addr())?;
    /// client.ping().expect("server answers");
    /// # Ok::<(), std::io::Error>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn tcp(addr: SocketAddr) -> std::io::Result<FabricClient> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(FabricClient { transport: Transport::Tcp { reader, writer: stream } })
    }

    /// Sends one request and parses the response.  The typed wrappers
    /// below cover every verb; reach for this when driving the protocol
    /// generically.
    ///
    /// ```
    /// use lfi_fabric::{Fabric, Request, Response};
    ///
    /// let fabric = Fabric::builder().workers(0).build();
    /// let mut client = fabric.handle().connect();
    /// assert_eq!(client.request(&Request::Ping).unwrap(), Response::Pong);
    /// ```
    ///
    /// # Errors
    ///
    /// [`WireError::Transport`] when the connection drops,
    /// [`WireError::Malformed`] when the peer breaks the protocol.
    pub fn request(&mut self, request: &Request) -> Result<Response, WireError> {
        let line = request.encode();
        let reply = match &mut self.transport {
            Transport::Duplex { tx, rx } => {
                tx.send(line)
                    .map_err(|_| WireError::Transport { message: "duplex service gone".into() })?;
                rx.recv().map_err(|_| WireError::Transport { message: "duplex service gone".into() })?
            }
            Transport::Tcp { reader, writer } => {
                writer
                    .write_all(format!("{line}\n").as_bytes())
                    .map_err(|error| WireError::Transport { message: error.to_string() })?;
                let mut reply = String::new();
                let read = reader
                    .read_line(&mut reply)
                    .map_err(|error| WireError::Transport { message: error.to_string() })?;
                if read == 0 {
                    return Err(WireError::Transport { message: "connection closed".into() });
                }
                reply
            }
        };
        Response::parse(reply.trim_end())
    }

    fn expect_error<T>(response: Response) -> Result<T, WireError> {
        match response {
            Response::Error { message } => Err(WireError::Malformed { message }),
            other => Err(WireError::malformed(format!("unexpected response {other:?}"))),
        }
    }

    /// `ping` → `pong`.
    ///
    /// ```
    /// let fabric = lfi_fabric::Fabric::builder().workers(0).build();
    /// fabric.handle().connect().ping().unwrap();
    /// ```
    ///
    /// # Errors
    ///
    /// [`WireError`] on transport failure or an unexpected response.
    pub fn ping(&mut self) -> Result<(), WireError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Self::expect_error(other),
        }
    }

    /// Submits a job and returns its id.
    ///
    /// ```
    /// # use lfi_controller::FnWorkload;
    /// # use lfi_fabric::{Fabric, JobSpec};
    /// # use lfi_runtime::{ExitStatus, Process};
    /// # use lfi_scenario::{FaultAction, Plan, PlanEntry, Trigger};
    /// # let fabric = Fabric::builder()
    /// #     .workers(0) // inert fleet: the job stays queued, deterministically
    /// #     .register(FnWorkload::new("noop", Process::new, |_: &mut Process| ExitStatus::Exited(0)))
    /// #     .build();
    /// # let plan = Plan::new().entry(PlanEntry {
    /// #     function: "read".into(),
    /// #     trigger: Trigger::on_call(1),
    /// #     action: FaultAction::return_value(-1).with_errno(5),
    /// # });
    /// # let mut client = fabric.handle().connect();
    /// let job = client.submit(JobSpec::new("smoke", "noop", plan)).unwrap();
    /// assert!(client.submit(JobSpec::new("typo", "nope", Plan::new())).is_err());
    /// ```
    ///
    /// # Errors
    ///
    /// [`WireError`] on transport failure or a server-side error (e.g. an
    /// unknown workload name).
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, WireError> {
        match self.request(&Request::Submit { spec })? {
            Response::Submitted { job } => Ok(job),
            other => Self::expect_error(other),
        }
    }

    /// Lists every job as `(id, name, state)`.
    ///
    /// ```
    /// # use lfi_controller::FnWorkload;
    /// # use lfi_fabric::{Fabric, JobSpec};
    /// # use lfi_runtime::{ExitStatus, Process};
    /// # use lfi_scenario::{FaultAction, Plan, PlanEntry, Trigger};
    /// # let fabric = Fabric::builder()
    /// #     .workers(0) // inert fleet: the job stays queued, deterministically
    /// #     .register(FnWorkload::new("noop", Process::new, |_: &mut Process| ExitStatus::Exited(0)))
    /// #     .build();
    /// # let plan = Plan::new().entry(PlanEntry {
    /// #     function: "read".into(),
    /// #     trigger: Trigger::on_call(1),
    /// #     action: FaultAction::return_value(-1).with_errno(5),
    /// # });
    /// # let mut client = fabric.handle().connect();
    /// # let job = client.submit(JobSpec::new("smoke", "noop", plan)).unwrap();
    /// let jobs = client.jobs().unwrap();
    /// assert_eq!(jobs.len(), 1);
    /// assert_eq!(jobs[0].1, "smoke");
    /// ```
    ///
    /// # Errors
    ///
    /// [`WireError`] on transport failure or an unexpected response.
    pub fn jobs(&mut self) -> Result<Vec<(JobId, String, JobState)>, WireError> {
        match self.request(&Request::Jobs)? {
            Response::Jobs { jobs } => Ok(jobs),
            other => Self::expect_error(other),
        }
    }

    /// Snapshots one job.
    ///
    /// ```
    /// # use lfi_controller::FnWorkload;
    /// # use lfi_fabric::{Fabric, JobSpec};
    /// # use lfi_runtime::{ExitStatus, Process};
    /// # use lfi_scenario::{FaultAction, Plan, PlanEntry, Trigger};
    /// # let fabric = Fabric::builder()
    /// #     .workers(0) // inert fleet: the job stays queued, deterministically
    /// #     .register(FnWorkload::new("noop", Process::new, |_: &mut Process| ExitStatus::Exited(0)))
    /// #     .build();
    /// # let plan = Plan::new().entry(PlanEntry {
    /// #     function: "read".into(),
    /// #     trigger: Trigger::on_call(1),
    /// #     action: FaultAction::return_value(-1).with_errno(5),
    /// # });
    /// # let mut client = fabric.handle().connect();
    /// # let job = client.submit(JobSpec::new("smoke", "noop", plan)).unwrap();
    /// let snapshot = client.status(job).unwrap();
    /// assert_eq!(snapshot.cases, 1);
    /// assert_eq!(snapshot.progress.finished, 0);
    /// ```
    ///
    /// # Errors
    ///
    /// [`WireError`] on transport failure or an unknown job.
    pub fn status(&mut self, job: JobId) -> Result<JobSnapshot, WireError> {
        match self.request(&Request::Status { job })? {
            Response::Status { snapshot } => Ok(snapshot),
            other => Self::expect_error(other),
        }
    }

    /// Polls a job's event stream from the `after` cursor; returns the
    /// next cursor and the events.
    ///
    /// ```
    /// # use lfi_controller::FnWorkload;
    /// # use lfi_fabric::{Fabric, JobSpec};
    /// # use lfi_runtime::{ExitStatus, Process};
    /// # use lfi_scenario::{FaultAction, Plan, PlanEntry, Trigger};
    /// # let fabric = Fabric::builder()
    /// #     .workers(0) // inert fleet: the job stays queued, deterministically
    /// #     .register(FnWorkload::new("noop", Process::new, |_: &mut Process| ExitStatus::Exited(0)))
    /// #     .build();
    /// # let plan = Plan::new().entry(PlanEntry {
    /// #     function: "read".into(),
    /// #     trigger: Trigger::on_call(1),
    /// #     action: FaultAction::return_value(-1).with_errno(5),
    /// # });
    /// # let mut client = fabric.handle().connect();
    /// # let job = client.submit(JobSpec::new("smoke", "noop", plan)).unwrap();
    /// let (next, events) = client.events(job, 0, 64).unwrap();
    /// assert_eq!(next, events.len() as u64); // resume the poll from here
    /// ```
    ///
    /// # Errors
    ///
    /// [`WireError`] on transport failure or an unknown job.
    pub fn events(&mut self, job: JobId, after: u64, max: usize) -> Result<(u64, Vec<JobEvent>), WireError> {
        match self.request(&Request::Events { job, after, max })? {
            Response::Events { next, events, .. } => Ok((next, events)),
            other => Self::expect_error(other),
        }
    }

    /// Cancels a job; returns its state after the request.
    ///
    /// ```
    /// # use lfi_controller::FnWorkload;
    /// # use lfi_fabric::{Fabric, JobSpec};
    /// # use lfi_runtime::{ExitStatus, Process};
    /// # use lfi_scenario::{FaultAction, Plan, PlanEntry, Trigger};
    /// # let fabric = Fabric::builder()
    /// #     .workers(0) // inert fleet: the job stays queued, deterministically
    /// #     .register(FnWorkload::new("noop", Process::new, |_: &mut Process| ExitStatus::Exited(0)))
    /// #     .build();
    /// # let plan = Plan::new().entry(PlanEntry {
    /// #     function: "read".into(),
    /// #     trigger: Trigger::on_call(1),
    /// #     action: FaultAction::return_value(-1).with_errno(5),
    /// # });
    /// # let mut client = fabric.handle().connect();
    /// # use lfi_fabric::JobState;
    /// # let job = client.submit(JobSpec::new("smoke", "noop", plan)).unwrap();
    /// assert_eq!(client.cancel(job).unwrap(), JobState::Cancelled);
    /// assert_eq!(client.cancel(job).unwrap(), JobState::Cancelled); // idempotent
    /// ```
    ///
    /// # Errors
    ///
    /// [`WireError`] on transport failure or an unknown job.
    pub fn cancel(&mut self, job: JobId) -> Result<JobState, WireError> {
        match self.request(&Request::Cancel { job })? {
            Response::StateChanged { state, .. } => Ok(state),
            other => Self::expect_error(other),
        }
    }

    /// Pauses a job; returns its state after the request.
    ///
    /// ```
    /// # use lfi_controller::FnWorkload;
    /// # use lfi_fabric::{Fabric, JobSpec};
    /// # use lfi_runtime::{ExitStatus, Process};
    /// # use lfi_scenario::{FaultAction, Plan, PlanEntry, Trigger};
    /// # let fabric = Fabric::builder()
    /// #     .workers(0) // inert fleet: the job stays queued, deterministically
    /// #     .register(FnWorkload::new("noop", Process::new, |_: &mut Process| ExitStatus::Exited(0)))
    /// #     .build();
    /// # let plan = Plan::new().entry(PlanEntry {
    /// #     function: "read".into(),
    /// #     trigger: Trigger::on_call(1),
    /// #     action: FaultAction::return_value(-1).with_errno(5),
    /// # });
    /// # let mut client = fabric.handle().connect();
    /// # use lfi_fabric::JobState;
    /// # let job = client.submit(JobSpec::new("smoke", "noop", plan)).unwrap();
    /// assert_eq!(client.pause(job).unwrap(), JobState::Paused);
    /// ```
    ///
    /// # Errors
    ///
    /// [`WireError`] on transport failure or an unknown job.
    pub fn pause(&mut self, job: JobId) -> Result<JobState, WireError> {
        match self.request(&Request::Pause { job })? {
            Response::StateChanged { state, .. } => Ok(state),
            other => Self::expect_error(other),
        }
    }

    /// Resumes a job; returns its state after the request.
    ///
    /// ```
    /// # use lfi_controller::FnWorkload;
    /// # use lfi_fabric::{Fabric, JobSpec};
    /// # use lfi_runtime::{ExitStatus, Process};
    /// # use lfi_scenario::{FaultAction, Plan, PlanEntry, Trigger};
    /// # let fabric = Fabric::builder()
    /// #     .workers(0) // inert fleet: the job stays queued, deterministically
    /// #     .register(FnWorkload::new("noop", Process::new, |_: &mut Process| ExitStatus::Exited(0)))
    /// #     .build();
    /// # let plan = Plan::new().entry(PlanEntry {
    /// #     function: "read".into(),
    /// #     trigger: Trigger::on_call(1),
    /// #     action: FaultAction::return_value(-1).with_errno(5),
    /// # });
    /// # let mut client = fabric.handle().connect();
    /// # use lfi_fabric::JobState;
    /// # let job = client.submit(JobSpec::new("smoke", "noop", plan)).unwrap();
    /// client.pause(job).unwrap();
    /// assert_eq!(client.resume(job).unwrap(), JobState::Running);
    /// ```
    ///
    /// # Errors
    ///
    /// [`WireError`] on transport failure or an unknown job.
    pub fn resume(&mut self, job: JobId) -> Result<JobState, WireError> {
        match self.request(&Request::Resume { job })? {
            Response::StateChanged { state, .. } => Ok(state),
            other => Self::expect_error(other),
        }
    }

    /// Fetches a job's crash-safe checkpoint.
    ///
    /// ```
    /// # use lfi_controller::FnWorkload;
    /// # use lfi_fabric::{Fabric, JobSpec};
    /// # use lfi_runtime::{ExitStatus, Process};
    /// # use lfi_scenario::{FaultAction, Plan, PlanEntry, Trigger};
    /// # let fabric = Fabric::builder()
    /// #     .workers(0) // inert fleet: the job stays queued, deterministically
    /// #     .register(FnWorkload::new("noop", Process::new, |_: &mut Process| ExitStatus::Exited(0)))
    /// #     .build();
    /// # let plan = Plan::new().entry(PlanEntry {
    /// #     function: "read".into(),
    /// #     trigger: Trigger::on_call(1),
    /// #     action: FaultAction::return_value(-1).with_errno(5),
    /// # });
    /// # let mut client = fabric.handle().connect();
    /// # let job = client.submit(JobSpec::new("smoke", "noop", plan)).unwrap();
    /// let store = client.checkpoint(job).unwrap();
    /// assert_eq!(store.frontier.len(), 1); // the untouched cell survives the trip
    /// ```
    ///
    /// # Errors
    ///
    /// [`WireError`] on transport failure, an unknown job, or a store
    /// document that does not parse.
    pub fn checkpoint(&mut self, job: JobId) -> Result<ExplorationStore, WireError> {
        match self.request(&Request::Checkpoint { job })? {
            Response::Checkpoint { store_xml, .. } => ExplorationStore::from_xml(&store_xml)
                .map_err(|error| WireError::malformed(format!("checkpoint is not store XML: {error}"))),
            other => Self::expect_error(other),
        }
    }

    /// Asks the fabric to drain.
    ///
    /// ```
    /// let fabric = lfi_fabric::Fabric::builder().workers(0).build();
    /// fabric.handle().connect().drain().unwrap();
    /// assert!(fabric.handle().is_draining());
    /// ```
    ///
    /// # Errors
    ///
    /// [`WireError`] on transport failure or an unexpected response.
    pub fn drain(&mut self) -> Result<(), WireError> {
        match self.request(&Request::Drain)? {
            Response::Draining => Ok(()),
            other => Self::expect_error(other),
        }
    }
}

impl std::fmt::Debug for FabricClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let transport = match &self.transport {
            Transport::Duplex { .. } => "duplex",
            Transport::Tcp { .. } => "tcp",
        };
        f.debug_struct("FabricClient").field("transport", &transport).finish()
    }
}
