//! # lfi-fabric — a multi-tenant campaign service over one shared fleet
//!
//! The paper's end state is LFI running continuously against every library
//! a team ships — not one ad-hoc `CampaignRun` per process.  This crate is
//! that long-running service: a [`Fabric`] owns a shared worker fleet, and
//! tenants submit named [`JobSpec`]s (a workload name from the shared
//! [`WorkloadRegistry`](lfi_controller::WorkloadRegistry), a fault plan,
//! and policy knobs) that are multiplexed over it.
//!
//! Three mechanisms carry the design:
//!
//! * **Work-stealing case leases with weighted fairness** — workers pull
//!   batches of fault-space cells (leases) from *any* runnable job; a
//!   deficit counter normalized by [`JobSpec::weight`] picks the next job,
//!   so a 1000-case exhaustive sweep cannot starve a 10-case smoke job.
//!   Each lease runs on the existing [`Campaign`](lfi_controller::Campaign)
//!   machinery as a serial session — the fleet is the parallelism.
//! * **Crash-safe handoff** — a lease not acked within its deadline (the
//!   worker panicked, hung, or the process was killed) returns to the
//!   job's frontier; late acks are discarded wholesale, so no cell is ever
//!   lost or double-counted.  A job's complete state serializes as a
//!   standard [`ExplorationStore`](lfi_explore::ExplorationStore)
//!   checkpoint ([`FabricHandle::checkpoint`] /
//!   [`FabricHandle::submit_restored`]), folded in process-independent
//!   cell order so interrupted and clean runs are byte-identical; and a
//!   job can attach an `lfi-store` write-ahead journal
//!   ([`FabricHandle::journal_job`] / [`FabricHandle::recover_job`]) that
//!   appends one CRC-framed ack record per lease, so recovering a killed
//!   process replays O(acks) deltas instead of rewriting a full
//!   checkpoint per batch.
//! * **A wire protocol** — a line-delimited request/response surface
//!   ([`Request`]/[`Response`]) served over an in-process duplex transport
//!   ([`FabricHandle::connect`]) and plain TCP
//!   ([`FabricHandle::serve_tcp`]), so progress snapshots and event
//!   streams are observable from outside the process.
//!
//! ```
//! use lfi_fabric::{Fabric, JobSpec};
//! use lfi_controller::FnWorkload;
//! use lfi_runtime::{ExitStatus, NativeLibrary, Process};
//! use lfi_scenario::{FaultAction, Plan, PlanEntry, Trigger};
//! use std::time::Duration;
//!
//! let fabric = Fabric::builder()
//!     .workers(2)
//!     .register(FnWorkload::new(
//!         "reader",
//!         || {
//!             let mut process = Process::new();
//!             process.load(NativeLibrary::builder("libc.so.6").function("read", |ctx| ctx.arg(2)).build());
//!             process
//!         },
//!         |process| match process.call("read", &[3, 0, 8]) {
//!             Ok(n) if n >= 0 => ExitStatus::Exited(0),
//!             _ => ExitStatus::Exited(1),
//!         },
//!     ))
//!     .build();
//! let plan = Plan::new().entry(PlanEntry {
//!     function: "read".into(),
//!     trigger: Trigger::on_call(1),
//!     action: FaultAction::return_value(-1).with_errno(5),
//! });
//! let job = fabric.submit(JobSpec::new("smoke", "reader", plan)).unwrap();
//! assert!(fabric.wait_idle(Duration::from_secs(30)));
//! let report = fabric.report(job).unwrap();
//! assert_eq!(report.coverage.executed, 1);
//! let reports = fabric.drain();
//! assert_eq!(reports.len(), 1);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fabric;
mod job;
mod scheduler;
mod server;
mod wire;

pub use fabric::{Fabric, FabricBuilder, FabricError, FabricHandle, DEFAULT_LEASE_BATCH, DEFAULT_LEASE_DEADLINE};
pub use job::{JobCoverage, JobEvent, JobEventKind, JobId, JobReport, JobSnapshot, JobSpec, JobState};
pub use server::{FabricClient, ServerGuard};
pub use wire::{escape, unescape, Request, Response, WireError};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FabricHandle>();
        assert_send_sync::<JobSpec>();
        assert_send_sync::<JobSnapshot>();
        assert_send_sync::<JobReport>();
        assert_send_sync::<Request>();
        assert_send_sync::<Response>();
        fn assert_send<T: Send>() {}
        assert_send::<Fabric>();
        assert_send::<FabricClient>();
    }
}
