//! The job model: what a tenant submits ([`JobSpec`]), how the fabric names
//! it ([`JobId`]), where it is in its lifecycle ([`JobState`]), and the
//! observable surfaces ([`JobSnapshot`], [`JobEvent`], [`JobReport`]).

use std::fmt;

use lfi_controller::ProgressSnapshot;
use lfi_explore::{CrashCluster, OutcomeClass};
use lfi_scenario::Plan;
use serde::{Deserialize, Serialize};

/// Identifier of a submitted job, unique within one fabric (ids are handed
/// out sequentially and never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Where a job is in its lifecycle.
///
/// ```text
/// Queued ──► Running ──► Done        (frontier drained, every lease acked)
///    │          │   └──► Failed      (workers panicked repeatedly)
///    │          ▼
///    ├──────► Paused ──► Running     (resume)
///    │          │
///    ▼          ▼
/// Cancelled  Cancelled               (terminal)
/// ```
///
/// `Done`, `Failed` and `Cancelled` are terminal; `Paused` only stops *new*
/// leases — outstanding leases finish and are folded in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Submitted, no lease issued yet.
    Queued,
    /// At least one lease issued; the frontier still holds (or leases still
    /// hold) work.
    Running,
    /// Paused: outstanding leases finish, no new lease is issued until
    /// resumed.
    Paused,
    /// Cancelled by a tenant (terminal); pending cells are counted skipped.
    Cancelled,
    /// Every cell acked, or a `halt_on_crash` job found its crash
    /// (terminal).
    Done,
    /// The job's leases made workers panic repeatedly (terminal).
    Failed,
}

impl JobState {
    /// True for the states no transition leaves.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Cancelled | JobState::Done | JobState::Failed)
    }

    /// Parses the [`fmt::Display`] form back (the wire protocol's state
    /// tokens).
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "paused" => Some(JobState::Paused),
            "cancelled" => Some(JobState::Cancelled),
            "done" => Some(JobState::Done),
            "failed" => Some(JobState::Failed),
            _ => None,
        }
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Paused => "paused",
            JobState::Cancelled => "cancelled",
            JobState::Done => "done",
            JobState::Failed => "failed",
        };
        f.write_str(text)
    }
}

/// What a tenant submits: a job name, the [`WorkloadRegistry`] key of the
/// application under test, the faultload whose deterministic cells form the
/// job's frontier, and the scheduling/policy knobs.
///
/// Unlike [`Campaign::from_generator`], the fabric keeps each cell's
/// *original* call ordinal (via [`FaultCell::plan_entry`]): a fabric job is
/// an exploration-style sweep of the plan's fault space, one process per
/// cell, so consecutive ordinals stay meaningful.
///
/// [`WorkloadRegistry`]: lfi_controller::WorkloadRegistry
/// [`Campaign::from_generator`]: lfi_controller::Campaign::from_generator
/// [`FaultCell::plan_entry`]: lfi_scenario::FaultCell::plan_entry
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Job name (report label; need not be unique).
    pub name: String,
    /// Registry key of the workload to drive.
    pub workload: String,
    /// The faultload; its deterministic cells (see
    /// [`CompiledPlan::cells`](lfi_scenario::CompiledPlan::cells)) become
    /// the job's frontier, in process-independent sort order.
    pub plan: Plan,
    /// Fair-share weight (≥ 1): a weight-2 job is issued twice the cells of
    /// a weight-1 job while both have work pending.
    pub weight: u32,
    /// Cells per lease; `None` uses the fabric's default.
    pub lease_batch: Option<usize>,
    /// Finish the job early (state `Done`) once a cell crashes the
    /// workload; remaining cells are counted skipped.
    pub halt_on_crash: bool,
    /// Truncates the enumerated frontier up front, like
    /// `ExecutionPolicy::max_cases`.
    pub max_cases: Option<usize>,
}

impl JobSpec {
    /// A job over `plan` driving the registered workload `workload`, with
    /// default knobs (weight 1, fabric default lease batch, run-all).
    pub fn new(name: impl Into<String>, workload: impl Into<String>, plan: Plan) -> Self {
        Self {
            name: name.into(),
            workload: workload.into(),
            plan,
            weight: 1,
            lease_batch: None,
            halt_on_crash: false,
            max_cases: None,
        }
    }

    /// Sets the fair-share weight (values below 1 are clamped to 1).
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Sets the cells-per-lease batch size for this job.
    pub fn lease_batch(mut self, cells: usize) -> Self {
        self.lease_batch = Some(cells.max(1));
        self
    }

    /// Finishes the job at the first crashing cell.
    pub fn halt_on_crash(mut self) -> Self {
        self.halt_on_crash = true;
        self
    }

    /// Bounds the job at `max` cells (frontier truncated up front).
    pub fn max_cases(mut self, max: usize) -> Self {
        self.max_cases = Some(max);
        self
    }
}

/// One observable event of a job's stream, sequence-numbered so a poller
/// (`events after=<seq>`) never re-reads or misses a delivered event.
#[derive(Debug, Clone, PartialEq)]
pub struct JobEvent {
    /// Position in the job's event stream (0-based, dense).
    pub seq: u64,
    /// What happened.
    pub kind: JobEventKind,
}

/// What a [`JobEvent`] reports.  Case-level kinds are re-keyed by case
/// *name* (cell-derived, stable across lease re-issues) instead of the
/// within-lease indices [`CaseEvent`](lfi_controller::CaseEvent) uses.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEventKind {
    /// The job changed lifecycle state.
    State(JobState),
    /// A worker started a case.
    Started {
        /// Cell-derived case name.
        case: String,
    },
    /// An injection was performed during a case (reported after the case's
    /// workload finished, like the underlying campaign stream).
    Injection {
        /// Cell-derived case name.
        case: String,
        /// Intercepted function.
        function: String,
        /// Injected return value, if the call was not passed through.
        retval: Option<i64>,
        /// Injected errno, if any.
        errno: Option<i64>,
    },
    /// A case ran to an outcome.
    Finished {
        /// Cell-derived case name.
        case: String,
        /// How the case ended, folded to the clustering classes.
        outcome: OutcomeClass,
        /// Injections performed during the case.
        injections: usize,
    },
    /// A case inside a lease was skipped (job cancelled or crash-halted
    /// mid-lease); its cell returns to the frontier unless the job is
    /// terminal.
    Skipped {
        /// Cell-derived case name.
        case: String,
    },
    /// A lease expired or its worker panicked: its unacked cells returned
    /// to the front of the frontier.
    Requeued {
        /// How many cells went back.
        cells: usize,
    },
}

/// A point-in-time view of one job, cheap to take while the fleet runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSnapshot {
    /// The job's id.
    pub id: JobId,
    /// The job's name.
    pub name: String,
    /// Registry key of the workload the job drives.
    pub workload: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Size of the enumerated cell universe (after `max_cases`).
    pub cases: usize,
    /// Cells waiting on the frontier.
    pub pending: usize,
    /// Cells currently out on unacked leases.
    pub outstanding: usize,
    /// Execution counters: `started` counts cells handed to workers
    /// (re-issued leases count again), the rest fold acked leases only.
    pub progress: ProgressSnapshot,
    /// Cells that returned to the frontier from expired or panicked leases.
    pub requeued: u64,
    /// Distinct crash/failure clusters observed so far.
    pub clusters: usize,
}

/// Aggregate coverage of a job's cell universe (the fabric analogue of
/// [`CoverageSummary`](lfi_explore::CoverageSummary)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobCoverage {
    /// Cells enumerated from the plan (after `max_cases`).
    pub universe: usize,
    /// Cells acked with an outcome (including cells restored from a
    /// checkpoint as already-executed).
    pub executed: usize,
    /// Executed cells whose injection actually fired.
    pub triggered: usize,
    /// Executed cells whose workload died on a signal.
    pub crashes: usize,
    /// Executed cells whose workload exited non-zero without crashing.
    pub failures: usize,
    /// Cells counted skipped (cancel / crash-halt).
    pub skipped: usize,
}

/// The final (or interim) result of a job: coverage plus the deduplicated
/// outcome clusters, both derived by folding the per-cell results in
/// process-independent cell order — so a run interrupted by worker deaths
/// and an uninterrupted run produce byte-identical reports.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// The job's id.
    pub id: JobId,
    /// The job's name.
    pub name: String,
    /// Lifecycle state at report time.
    pub state: JobState,
    /// Aggregate coverage numbers.
    pub coverage: JobCoverage,
    /// Deduplicated non-success clusters, keyed like
    /// [`CrashCluster`](lfi_explore::CrashCluster) (function, stack,
    /// outcome class), in sorted-cell discovery order.
    pub clusters: Vec<CrashCluster>,
}

impl JobReport {
    /// The clusters that are signal deaths.
    pub fn crash_clusters(&self) -> impl Iterator<Item = &CrashCluster> {
        self.clusters.iter().filter(|c| c.is_crash())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_state_display_round_trips() {
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Paused,
            JobState::Cancelled,
            JobState::Done,
            JobState::Failed,
        ] {
            assert_eq!(JobState::parse(&state.to_string()), Some(state));
        }
        assert_eq!(JobState::parse("melted"), None);
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(!JobState::Paused.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(!JobState::Queued.is_terminal());
    }

    #[test]
    fn job_spec_builder_clamps_and_sets() {
        let spec = JobSpec::new("sweep", "pidgin-login", Plan::new())
            .weight(0)
            .lease_batch(0)
            .halt_on_crash()
            .max_cases(7);
        assert_eq!(spec.weight, 1, "weight clamps to >= 1");
        assert_eq!(spec.lease_batch, Some(1), "lease batch clamps to >= 1");
        assert!(spec.halt_on_crash);
        assert_eq!(spec.max_cases, Some(7));
        assert_eq!(JobId(3).to_string(), "3");
    }
}
