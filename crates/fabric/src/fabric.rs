//! The fabric runtime: a shared worker fleet pulling case leases from the
//! [`Scheduler`], the public [`Fabric`]/[`FabricHandle`] surface, and the
//! per-lease bridge onto the existing [`Campaign`] machinery.

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lfi_controller::{Campaign, CaseEvent, ExecutionPolicy, TestCase, Workload, WorkloadRegistry};
use lfi_explore::{ExplorationStore, OutcomeClass};
use lfi_scenario::Plan;
use lfi_store::{AckOutcome, AckRecord, Journal, Record, StoreError};

use crate::job::{JobEvent, JobEventKind, JobId, JobReport, JobSnapshot, JobSpec, JobState};
use crate::scheduler::{case_name, CellOutcome, LeaseAssignment, LeaseResult, Scheduler};

/// Default number of cells per lease.
pub const DEFAULT_LEASE_BATCH: usize = 8;

/// Default deadline before an unacked lease returns to its job's frontier.
pub const DEFAULT_LEASE_DEADLINE: Duration = Duration::from_secs(60);

/// How long an idle worker parks before re-checking deadlines and flags.
const WORKER_PARK: Duration = Duration::from_millis(25);

/// Ack records a job's journal accumulates before an append compacts it
/// back into a single fresh checkpoint snapshot.
const JOURNAL_COMPACT_EVERY: u64 = 32;

/// Errors surfaced by fabric requests.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FabricError {
    /// The submitted spec names a workload the registry does not hold.
    UnknownWorkload {
        /// The name that failed to resolve.
        name: String,
    },
    /// The request named a job id the fabric does not know.
    UnknownJob {
        /// The unresolved id.
        job: JobId,
    },
    /// A journal file could not be created, recovered or replayed.
    Journal {
        /// The journal path involved.
        path: PathBuf,
        /// The underlying store error, rendered.
        message: String,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::UnknownWorkload { name } => write!(f, "no workload registered under {name:?}"),
            FabricError::UnknownJob { job } => write!(f, "no job with id {job}"),
            FabricError::Journal { path, message } => write!(f, "journal {}: {message}", path.display()),
        }
    }
}

impl std::error::Error for FabricError {}

/// Shared state of one fabric: the scheduler under its mutex, the workload
/// registry, and the condition variables the fleet parks on.
struct FabricInner {
    sched: Mutex<Scheduler>,
    registry: Mutex<WorkloadRegistry>,
    /// Per-job write-ahead ack journals (`lfi-store` files).  Lock order:
    /// `sched` strictly before `journals` — every acquisition of this mutex
    /// happens while `sched` is held, so append/compact can never interleave
    /// with a checkpoint of a half-acked state.
    journals: Mutex<HashMap<u64, JobJournal>>,
    /// Signalled when new work may be available (submit, ack, resume).
    work: Condvar,
    /// Signalled after every ack, for `wait_idle`/`wait_job` pollers.
    idle: Condvar,
    draining: AtomicBool,
    shutdown: AtomicBool,
}

/// Locks a `std::sync` mutex, riding through poisoning: the scheduler's
/// invariants hold between method calls, and a worker panic is already
/// contained by `catch_unwind`.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl FabricInner {
    fn notify(&self) {
        self.work.notify_all();
        self.idle.notify_all();
    }
}

/// One job's open ack journal plus its health.  A persistence failure
/// mid-run is recorded here — workers never panic over journal IO — and
/// surfaced through [`FabricHandle::journal_error`].
struct JobJournal {
    journal: Journal,
    error: Option<StoreError>,
}

/// The journaled twin of a worker's [`LeaseResult`]: the per-cell outcomes
/// and the skipped cells, without the transient event stream (the event
/// ring is runtime observability, not durable state).
fn result_to_ack(result: &LeaseResult) -> AckRecord {
    AckRecord {
        outcomes: result
            .outcomes
            .iter()
            .map(|(cell, outcome)| AckOutcome {
                cell: *cell,
                outcome: outcome.outcome,
                injections: outcome.injections as u64,
                triggered: outcome.triggered,
                stack: outcome.stack.clone(),
                case: outcome.case.clone(),
            })
            .collect(),
        skipped: result.skipped.clone(),
    }
}

/// The inverse of [`result_to_ack`], for recovery replay.  Events are
/// empty by design: replay reconstructs durable state, not the ring.
fn ack_to_result(ack: AckRecord) -> LeaseResult {
    LeaseResult {
        events: Vec::new(),
        outcomes: ack
            .outcomes
            .into_iter()
            .map(|outcome| {
                (
                    outcome.cell,
                    CellOutcome {
                        outcome: outcome.outcome,
                        injections: outcome.injections as usize,
                        triggered: outcome.triggered,
                        stack: outcome.stack,
                        case: outcome.case,
                    },
                )
            })
            .collect(),
        skipped: ack.skipped,
    }
}

/// Appends one ack to `job`'s journal, if it has one, compacting back to a
/// fresh checkpoint snapshot every [`JOURNAL_COMPACT_EVERY`] acks.  Called
/// with the scheduler lock held (see the lock-order note on
/// [`FabricInner::journals`]) so the ack landing in the scheduler and the
/// ack landing in the journal are one atomic step.  IO failures park the
/// journal in an error state instead of panicking the worker.
fn journal_append(inner: &FabricInner, sched: &Scheduler, job: JobId, ack: AckRecord) {
    let mut journals = lock(&inner.journals);
    let Some(entry) = journals.get_mut(&job.0) else {
        return;
    };
    if entry.error.is_some() {
        return;
    }
    let appended = entry.journal.append(&Record::Ack(ack)).and_then(|()| {
        if entry.journal.appended() < JOURNAL_COMPACT_EVERY {
            return Ok(());
        }
        match sched.checkpoint(job) {
            Some(store) => entry.journal.compact(&Record::ExplorationSnapshot(store)),
            None => Ok(()),
        }
    });
    if let Err(error) = appended {
        entry.error = Some(error);
    }
}

/// Builder for a [`Fabric`]: fleet size, lease parameters and the shared
/// workload registry.
pub struct FabricBuilder {
    workers: usize,
    lease_batch: usize,
    lease_deadline: Duration,
    registry: WorkloadRegistry,
}

impl Default for FabricBuilder {
    fn default() -> Self {
        Self {
            workers: 2,
            lease_batch: DEFAULT_LEASE_BATCH,
            lease_deadline: DEFAULT_LEASE_DEADLINE,
            registry: WorkloadRegistry::new(),
        }
    }
}

impl FabricBuilder {
    /// A builder with the defaults: two workers, batch
    /// [`DEFAULT_LEASE_BATCH`], deadline [`DEFAULT_LEASE_DEADLINE`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Size of the shared worker fleet.  `0` builds an inert fabric that
    /// accepts and checkpoints jobs but executes nothing — useful for
    /// staging work to hand to another fabric.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Default cells per lease for jobs that do not set their own
    /// [`JobSpec::lease_batch`].
    pub fn lease_batch(mut self, cells: usize) -> Self {
        self.lease_batch = cells.max(1);
        self
    }

    /// Deadline before an unacked lease is declared lost and its cells
    /// return to the owning job's frontier.
    pub fn lease_deadline(mut self, deadline: Duration) -> Self {
        self.lease_deadline = deadline;
        self
    }

    /// Replaces the fabric's workload registry wholesale.
    pub fn registry(mut self, registry: WorkloadRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Registers one workload (last registration wins, like the registry).
    pub fn register(mut self, workload: impl Workload + 'static) -> Self {
        self.registry.register(workload);
        self
    }

    /// Registers an already-shared workload.
    pub fn register_arc(mut self, workload: Arc<dyn Workload>) -> Self {
        self.registry.register_arc(workload);
        self
    }

    /// Spawns the worker fleet and returns the running fabric.
    pub fn build(self) -> Fabric {
        let inner = Arc::new(FabricInner {
            sched: Mutex::new(Scheduler::new(self.lease_batch, self.lease_deadline)),
            registry: Mutex::new(self.registry),
            journals: Mutex::new(HashMap::new()),
            work: Condvar::new(),
            idle: Condvar::new(),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..self.workers)
            .map(|worker| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("lfi-fabric-{worker}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("fabric worker thread spawns")
            })
            .collect();
        Fabric { handle: FabricHandle { inner }, workers }
    }
}

/// A running campaign fabric: the owner of the worker fleet.  Dereferences
/// to [`FabricHandle`] for the whole request surface; [`Fabric::drain`]
/// shuts the fleet down cleanly and returns the final job reports.
pub struct Fabric {
    handle: FabricHandle,
    workers: Vec<JoinHandle<()>>,
}

impl Fabric {
    /// Starts configuring a fabric.
    pub fn builder() -> FabricBuilder {
        FabricBuilder::new()
    }

    /// A clonable, sendable handle to this fabric (what servers and other
    /// threads hold).
    pub fn handle(&self) -> FabricHandle {
        self.handle.clone()
    }

    /// Stops accepting useful work, lets the fleet finish every runnable
    /// job, joins the workers, and returns the final reports in job-id
    /// order.
    pub fn drain(mut self) -> Vec<JobReport> {
        self.handle.begin_drain();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        lock(&self.handle.inner.sched).reports()
    }
}

impl Drop for Fabric {
    fn drop(&mut self) {
        self.handle.inner.shutdown.store(true, Ordering::Release);
        lock(&self.handle.inner.sched).cancel_outstanding();
        self.handle.inner.notify();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::ops::Deref for Fabric {
    type Target = FabricHandle;

    fn deref(&self) -> &FabricHandle {
        &self.handle
    }
}

impl fmt::Debug for Fabric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fabric").field("workers", &self.workers.len()).finish()
    }
}

/// A clonable handle to a fabric: submit jobs, observe them, cancel them.
/// All methods are safe to call from any thread, including wire-protocol
/// server threads.
#[derive(Clone)]
pub struct FabricHandle {
    inner: Arc<FabricInner>,
}

impl FabricHandle {
    /// Registers a workload with the fabric's shared registry.
    pub fn register(&self, workload: impl Workload + 'static) {
        lock(&self.inner.registry).register(workload);
    }

    /// Registers an already-shared workload.
    pub fn register_arc(&self, workload: Arc<dyn Workload>) {
        lock(&self.inner.registry).register_arc(workload);
    }

    /// The registered workload names, sorted.
    pub fn workload_names(&self) -> Vec<String> {
        lock(&self.inner.registry).names().map(str::to_owned).collect()
    }

    fn resolve(&self, spec: &JobSpec) -> Result<Arc<dyn Workload>, FabricError> {
        lock(&self.inner.registry)
            .get(&spec.workload)
            .ok_or_else(|| FabricError::UnknownWorkload { name: spec.workload.clone() })
    }

    /// Submits a job; its plan's deterministic cells become the frontier.
    ///
    /// # Errors
    ///
    /// [`FabricError::UnknownWorkload`] when the spec's workload name is
    /// not registered.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, FabricError> {
        let workload = self.resolve(&spec)?;
        let id = lock(&self.inner.sched).submit(spec, workload);
        self.inner.notify();
        Ok(id)
    }

    /// Submits a job resuming from a checkpoint taken by
    /// [`FabricHandle::checkpoint`] (possibly in another process): the
    /// store's frontier is the pending work, its executed state is carried
    /// over, and no carried-over cell is re-executed.
    ///
    /// # Errors
    ///
    /// [`FabricError::UnknownWorkload`] when the spec's workload name is
    /// not registered.
    pub fn submit_restored(&self, spec: JobSpec, store: &ExplorationStore) -> Result<JobId, FabricError> {
        let workload = self.resolve(&spec)?;
        let id = lock(&self.inner.sched).submit_restored(spec, workload, store);
        self.inner.notify();
        Ok(id)
    }

    /// Snapshots of every job, in id order.
    pub fn jobs(&self) -> Vec<JobSnapshot> {
        lock(&self.inner.sched).snapshots()
    }

    /// A point-in-time snapshot of one job.
    pub fn status(&self, job: JobId) -> Option<JobSnapshot> {
        lock(&self.inner.sched).snapshot(job)
    }

    /// The job's buffered events with `seq >= from` (at most `max`), plus
    /// the cursor to pass on the next poll.  The buffer is a ring: a very
    /// slow poller may miss events that have already fallen off.
    pub fn events(&self, job: JobId, from: u64, max: usize) -> Option<(u64, Vec<JobEvent>)> {
        lock(&self.inner.sched).events(job, from, max)
    }

    /// Cancels a job (idempotent): pending cells are skipped, in-flight
    /// leases are cancelled through their campaign handles.
    pub fn cancel(&self, job: JobId) -> Option<JobState> {
        let state = lock(&self.inner.sched).cancel(job);
        self.inner.notify();
        state
    }

    /// Pauses a job: outstanding leases finish, no new lease is issued.
    pub fn pause(&self, job: JobId) -> Option<JobState> {
        let state = lock(&self.inner.sched).pause(job);
        self.inner.notify();
        state
    }

    /// Resumes a paused job.
    pub fn resume(&self, job: JobId) -> Option<JobState> {
        let state = lock(&self.inner.sched).resume(job);
        self.inner.notify();
        state
    }

    /// Serializes the job's complete state as an [`ExplorationStore`] (the
    /// crash-safe handoff format) — pending and leased cells in the
    /// frontier, acked cells with coverage and clusters folded in
    /// process-independent order.
    pub fn checkpoint(&self, job: JobId) -> Option<ExplorationStore> {
        lock(&self.inner.sched).checkpoint(job)
    }

    /// Attaches a write-ahead journal to `job` at `path`: the file opens
    /// with the job's full checkpoint snapshot, and from then on every
    /// acked lease appends one O(lease) ack record — so keeping the job
    /// recoverable costs the delta, not a full re-checkpoint.  The journal
    /// compacts itself back to a single fresh snapshot periodically.
    ///
    /// [`FabricHandle::recover_job`] in a later process replays the file
    /// back into an equivalent job.  Journaling from submission (before the
    /// first lease) makes recovery byte-identical to a live checkpoint;
    /// attaching mid-run inherits the same contract as
    /// [`checkpoint`](FabricHandle::checkpoint) +
    /// [`submit_restored`](FabricHandle::submit_restored).
    ///
    /// # Errors
    ///
    /// [`FabricError::UnknownJob`] for an unknown id;
    /// [`FabricError::Journal`] when the file cannot be created.
    pub fn journal_job(&self, job: JobId, path: impl AsRef<Path>) -> Result<(), FabricError> {
        let path = path.as_ref();
        // Hold the scheduler lock across snapshot + registration so no ack
        // can land between the checkpoint and the journal starting.
        let sched = lock(&self.inner.sched);
        let store = sched.checkpoint(job).ok_or(FabricError::UnknownJob { job })?;
        let journal = Journal::create(path, &Record::ExplorationSnapshot(store))
            .map_err(|error| FabricError::Journal { path: path.to_path_buf(), message: error.to_string() })?;
        lock(&self.inner.journals).insert(job.0, JobJournal { journal, error: None });
        drop(sched);
        Ok(())
    }

    /// Recovers a job from a journal written by
    /// [`FabricHandle::journal_job`] — typically in a previous process that
    /// was killed mid-run.  The journal's durable tail (a torn final append
    /// is truncated) is replayed: the leading snapshot seeds the job via
    /// the restore path, then every ack record folds through the same
    /// scheduler transition the live ack took.  The recovered job continues
    /// journaling to the same file.
    ///
    /// Cells that were leased but never acked at kill time are still in
    /// the frontier — they were never durably executed, so they run again.
    ///
    /// # Errors
    ///
    /// [`FabricError::UnknownWorkload`] when the spec's workload name is
    /// not registered; [`FabricError::Journal`] when the file cannot be
    /// read or is not a fabric job journal.
    pub fn recover_job(&self, spec: JobSpec, path: impl AsRef<Path>) -> Result<JobId, FabricError> {
        let path = path.as_ref();
        let journal_error = |message: String| FabricError::Journal { path: path.to_path_buf(), message };
        let workload = self.resolve(&spec)?;
        let (journal, records) = Journal::open(path).map_err(|error| journal_error(error.to_string()))?;
        let mut records = records.into_iter();
        let snapshot = match records.next() {
            Some(Record::ExplorationSnapshot(store)) => store,
            _ => return Err(journal_error("journal does not start with an exploration snapshot".into())),
        };
        let mut acks = Vec::new();
        for record in records {
            match record {
                Record::Ack(ack) => acks.push(ack),
                _ => return Err(journal_error("foreign record kind in job journal".into())),
            }
        }
        let mut sched = lock(&self.inner.sched);
        let job = sched.submit_restored(spec, workload, &snapshot);
        for ack in acks {
            sched.replay_ack(job, ack_to_result(ack));
        }
        lock(&self.inner.journals).insert(job.0, JobJournal { journal, error: None });
        drop(sched);
        self.inner.notify();
        Ok(job)
    }

    /// The error that stopped `job`'s journal, if journaling broke mid-run
    /// (rendered; the journal stops appending after its first failure).
    /// `None` for jobs without a journal or with a healthy one.
    pub fn journal_error(&self, job: JobId) -> Option<String> {
        let sched = lock(&self.inner.sched);
        let journals = lock(&self.inner.journals);
        let error = journals.get(&job.0).and_then(|entry| entry.error.as_ref().map(ToString::to_string));
        drop(sched);
        error
    }

    /// The job's coverage/cluster report (valid mid-run; final once the
    /// job is terminal).
    pub fn report(&self, job: JobId) -> Option<JobReport> {
        lock(&self.inner.sched).report(job)
    }

    /// All job reports, in id order.
    pub fn reports(&self) -> Vec<JobReport> {
        lock(&self.inner.sched).reports()
    }

    /// The ids of every submitted job, in order.
    pub fn job_ids(&self) -> Vec<JobId> {
        lock(&self.inner.sched).job_ids()
    }

    /// Flags the fabric as draining: workers finish every runnable job and
    /// then exit.  The [`Fabric`] owner joins them via [`Fabric::drain`];
    /// wire-protocol clients trigger this through the `drain` request.
    pub fn begin_drain(&self) {
        self.inner.draining.store(true, Ordering::Release);
        self.inner.notify();
    }

    /// True once [`FabricHandle::begin_drain`] was called.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::Acquire)
    }

    /// Blocks until no job can make further progress (all terminal or
    /// paused, nothing leased), or until `timeout` elapses.  Returns
    /// whether quiescence was reached.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut sched = lock(&self.inner.sched);
        loop {
            if sched.quiescent() {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let wait = (deadline - now).min(WORKER_PARK);
            sched = self
                .inner
                .idle
                .wait_timeout(sched, wait)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }

    /// Blocks until `job` reaches a terminal state (returning it), or until
    /// `timeout` elapses (returning the current state; `None` for an
    /// unknown job).
    pub fn wait_job(&self, job: JobId, timeout: Duration) -> Option<JobState> {
        let deadline = Instant::now() + timeout;
        let mut sched = lock(&self.inner.sched);
        loop {
            let state = sched.state(job)?;
            if state.is_terminal() {
                return Some(state);
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(state);
            }
            let wait = (deadline - now).min(WORKER_PARK);
            sched = self
                .inner
                .idle
                .wait_timeout(sched, wait)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }
}

impl fmt::Debug for FabricHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FabricHandle").field("draining", &self.is_draining()).finish()
    }
}

/// One worker of the fleet: pull a lease from any runnable job, run it as a
/// single-threaded campaign, ack (or, if the workload killed us, let the
/// scheduler requeue the lease).  The `catch_unwind` is the crash-safety
/// boundary: a panicking workload takes down its lease, never the fleet.
fn worker_loop(inner: &FabricInner) {
    loop {
        let assignment = {
            let mut sched = lock(&inner.sched);
            loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                sched.expire(Instant::now());
                if let Some(assignment) = sched.next_lease(Instant::now()) {
                    break assignment;
                }
                if inner.draining.load(Ordering::Acquire) && sched.quiescent() {
                    return;
                }
                sched = inner
                    .work
                    .wait_timeout(sched, WORKER_PARK)
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0;
            }
        };
        let (job, lease) = (assignment.job, assignment.lease);
        let result = catch_unwind(AssertUnwindSafe(|| run_lease(inner, assignment)));
        {
            let mut sched = lock(&inner.sched);
            match result {
                Ok(result) => {
                    // Convert before acking (the ack consumes the result),
                    // but only journal what the scheduler actually counted:
                    // a stale ack must not reach the journal either.
                    let ack = lock(&inner.journals).contains_key(&job.0).then(|| result_to_ack(&result));
                    if sched.ack(job, lease, result) {
                        if let Some(ack) = ack {
                            journal_append(inner, &sched, job, ack);
                        }
                    }
                }
                Err(_) => {
                    sched.requeue_panic(job, lease);
                }
            };
        }
        inner.notify();
    }
}

/// Runs one lease's cells as a `parallelism(1)` campaign over the job's
/// workload (the fabric's fleet *is* the parallelism) and folds the event
/// stream into the ack payload.
fn run_lease(inner: &FabricInner, assignment: LeaseAssignment) -> LeaseResult {
    let cells = assignment.cells;
    let cases: Vec<TestCase> = cells
        .iter()
        .map(|cell| TestCase::new(case_name(cell), Plan { entries: vec![cell.plan_entry()], seed: assignment.seed }))
        .collect();
    let mut policy = ExecutionPolicy::run_all();
    if assignment.halt_on_crash {
        policy = policy.stop_on_first_crash();
    }
    let run = Campaign::new().cases(cases).policy(policy).parallelism(1).start_arc(assignment.workload);
    // Hand the run's cancel handle to the scheduler so a job cancel (or a
    // lease expiry) stops this run at its next case boundary.  If the lease
    // already went stale, stop immediately — the work would be discarded.
    let handle = run.cancel_handle();
    if !lock(&inner.sched).attach_cancel(assignment.job, assignment.lease, handle.clone()) {
        handle.cancel();
    }

    let mut result = LeaseResult::default();
    let mut stacks: Vec<Vec<lfi_intern::Symbol>> = vec![Vec::new(); cells.len()];
    for event in run {
        match event {
            CaseEvent::Started { index, name } => {
                result.events.push(JobEventKind::Started { case: name });
                let _ = index;
            }
            CaseEvent::Injection { index, record } => {
                if stacks[index].is_empty() {
                    stacks[index] = record.stack.clone();
                }
                result.events.push(JobEventKind::Injection {
                    case: case_name(&cells[index]),
                    function: record.function_name().to_owned(),
                    retval: record.retval,
                    errno: record.errno,
                });
            }
            CaseEvent::Outcome { index, outcome } => {
                let class = OutcomeClass::of(outcome.status);
                let injections = outcome.injection_count();
                result
                    .events
                    .push(JobEventKind::Finished { case: outcome.name.clone(), outcome: class, injections });
                result.outcomes.push((
                    cells[index],
                    CellOutcome {
                        outcome: class,
                        injections,
                        triggered: injections > 0,
                        stack: std::mem::take(&mut stacks[index]),
                        case: outcome.name,
                    },
                ));
            }
            CaseEvent::Skipped { index, name, .. } => {
                result.events.push(JobEventKind::Skipped { case: name });
                result.skipped.push(cells[index]);
            }
        }
    }
    result
}
