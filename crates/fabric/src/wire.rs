//! The line-delimited wire protocol: one request per line, one response
//! per line, tokens as `key=value` pairs with percent-escaped values.
//!
//! The vendored serde shims are API-parity no-ops, so — exactly like the
//! scenario XML dialect — encoding is hand-rolled and fully round-trip
//! tested.  The grammar is deliberately trivial to speak from `netcat`:
//!
//! ```text
//! submit name=smoke workload=pidgin-login plan=%3Cplan%3E...%3C/plan%3E
//! submitted job=1
//! status job=1
//! status job=1 name=smoke workload=pidgin-login state=running ...
//! ```
//!
//! Escaped values never contain spaces, `=`, `;`, `,` or `:` — those are
//! the protocol's only structural characters, so splitting is unambiguous.

use std::fmt;

use lfi_explore::OutcomeClass;

use crate::job::{JobEvent, JobEventKind, JobId, JobSnapshot, JobSpec, JobState};
use lfi_scenario::Plan;

/// A malformed request or response line.
///
/// ```
/// use lfi_fabric::{Request, WireError};
///
/// let error = Request::parse("warp job=1").unwrap_err();
/// assert!(matches!(error, WireError::Malformed { .. }));
/// assert!(error.to_string().contains("unknown request verb"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The line did not follow the protocol grammar.
    Malformed {
        /// What was wrong.
        message: String,
    },
    /// The transport failed (connection closed, I/O error).
    Transport {
        /// The underlying error, rendered.
        message: String,
    },
}

impl WireError {
    pub(crate) fn malformed(message: impl Into<String>) -> Self {
        WireError::Malformed { message: message.into() }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Malformed { message } => write!(f, "malformed wire message: {message}"),
            WireError::Transport { message } => write!(f, "wire transport failed: {message}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Percent-escapes a value: only ASCII alphanumerics, `-`, `_` and `.`
/// pass through, so the escaped form is free of every structural
/// character.
///
/// ```
/// assert_eq!(lfi_fabric::escape("login sweep"), "login%20sweep");
/// assert_eq!(lfi_fabric::escape("a=b;c"), "a%3Db%3Bc");
/// assert_eq!(lfi_fabric::escape("plain-1.2_ok"), "plain-1.2_ok");
/// ```
pub fn escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for byte in value.bytes() {
        if byte.is_ascii_alphanumeric() || matches!(byte, b'-' | b'_' | b'.') {
            out.push(byte as char);
        } else {
            out.push_str(&format!("%{byte:02X}"));
        }
    }
    out
}

/// Reverses [`escape`].
///
/// ```
/// assert_eq!(lfi_fabric::unescape("login%20sweep").unwrap(), "login sweep");
/// assert!(lfi_fabric::unescape("%4").is_err()); // truncated escape
/// ```
///
/// # Errors
///
/// [`WireError::Malformed`] on a truncated or non-hex `%` sequence, or
/// invalid UTF-8 after unescaping.
pub fn unescape(value: &str) -> Result<String, WireError> {
    let mut out = Vec::with_capacity(value.len());
    let bytes = value.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .and_then(|pair| std::str::from_utf8(pair).ok())
                .and_then(|pair| u8::from_str_radix(pair, 16).ok())
                .ok_or_else(|| WireError::malformed(format!("bad escape in {value:?}")))?;
            out.push(hex);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| WireError::malformed("escape decodes to invalid UTF-8"))
}

/// A request line, parsed.
///
/// Every request round-trips through its wire line:
///
/// ```
/// use lfi_fabric::{JobId, Request};
///
/// let request = Request::Events { job: JobId(4), after: 17, max: 100 };
/// let line = request.encode();
/// assert_eq!(line, "events job=4 after=17 max=100");
/// assert_eq!(Request::parse(&line).unwrap(), request);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// List every job (id, name, state).
    Jobs,
    /// Submit a job.
    Submit {
        /// The job to run; the plan travels as escaped XML.
        spec: JobSpec,
    },
    /// Snapshot one job.
    Status {
        /// The job to snapshot.
        job: JobId,
    },
    /// Poll a job's event stream.
    Events {
        /// The job to poll.
        job: JobId,
        /// Cursor: return events with `seq >= after` (`next` from the
        /// previous response; start at 0).
        after: u64,
        /// At most this many events.
        max: usize,
    },
    /// Cancel a job (idempotent).
    Cancel {
        /// The job to cancel.
        job: JobId,
    },
    /// Pause a job.
    Pause {
        /// The job to pause.
        job: JobId,
    },
    /// Resume a paused job.
    Resume {
        /// The job to resume.
        job: JobId,
    },
    /// Fetch a job's crash-safe checkpoint as `ExplorationStore` XML.
    Checkpoint {
        /// The job to checkpoint.
        job: JobId,
    },
    /// Ask the fabric to finish all runnable work and wind down.
    Drain,
}

/// A response line, parsed.
///
/// Every response round-trips through its wire line:
///
/// ```
/// use lfi_fabric::{JobId, JobState, Response};
///
/// let response = Response::StateChanged { job: JobId(2), state: JobState::Cancelled };
/// let line = response.encode();
/// assert_eq!(line, "state job=2 state=cancelled");
/// assert_eq!(Response::parse(&line).unwrap(), response);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Jobs`].
    Jobs {
        /// `(id, name, state)` per job, in id order.
        jobs: Vec<(JobId, String, JobState)>,
    },
    /// Reply to [`Request::Submit`].
    Submitted {
        /// The assigned id.
        job: JobId,
    },
    /// Reply to [`Request::Status`].
    Status {
        /// The snapshot.
        snapshot: JobSnapshot,
    },
    /// Reply to [`Request::Events`].
    Events {
        /// The polled job.
        job: JobId,
        /// Cursor for the next poll.
        next: u64,
        /// The events, in sequence order.
        events: Vec<JobEvent>,
    },
    /// Reply to cancel/pause/resume.
    StateChanged {
        /// The affected job.
        job: JobId,
        /// Its state after the request.
        state: JobState,
    },
    /// Reply to [`Request::Checkpoint`].
    Checkpoint {
        /// The checkpointed job.
        job: JobId,
        /// The `ExplorationStore` document.
        store_xml: String,
    },
    /// Reply to [`Request::Drain`].
    Draining,
    /// Any request that failed.
    Error {
        /// Why.
        message: String,
    },
}

/// A parsed line's `key=value` fields, in wire order.
type Fields<'a> = Vec<(&'a str, &'a str)>;

/// Splits a line into its verb and `key=value` fields.
fn fields(line: &str) -> Result<(&str, Fields<'_>), WireError> {
    let mut tokens = line.split_ascii_whitespace();
    let verb = tokens.next().ok_or_else(|| WireError::malformed("empty line"))?;
    let mut pairs = Vec::new();
    for token in tokens {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| WireError::malformed(format!("token {token:?} is not key=value")))?;
        pairs.push((key, value));
    }
    Ok((verb, pairs))
}

fn find<'a>(pairs: &[(&str, &'a str)], key: &str) -> Result<&'a str, WireError> {
    pairs
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| WireError::malformed(format!("missing {key}= field")))
}

fn find_opt<'a>(pairs: &[(&str, &'a str)], key: &str) -> Option<&'a str> {
    pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

fn number<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, WireError> {
    value
        .parse()
        .map_err(|_| WireError::malformed(format!("{key}={value:?} is not a number")))
}

fn job_field(pairs: &[(&str, &str)]) -> Result<JobId, WireError> {
    Ok(JobId(number("job", find(pairs, "job")?)?))
}

fn state_field(key: &str, value: &str) -> Result<JobState, WireError> {
    JobState::parse(value).ok_or_else(|| WireError::malformed(format!("{key}={value:?} is not a job state")))
}

impl Request {
    /// Renders the request as one protocol line (no trailing newline).
    ///
    /// ```
    /// use lfi_fabric::{JobId, Request};
    ///
    /// assert_eq!(Request::Ping.encode(), "ping");
    /// assert_eq!(Request::Status { job: JobId(4) }.encode(), "status job=4");
    /// ```
    pub fn encode(&self) -> String {
        match self {
            Request::Ping => "ping".into(),
            Request::Jobs => "jobs".into(),
            Request::Submit { spec } => {
                let mut line = format!(
                    "submit name={} workload={} plan={}",
                    escape(&spec.name),
                    escape(&spec.workload),
                    escape(&spec.plan.to_xml())
                );
                if spec.weight != 1 {
                    line.push_str(&format!(" weight={}", spec.weight));
                }
                if let Some(batch) = spec.lease_batch {
                    line.push_str(&format!(" lease-batch={batch}"));
                }
                if spec.halt_on_crash {
                    line.push_str(" halt-on-crash=true");
                }
                if let Some(max) = spec.max_cases {
                    line.push_str(&format!(" max-cases={max}"));
                }
                line
            }
            Request::Status { job } => format!("status job={job}"),
            Request::Events { job, after, max } => format!("events job={job} after={after} max={max}"),
            Request::Cancel { job } => format!("cancel job={job}"),
            Request::Pause { job } => format!("pause job={job}"),
            Request::Resume { job } => format!("resume job={job}"),
            Request::Checkpoint { job } => format!("checkpoint job={job}"),
            Request::Drain => "drain".into(),
        }
    }

    /// Parses one request line.
    ///
    /// ```
    /// use lfi_fabric::{JobId, Request};
    ///
    /// assert_eq!(Request::parse("cancel job=7").unwrap(), Request::Cancel { job: JobId(7) });
    /// assert!(Request::parse("status").is_err()); // missing job= field
    /// ```
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] on an unknown verb, missing fields, or a
    /// plan that is not valid scenario XML.
    pub fn parse(line: &str) -> Result<Request, WireError> {
        let (verb, pairs) = fields(line)?;
        match verb {
            "ping" => Ok(Request::Ping),
            "jobs" => Ok(Request::Jobs),
            "submit" => {
                let plan_xml = unescape(find(&pairs, "plan")?)?;
                let plan = Plan::from_xml(&plan_xml)
                    .map_err(|error| WireError::malformed(format!("plan is not scenario XML: {error}")))?;
                let mut spec =
                    JobSpec::new(unescape(find(&pairs, "name")?)?, unescape(find(&pairs, "workload")?)?, plan);
                if let Some(weight) = find_opt(&pairs, "weight") {
                    spec = spec.weight(number("weight", weight)?);
                }
                if let Some(batch) = find_opt(&pairs, "lease-batch") {
                    spec = spec.lease_batch(number("lease-batch", batch)?);
                }
                if find_opt(&pairs, "halt-on-crash") == Some("true") {
                    spec = spec.halt_on_crash();
                }
                if let Some(max) = find_opt(&pairs, "max-cases") {
                    spec = spec.max_cases(number("max-cases", max)?);
                }
                Ok(Request::Submit { spec })
            }
            "status" => Ok(Request::Status { job: job_field(&pairs)? }),
            "events" => Ok(Request::Events {
                job: job_field(&pairs)?,
                after: find_opt(&pairs, "after").map_or(Ok(0), |v| number("after", v))?,
                max: find_opt(&pairs, "max").map_or(Ok(256), |v| number("max", v))?,
            }),
            "cancel" => Ok(Request::Cancel { job: job_field(&pairs)? }),
            "pause" => Ok(Request::Pause { job: job_field(&pairs)? }),
            "resume" => Ok(Request::Resume { job: job_field(&pairs)? }),
            "checkpoint" => Ok(Request::Checkpoint { job: job_field(&pairs)? }),
            "drain" => Ok(Request::Drain),
            _ => Err(WireError::malformed(format!("unknown request verb {verb:?}"))),
        }
    }
}

/// Encodes one event as `seq,kind,field,...` — fields escaped, so `,` and
/// `;` stay structural.
fn encode_event(event: &JobEvent) -> String {
    match &event.kind {
        JobEventKind::State(state) => format!("{},state,{state}", event.seq),
        JobEventKind::Started { case } => format!("{},started,{}", event.seq, escape(case)),
        JobEventKind::Injection { case, function, retval, errno } => format!(
            "{},injection,{},{},{},{}",
            event.seq,
            escape(case),
            escape(function),
            retval.map_or_else(|| "x".into(), |v| v.to_string()),
            errno.map_or_else(|| "x".into(), |v| v.to_string()),
        ),
        JobEventKind::Finished { case, outcome, injections } => {
            format!("{},finished,{},{},{injections}", event.seq, escape(case), escape(&outcome.to_string()))
        }
        JobEventKind::Skipped { case } => format!("{},skipped,{}", event.seq, escape(case)),
        JobEventKind::Requeued { cells } => format!("{},requeued,{cells}", event.seq),
    }
}

fn opt_number(key: &str, value: &str) -> Result<Option<i64>, WireError> {
    if value == "x" {
        Ok(None)
    } else {
        number(key, value).map(Some)
    }
}

fn decode_event(text: &str) -> Result<JobEvent, WireError> {
    let parts: Vec<&str> = text.split(',').collect();
    if parts.len() < 2 {
        return Err(WireError::malformed(format!("event {text:?} has no kind")));
    }
    let seq = number("seq", parts[0])?;
    let arg = |index: usize| -> Result<&str, WireError> {
        parts
            .get(index)
            .copied()
            .ok_or_else(|| WireError::malformed(format!("event {text:?} is missing field {index}")))
    };
    let kind = match parts[1] {
        "state" => JobEventKind::State(state_field("state", arg(2)?)?),
        "started" => JobEventKind::Started { case: unescape(arg(2)?)? },
        "injection" => JobEventKind::Injection {
            case: unescape(arg(2)?)?,
            function: unescape(arg(3)?)?,
            retval: opt_number("retval", arg(4)?)?,
            errno: opt_number("errno", arg(5)?)?,
        },
        "finished" => {
            let outcome_text = unescape(arg(3)?)?;
            JobEventKind::Finished {
                case: unescape(arg(2)?)?,
                outcome: OutcomeClass::parse(&outcome_text)
                    .ok_or_else(|| WireError::malformed(format!("unknown outcome class {outcome_text:?}")))?,
                injections: number("injections", arg(4)?)?,
            }
        }
        "skipped" => JobEventKind::Skipped { case: unescape(arg(2)?)? },
        "requeued" => JobEventKind::Requeued { cells: number("cells", arg(2)?)? },
        kind => return Err(WireError::malformed(format!("unknown event kind {kind:?}"))),
    };
    Ok(JobEvent { seq, kind })
}

impl Response {
    /// Renders the response as one protocol line (no trailing newline).
    ///
    /// ```
    /// use lfi_fabric::{JobId, Response};
    ///
    /// assert_eq!(Response::Pong.encode(), "pong");
    /// assert_eq!(Response::Submitted { job: JobId(9) }.encode(), "submitted job=9");
    /// ```
    pub fn encode(&self) -> String {
        match self {
            Response::Pong => "pong".into(),
            Response::Jobs { jobs } => {
                let list: Vec<String> =
                    jobs.iter().map(|(id, name, state)| format!("{id}:{}:{state}", escape(name))).collect();
                format!("jobs count={} list={}", jobs.len(), list.join(";"))
            }
            Response::Submitted { job } => format!("submitted job={job}"),
            Response::Status { snapshot } => format!(
                "status job={} name={} workload={} state={} cases={} pending={} outstanding={} started={} \
                 finished={} skipped={} crashes={} injections={} requeued={} clusters={}",
                snapshot.id,
                escape(&snapshot.name),
                escape(&snapshot.workload),
                snapshot.state,
                snapshot.cases,
                snapshot.pending,
                snapshot.outstanding,
                snapshot.progress.started,
                snapshot.progress.finished,
                snapshot.progress.skipped,
                snapshot.progress.crashes,
                snapshot.progress.injections,
                snapshot.requeued,
                snapshot.clusters,
            ),
            Response::Events { job, next, events } => {
                let list: Vec<String> = events.iter().map(encode_event).collect();
                format!("events job={job} next={next} list={}", list.join(";"))
            }
            Response::StateChanged { job, state } => format!("state job={job} state={state}"),
            Response::Checkpoint { job, store_xml } => format!("checkpoint job={job} store={}", escape(store_xml)),
            Response::Draining => "draining".into(),
            Response::Error { message } => format!("error message={}", escape(message)),
        }
    }

    /// Parses one response line.
    ///
    /// ```
    /// use lfi_fabric::{JobId, Response};
    ///
    /// assert_eq!(Response::parse("submitted job=9").unwrap(), Response::Submitted { job: JobId(9) });
    /// assert!(Response::parse("state job=1 state=melted").is_err());
    /// ```
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] on an unknown verb or missing/bad fields.
    pub fn parse(line: &str) -> Result<Response, WireError> {
        let (verb, pairs) = fields(line)?;
        match verb {
            "pong" => Ok(Response::Pong),
            "jobs" => {
                let list = find_opt(&pairs, "list").unwrap_or("");
                let jobs = list
                    .split(';')
                    .filter(|entry| !entry.is_empty())
                    .map(|entry| {
                        let mut parts = entry.splitn(3, ':');
                        let id = number::<u64>("id", parts.next().unwrap_or(""))?;
                        let name = unescape(parts.next().unwrap_or(""))?;
                        let state = state_field("state", parts.next().unwrap_or(""))?;
                        Ok((JobId(id), name, state))
                    })
                    .collect::<Result<Vec<_>, WireError>>()?;
                Ok(Response::Jobs { jobs })
            }
            "submitted" => Ok(Response::Submitted { job: job_field(&pairs)? }),
            "status" => {
                let count = |key: &str| -> Result<usize, WireError> { number(key, find(&pairs, key)?) };
                Ok(Response::Status {
                    snapshot: JobSnapshot {
                        id: job_field(&pairs)?,
                        name: unescape(find(&pairs, "name")?)?,
                        workload: unescape(find(&pairs, "workload")?)?,
                        state: state_field("state", find(&pairs, "state")?)?,
                        cases: count("cases")?,
                        pending: count("pending")?,
                        outstanding: count("outstanding")?,
                        progress: lfi_controller::ProgressSnapshot {
                            started: count("started")?,
                            finished: count("finished")?,
                            skipped: count("skipped")?,
                            crashes: count("crashes")?,
                            injections: count("injections")?,
                        },
                        requeued: number("requeued", find(&pairs, "requeued")?)?,
                        clusters: count("clusters")?,
                    },
                })
            }
            "events" => {
                let list = find_opt(&pairs, "list").unwrap_or("");
                Ok(Response::Events {
                    job: job_field(&pairs)?,
                    next: number("next", find(&pairs, "next")?)?,
                    events: list.split(';').filter(|entry| !entry.is_empty()).map(decode_event).collect::<Result<
                        Vec<_>,
                        WireError,
                    >>(
                    )?,
                })
            }
            "state" => Ok(Response::StateChanged {
                job: job_field(&pairs)?,
                state: state_field("state", find(&pairs, "state")?)?,
            }),
            "checkpoint" => {
                Ok(Response::Checkpoint { job: job_field(&pairs)?, store_xml: unescape(find(&pairs, "store")?)? })
            }
            "draining" => Ok(Response::Draining),
            "error" => Ok(Response::Error { message: unescape(find(&pairs, "message")?)? }),
            _ => Err(WireError::malformed(format!("unknown response verb {verb:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_controller::ProgressSnapshot;
    use lfi_runtime::Signal;
    use lfi_scenario::{FaultAction, PlanEntry, Trigger};

    #[test]
    fn escape_round_trips_structural_characters() {
        for text in ["", "plain", "a b=c;d,e:f%g\nh", "<plan seed=\"7\"/>", "naïve-ütf8"] {
            let escaped = escape(text);
            assert!(!escaped.contains([' ', '=', ';', ',', ':', '\n']), "{escaped}");
            assert_eq!(unescape(&escaped).unwrap(), text);
        }
        assert!(unescape("%zz").is_err());
        assert!(unescape("%4").is_err());
    }

    #[test]
    fn requests_round_trip() {
        let plan = Plan::new().with_seed(7).entry(PlanEntry {
            function: "write".into(),
            trigger: Trigger::on_call(2),
            action: FaultAction::return_value(-1).with_errno(4),
        });
        let requests = vec![
            Request::Ping,
            Request::Jobs,
            Request::Submit {
                spec: JobSpec::new("login sweep", "pidgin-login", plan)
                    .weight(3)
                    .lease_batch(4)
                    .halt_on_crash()
                    .max_cases(50),
            },
            Request::Status { job: JobId(4) },
            Request::Events { job: JobId(4), after: 17, max: 100 },
            Request::Cancel { job: JobId(1) },
            Request::Pause { job: JobId(2) },
            Request::Resume { job: JobId(2) },
            Request::Checkpoint { job: JobId(3) },
            Request::Drain,
        ];
        for request in requests {
            let line = request.encode();
            assert!(!line.contains('\n'));
            assert_eq!(Request::parse(&line).unwrap(), request, "{line}");
        }
        // The submitted plan survives the trip as scenario XML.
        let Request::Submit { spec } = Request::parse(&requests_sample().encode()).unwrap() else {
            panic!("expected submit");
        };
        assert_eq!(spec.plan.entries.len(), 1);
        assert_eq!(spec.plan.seed, Some(7));
    }

    fn requests_sample() -> Request {
        let plan = Plan::new().with_seed(7).entry(PlanEntry {
            function: "write".into(),
            trigger: Trigger::on_call(2),
            action: FaultAction::return_value(-1).with_errno(4),
        });
        Request::Submit { spec: JobSpec::new("login sweep", "pidgin-login", plan) }
    }

    #[test]
    fn responses_round_trip() {
        let responses = vec![
            Response::Pong,
            Response::Jobs {
                jobs: vec![
                    (JobId(1), "login sweep".into(), JobState::Running),
                    (JobId(2), "x;y".into(), JobState::Done),
                ],
            },
            Response::Jobs { jobs: Vec::new() },
            Response::Submitted { job: JobId(9) },
            Response::Status {
                snapshot: JobSnapshot {
                    id: JobId(3),
                    name: "mysql suite".into(),
                    workload: "mysql-suite".into(),
                    state: JobState::Paused,
                    cases: 60,
                    pending: 10,
                    outstanding: 8,
                    progress: ProgressSnapshot { started: 50, finished: 42, skipped: 0, crashes: 2, injections: 42 },
                    requeued: 8,
                    clusters: 1,
                },
            },
            Response::Events {
                job: JobId(3),
                next: 6,
                events: vec![
                    JobEvent { seq: 0, kind: JobEventKind::State(JobState::Running) },
                    JobEvent { seq: 1, kind: JobEventKind::Started { case: "write-c2-r-1-e4".into() } },
                    JobEvent {
                        seq: 2,
                        kind: JobEventKind::Injection {
                            case: "write-c2-r-1-e4".into(),
                            function: "write".into(),
                            retval: Some(-1),
                            errno: None,
                        },
                    },
                    JobEvent {
                        seq: 3,
                        kind: JobEventKind::Finished {
                            case: "write-c2-r-1-e4".into(),
                            outcome: OutcomeClass::Crash(Signal::Abort),
                            injections: 1,
                        },
                    },
                    JobEvent { seq: 4, kind: JobEventKind::Skipped { case: "write-c3-r-1-e4".into() } },
                    JobEvent { seq: 5, kind: JobEventKind::Requeued { cells: 3 } },
                ],
            },
            Response::Events { job: JobId(1), next: 0, events: Vec::new() },
            Response::StateChanged { job: JobId(2), state: JobState::Cancelled },
            Response::Checkpoint { job: JobId(2), store_xml: "<exploration-store seed=\"0\"/>".into() },
            Response::Draining,
            Response::Error { message: "no workload registered under \"nope\"".into() },
        ];
        for response in responses {
            let line = response.encode();
            assert!(!line.contains('\n'));
            assert_eq!(Response::parse(&line).unwrap(), response, "{line}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("fly job=1").is_err());
        assert!(Request::parse("status").is_err(), "missing job field");
        assert!(Request::parse("status job=abc").is_err());
        assert!(Request::parse("submit name=a workload=b plan=notxml").is_err());
        assert!(Request::parse("status job=1 extra").is_err(), "bare token is not key=value");
        assert!(Response::parse("warp field=1").is_err());
        assert!(Response::parse("state job=1 state=melted").is_err());
        assert!(Response::parse("events job=1 next=0 list=0").is_err(), "event without kind");
        assert!(Response::parse("events job=1 next=0 list=0,warp").is_err());
        assert!(Response::parse("events job=1 next=0 list=0,finished,a,melted,1").is_err());
    }
}
