use std::fmt;
use std::ops::AddAssign;

use lfi_isa::Inst;

/// Branch and call statistics over a body of disassembled code.
///
/// The paper reports (§3.1) that across 9,633 functions in 30 common
/// libraries only 0.13% of branches are indirect, and that only 2.28% of
/// indirect calls could affect the accuracy of the static error-code
/// propagation.  This type gathers the raw counts that experiment needs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodeStats {
    /// Number of functions inspected.
    pub functions: usize,
    /// Total instructions inspected.
    pub instructions: usize,
    /// Unconditional direct branches.
    pub unconditional_branches: usize,
    /// Conditional direct branches.
    pub conditional_branches: usize,
    /// Indirect branches (targets unknown to static analysis).
    pub indirect_branches: usize,
    /// Direct calls.
    pub direct_calls: usize,
    /// Indirect calls (through function pointers).
    pub indirect_calls: usize,
    /// System calls.
    pub syscalls: usize,
}

impl CodeStats {
    /// Accumulates statistics for one function body.
    pub fn absorb_function(&mut self, insts: &[Inst]) {
        self.functions += 1;
        self.instructions += insts.len();
        for inst in insts {
            match inst {
                Inst::Jmp { .. } => self.unconditional_branches += 1,
                Inst::JmpCond { .. } => self.conditional_branches += 1,
                Inst::JmpIndirect { .. } => self.indirect_branches += 1,
                Inst::Call { .. } => self.direct_calls += 1,
                Inst::CallIndirect { .. } => self.indirect_calls += 1,
                Inst::Syscall { .. } => self.syscalls += 1,
                _ => {}
            }
        }
    }

    /// Total branches of any kind.
    pub fn total_branches(&self) -> usize {
        self.unconditional_branches + self.conditional_branches + self.indirect_branches
    }

    /// Total calls of any kind (excluding syscalls).
    pub fn total_calls(&self) -> usize {
        self.direct_calls + self.indirect_calls
    }

    /// Fraction of branches that are indirect, in [0, 1].
    pub fn indirect_branch_fraction(&self) -> f64 {
        ratio(self.indirect_branches, self.total_branches())
    }

    /// Fraction of calls that are indirect, in [0, 1].
    pub fn indirect_call_fraction(&self) -> f64 {
        ratio(self.indirect_calls, self.total_calls())
    }
}

fn ratio(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

impl AddAssign for CodeStats {
    fn add_assign(&mut self, rhs: Self) {
        self.functions += rhs.functions;
        self.instructions += rhs.instructions;
        self.unconditional_branches += rhs.unconditional_branches;
        self.conditional_branches += rhs.conditional_branches;
        self.indirect_branches += rhs.indirect_branches;
        self.direct_calls += rhs.direct_calls;
        self.indirect_calls += rhs.indirect_calls;
        self.syscalls += rhs.syscalls;
    }
}

impl fmt::Display for CodeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} functions, {} instructions, {} branches ({} indirect), {} calls ({} indirect)",
            self.functions,
            self.instructions,
            self.total_branches(),
            self.indirect_branches,
            self.total_calls(),
            self.indirect_calls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_isa::{Cond, Loc, Reg};

    #[test]
    fn counts_each_category() {
        let mut stats = CodeStats::default();
        stats.absorb_function(&[
            Inst::Jmp { target: 0 },
            Inst::JmpCond { cond: Cond::Eq, target: 0 },
            Inst::JmpIndirect { loc: Loc::Reg(Reg(1)) },
            Inst::Call { sym: 0 },
            Inst::CallIndirect { loc: Loc::Reg(Reg(2)) },
            Inst::Syscall { num: 3 },
            Inst::Ret,
        ]);
        assert_eq!(stats.functions, 1);
        assert_eq!(stats.instructions, 7);
        assert_eq!(stats.total_branches(), 3);
        assert_eq!(stats.total_calls(), 2);
        assert_eq!(stats.syscalls, 1);
        assert!((stats.indirect_branch_fraction() - 1.0 / 3.0).abs() < 1e-9);
        assert!((stats.indirect_call_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ratios_handle_empty_input() {
        let stats = CodeStats::default();
        assert_eq!(stats.indirect_branch_fraction(), 0.0);
        assert_eq!(stats.indirect_call_fraction(), 0.0);
    }

    #[test]
    fn accumulation_with_add_assign() {
        let mut a = CodeStats::default();
        a.absorb_function(&[Inst::Call { sym: 0 }, Inst::Ret]);
        let mut b = CodeStats::default();
        b.absorb_function(&[Inst::Jmp { target: 0 }]);
        a += b;
        assert_eq!(a.functions, 2);
        assert_eq!(a.direct_calls, 1);
        assert_eq!(a.unconditional_branches, 1);
        assert!(!a.to_string().is_empty());
    }
}
