use lfi_isa::{encode, Platform};
use lfi_objfile::{SharedObject, SymbolDef, SymbolId};

use crate::{Cfg, CodeStats, DisasmError};

/// One function after disassembly: its decoded instructions and its CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionDisassembly {
    /// Symbol-table index of the function in its object.
    pub symbol: SymbolId,
    /// Symbol name (empty for stripped local symbols).
    pub name: String,
    /// Whether the symbol is exported.
    pub exported: bool,
    /// Size of the encoded code, in bytes.
    pub code_size: usize,
    /// The recovered control flow graph.
    pub cfg: Cfg,
}

/// A fully disassembled shared object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectDisassembly {
    /// Library file name.
    pub library: String,
    /// Platform the object targets.
    pub platform: Platform,
    /// Every defined function (exported and local), in symbol order.
    pub functions: Vec<FunctionDisassembly>,
    /// Total text size in bytes.
    pub code_size: usize,
}

impl ObjectDisassembly {
    /// Finds a disassembled function by name.
    pub fn function(&self, name: &str) -> Option<&FunctionDisassembly> {
        self.functions.iter().find(|f| !f.name.is_empty() && f.name == name)
    }

    /// Finds a disassembled function by symbol id.
    pub fn function_by_symbol(&self, symbol: SymbolId) -> Option<&FunctionDisassembly> {
        self.functions.iter().find(|f| f.symbol == symbol)
    }

    /// Iterates over the exported functions only.
    pub fn exported_functions(&self) -> impl Iterator<Item = &FunctionDisassembly> {
        self.functions.iter().filter(|f| f.exported)
    }

    /// Aggregates branch/call statistics over every disassembled function
    /// (the §3.1 indirect-call and indirect-branch survey).
    pub fn stats(&self) -> CodeStats {
        let mut stats = CodeStats::default();
        for function in &self.functions {
            stats.absorb_function(function.cfg.insts());
        }
        stats
    }
}

/// Decodes SimObj objects into instructions and control flow graphs.
///
/// The paper's profiler drives `objdump`/`dumpbin`; this type plays that role
/// for SimObj.  It is deliberately independent of the profiler so that, as in
/// the paper, "as good a disassembler as is available" can be swapped in.
#[derive(Debug, Clone, Default)]
pub struct Disassembler {
    _private: (),
}

impl Disassembler {
    /// Creates a disassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Disassembles every defined function in the object.
    ///
    /// # Errors
    ///
    /// Returns [`DisasmError::Decode`] if any text section contains malformed
    /// bytes, or [`DisasmError::Object`] if the object is internally
    /// inconsistent.
    pub fn disassemble_object(&self, object: &SharedObject) -> Result<ObjectDisassembly, DisasmError> {
        object.validate()?;
        let mut functions = Vec::new();
        for (index, symbol) in object.symbols().iter().enumerate() {
            let SymbolDef::Defined { exported, .. } = symbol.def else {
                continue;
            };
            let id = SymbolId(index as u32);
            let code = object.code_for(id)?;
            let insts = encode::decode_function(&code.code)
                .map_err(|source| DisasmError::Decode { function: symbol.name.clone(), source })?;
            let cfg = Cfg::build(insts);
            functions.push(FunctionDisassembly {
                symbol: id,
                name: symbol.name.clone(),
                exported,
                code_size: code.size(),
                cfg,
            });
        }
        Ok(ObjectDisassembly {
            library: object.name().to_owned(),
            platform: object.platform(),
            functions,
            code_size: object.code_size(),
        })
    }

    /// Disassembles a single function by name.
    ///
    /// # Errors
    ///
    /// Returns [`DisasmError::Object`] if the symbol is missing or is an
    /// import, and [`DisasmError::Decode`] if its bytes are malformed.
    pub fn disassemble_function(&self, object: &SharedObject, name: &str) -> Result<FunctionDisassembly, DisasmError> {
        let (id, symbol) = object
            .symbol_by_name(name)
            .ok_or_else(|| lfi_objfile::ObjError::UnknownSymbol { name: name.to_owned() })?;
        let code = object.code_for(id)?;
        let insts = encode::decode_function(&code.code)
            .map_err(|source| DisasmError::Decode { function: name.to_owned(), source })?;
        Ok(FunctionDisassembly {
            symbol: id,
            name: symbol.name.clone(),
            exported: symbol.is_export(),
            code_size: code.size(),
            cfg: Cfg::build(insts),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_isa::{Cond, Inst, Loc, Operand, Reg};
    use lfi_objfile::ObjectBuilder;

    fn demo_object() -> SharedObject {
        let ret = Loc::Reg(Reg(0));
        ObjectBuilder::new("libdemo.so", Platform::LinuxX86)
            .export(
                "branchy",
                vec![
                    Inst::Cmp { a: Loc::Arg(0), b: Operand::Imm(0) },
                    Inst::JmpCond { cond: Cond::Ne, target: 4 },
                    Inst::MovImm { dst: ret, imm: 0 },
                    Inst::Ret,
                    Inst::MovImm { dst: ret, imm: 5 },
                    Inst::Ret,
                ],
            )
            .local("helper", vec![Inst::Call { sym: 2 }, Inst::Ret])
            .import("malloc", None)
            .build()
    }

    #[test]
    fn disassembles_defined_functions_only() {
        let dis = Disassembler::new().disassemble_object(&demo_object()).unwrap();
        assert_eq!(dis.functions.len(), 2);
        assert_eq!(dis.exported_functions().count(), 1);
        assert!(dis.function("branchy").is_some());
        assert!(dis.function("helper").is_some());
        assert!(dis.function("malloc").is_none());
        assert_eq!(dis.code_size, demo_object().code_size());
    }

    #[test]
    fn cfg_shapes_are_recovered() {
        let dis = Disassembler::new().disassemble_object(&demo_object()).unwrap();
        let branchy = dis.function("branchy").unwrap();
        assert_eq!(branchy.cfg.blocks().len(), 3);
        assert_eq!(branchy.cfg.exit_blocks().count(), 2);
        assert!(branchy.code_size > 0);
    }

    #[test]
    fn single_function_lookup_and_errors() {
        let dis = Disassembler::new();
        let obj = demo_object();
        let f = dis.disassemble_function(&obj, "helper").unwrap();
        assert!(!f.exported);
        assert!(dis.disassemble_function(&obj, "malloc").is_err());
        assert!(dis.disassemble_function(&obj, "missing").is_err());
    }

    #[test]
    fn stripped_objects_still_disassemble() {
        let dis = Disassembler::new().disassemble_object(&demo_object().stripped()).unwrap();
        assert_eq!(dis.functions.len(), 2);
        // The local symbol lost its name but the export kept it.
        assert!(dis.function("branchy").is_some());
        assert!(dis.function("helper").is_none());
    }

    #[test]
    fn corrupt_code_reports_a_decode_error() {
        let mut obj = demo_object();
        // Corrupt the object through serialization: flip a code byte.
        let mut bytes = obj.to_bytes();
        // Find the first function's code and stomp an opcode with 0xEE.  The
        // code section starts after header/name/deps/data; rather than
        // computing the exact offset we rebuild the object with bogus bytes.
        obj = {
            let _ = &mut bytes;
            ObjectBuilder::new("libbad.so", Platform::LinuxX86).build()
        };
        let _ = obj;
        let bad = {
            // Build an object whose function bytes are invalid by constructing
            // a valid object and then feeding garbage code through from_bytes.
            let good = ObjectBuilder::new("libbad.so", Platform::LinuxX86).export("f", vec![Inst::Ret]).build();
            let mut raw = good.to_bytes();
            // The final sections are symbols; the code byte for `Ret` (0x0f)
            // appears exactly once — replace it with an invalid opcode.
            if let Some(pos) = raw.iter().position(|&b| b == 0x0f) {
                raw[pos] = 0xee;
            }
            SharedObject::from_bytes(&raw).unwrap()
        };
        let err = Disassembler::new().disassemble_object(&bad).unwrap_err();
        assert!(matches!(err, DisasmError::Decode { .. }));
    }

    #[test]
    fn stats_count_calls_and_branches() {
        let dis = Disassembler::new().disassemble_object(&demo_object()).unwrap();
        let stats = dis.stats();
        assert_eq!(stats.functions, 2);
        assert_eq!(stats.direct_calls, 1);
        assert_eq!(stats.conditional_branches, 1);
        assert_eq!(stats.indirect_calls, 0);
        assert_eq!(stats.indirect_branches, 0);
    }
}
