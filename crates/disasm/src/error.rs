use std::error::Error;
use std::fmt;

use lfi_isa::IsaError;
use lfi_objfile::ObjError;

/// Errors produced while disassembling a shared object.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DisasmError {
    /// The object file itself could not be read or is inconsistent.
    Object(ObjError),
    /// A function's byte stream could not be decoded.
    Decode {
        /// Name of the function (empty for stripped locals).
        function: String,
        /// The underlying decoding error.
        source: IsaError,
    },
    /// A jump target points outside the function body.
    BranchOutOfRange {
        /// Name of the function (empty for stripped locals).
        function: String,
        /// The offending target instruction index.
        target: u32,
        /// Number of instructions in the function.
        len: usize,
    },
}

impl fmt::Display for DisasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DisasmError::Object(e) => write!(f, "object error: {e}"),
            DisasmError::Decode { function, source } => {
                write!(f, "failed to decode function `{function}`: {source}")
            }
            DisasmError::BranchOutOfRange { function, target, len } => {
                write!(f, "branch target {target} out of range in function `{function}` ({len} instructions)")
            }
        }
    }
}

impl Error for DisasmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DisasmError::Object(e) => Some(e),
            DisasmError::Decode { source, .. } => Some(source),
            DisasmError::BranchOutOfRange { .. } => None,
        }
    }
}

impl From<ObjError> for DisasmError {
    fn from(value: ObjError) -> Self {
        DisasmError::Object(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DisasmError::Decode { function: "f".into(), source: IsaError::FellOffEnd };
        assert!(e.to_string().contains('f'));
        assert!(e.source().is_some());
        let e = DisasmError::Object(ObjError::BadMagic);
        assert!(!e.to_string().is_empty());
        let e = DisasmError::BranchOutOfRange { function: "g".into(), target: 9, len: 2 };
        assert!(e.to_string().contains('9'));
        assert!(e.source().is_none());
    }
}
