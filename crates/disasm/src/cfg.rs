use std::collections::{BTreeSet, HashSet, VecDeque};
use std::fmt;

use lfi_isa::Inst;

/// Identifier of a basic block within one function's [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub usize);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A maximal straight-line sequence of instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// This block's id.
    pub id: BlockId,
    /// Index of the first instruction in the block.
    pub start: usize,
    /// Index one past the last instruction in the block.
    pub end: usize,
    /// Ids of blocks control can flow to.
    pub successors: Vec<BlockId>,
    /// True if the block ends in an indirect jump, whose targets the static
    /// analysis cannot resolve (a source of CFG incompleteness, §3.1).
    pub has_indirect_successor: bool,
    /// True if the block ends the function (a `ret`, or code that falls off
    /// the end of the body).
    pub is_exit: bool,
}

impl BasicBlock {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the block holds no instructions (never produced by
    /// [`Cfg::build`], but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The control flow graph of one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    insts: Vec<Inst>,
    blocks: Vec<BasicBlock>,
    predecessors: Vec<Vec<BlockId>>,
    block_of_inst: Vec<BlockId>,
}

impl Cfg {
    /// Builds the control flow graph of a decoded function body.
    ///
    /// Leaders are the entry instruction, every branch target and every
    /// instruction following a terminator; blocks span from one leader to the
    /// next.  Jump targets outside the body are tolerated (the block simply
    /// gets no successor for them) so that the profiler degrades gracefully on
    /// malformed code, mirroring the paper's tolerance of disassembly
    /// imperfections.
    pub fn build(insts: Vec<Inst>) -> Cfg {
        if insts.is_empty() {
            return Cfg { insts, blocks: Vec::new(), predecessors: Vec::new(), block_of_inst: Vec::new() };
        }

        let len = insts.len();
        let mut leaders: BTreeSet<usize> = BTreeSet::new();
        leaders.insert(0);
        for (i, inst) in insts.iter().enumerate() {
            match *inst {
                Inst::Jmp { target } | Inst::JmpCond { target, .. } => {
                    if (target as usize) < len {
                        leaders.insert(target as usize);
                    }
                    if i + 1 < len {
                        leaders.insert(i + 1);
                    }
                }
                Inst::JmpIndirect { .. } | Inst::Ret if i + 1 < len => {
                    leaders.insert(i + 1);
                }
                _ => {}
            }
        }

        let starts: Vec<usize> = leaders.into_iter().collect();
        let mut blocks: Vec<BasicBlock> = Vec::with_capacity(starts.len());
        for (bi, &start) in starts.iter().enumerate() {
            let end = starts.get(bi + 1).copied().unwrap_or(len);
            blocks.push(BasicBlock {
                id: BlockId(bi),
                start,
                end,
                successors: Vec::new(),
                has_indirect_successor: false,
                is_exit: false,
            });
        }

        let block_index_of = |inst_index: usize| -> BlockId {
            // Binary search over block starts.
            let pos = starts.partition_point(|&s| s <= inst_index);
            BlockId(pos - 1)
        };

        let mut block_of_inst = vec![BlockId(0); len];
        for block in &blocks {
            for slot in block_of_inst.iter_mut().take(block.end).skip(block.start) {
                *slot = block.id;
            }
        }

        // Successor edges, derived from each block's final instruction.
        // Indexing (not iterating) because the loop reads neighbouring
        // blocks while mutating the current one.
        let mut predecessors: Vec<Vec<BlockId>> = vec![Vec::new(); blocks.len()];
        #[allow(clippy::needless_range_loop)]
        for bi in 0..blocks.len() {
            let last_index = blocks[bi].end - 1;
            let last = insts[last_index];
            let mut succs: Vec<BlockId> = Vec::new();
            let mut indirect = false;
            let mut exit = false;
            match last {
                Inst::Ret => exit = true,
                Inst::Jmp { target } => {
                    if (target as usize) < len {
                        succs.push(block_index_of(target as usize));
                    } else {
                        exit = true;
                    }
                }
                Inst::JmpCond { target, .. } => {
                    if (target as usize) < len {
                        succs.push(block_index_of(target as usize));
                    }
                    if blocks[bi].end < len {
                        succs.push(BlockId(bi + 1));
                    } else {
                        exit = true;
                    }
                }
                Inst::JmpIndirect { .. } => indirect = true,
                _ => {
                    // The block ends because the next instruction is a leader,
                    // or because the body ends.
                    if blocks[bi].end < len {
                        succs.push(BlockId(bi + 1));
                    } else {
                        exit = true;
                    }
                }
            }
            succs.dedup();
            for &s in &succs {
                predecessors[s.0].push(BlockId(bi));
            }
            blocks[bi].successors = succs;
            blocks[bi].has_indirect_successor = indirect;
            blocks[bi].is_exit = exit;
        }

        Cfg { insts, blocks, predecessors, block_of_inst }
    }

    /// The decoded instructions of the whole function.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// All basic blocks, in address order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0]
    }

    /// The instructions of one block.
    pub fn block_insts(&self, id: BlockId) -> &[Inst] {
        let b = self.block(id);
        &self.insts[b.start..b.end]
    }

    /// The block containing instruction index `index`, if in range.
    pub fn block_containing(&self, index: usize) -> Option<BlockId> {
        self.block_of_inst.get(index).copied()
    }

    /// The entry block, if the function is non-empty.
    pub fn entry(&self) -> Option<BlockId> {
        self.blocks.first().map(|b| b.id)
    }

    /// Predecessor blocks of `id`.
    pub fn predecessors(&self, id: BlockId) -> &[BlockId] {
        &self.predecessors[id.0]
    }

    /// Blocks that end the function.
    pub fn exit_blocks(&self) -> impl Iterator<Item = &BasicBlock> {
        self.blocks.iter().filter(|b| b.is_exit)
    }

    /// Blocks reachable from the entry along recovered edges.  Blocks only
    /// reachable through indirect jumps are *not* included, matching the
    /// incompleteness the paper accepts.
    pub fn reachable_blocks(&self) -> HashSet<BlockId> {
        let mut seen = HashSet::new();
        let Some(entry) = self.entry() else { return seen };
        let mut queue = VecDeque::from([entry]);
        while let Some(id) = queue.pop_front() {
            if seen.insert(id) {
                for &s in &self.block(id).successors {
                    queue.push_back(s);
                }
            }
        }
        seen
    }

    /// Renders the graph in Graphviz DOT form (the reproduction of Figure 2).
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("digraph \"{name}\" {{\n  node [shape=box, fontname=\"monospace\"];\n"));
        for block in &self.blocks {
            let mut label = format!("{}\\n", block.id);
            for (i, inst) in self.block_insts(block.id).iter().enumerate() {
                label.push_str(&format!("{:>4}: {}\\l", block.start + i, inst));
            }
            out.push_str(&format!("  {} [label=\"{}\"];\n", block.id, label.replace('"', "'")));
        }
        for block in &self.blocks {
            for succ in &block.successors {
                out.push_str(&format!("  {} -> {};\n", block.id, succ));
            }
            if block.has_indirect_successor {
                out.push_str(&format!("  {} -> unknown [style=dashed];\n", block.id));
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_isa::{Cond, Loc, Reg};

    fn ret0() -> Inst {
        Inst::MovImm { dst: Loc::Reg(Reg(0)), imm: 0 }
    }

    #[test]
    fn straight_line_is_one_block() {
        let cfg = Cfg::build(vec![ret0(), Inst::Ret]);
        assert_eq!(cfg.blocks().len(), 1);
        assert!(cfg.blocks()[0].is_exit);
        assert!(cfg.blocks()[0].successors.is_empty());
        assert_eq!(cfg.block_insts(BlockId(0)).len(), 2);
    }

    #[test]
    fn diamond_has_four_blocks() {
        // 0: cmp arg0, 0
        // 1: jne 4
        // 2: mov r0, 0
        // 3: ret
        // 4: mov r0, 5
        // 5: ret
        let insts = vec![
            Inst::Cmp { a: Loc::Arg(0), b: 0i64.into() },
            Inst::JmpCond { cond: Cond::Ne, target: 4 },
            ret0(),
            Inst::Ret,
            Inst::MovImm { dst: Loc::Reg(Reg(0)), imm: 5 },
            Inst::Ret,
        ];
        let cfg = Cfg::build(insts);
        assert_eq!(cfg.blocks().len(), 3);
        let entry = cfg.entry().unwrap();
        assert_eq!(cfg.block(entry).successors.len(), 2);
        assert_eq!(cfg.exit_blocks().count(), 2);
        // Both exits have the entry as (transitive) predecessor.
        for exit in cfg.exit_blocks() {
            assert_eq!(cfg.predecessors(exit.id), &[entry]);
        }
    }

    #[test]
    fn loop_back_edge_is_recovered() {
        // 0: cmp arg0, 0
        // 1: jeq 4
        // 2: nop
        // 3: jmp 0
        // 4: ret
        let insts = vec![
            Inst::Cmp { a: Loc::Arg(0), b: 0i64.into() },
            Inst::JmpCond { cond: Cond::Eq, target: 4 },
            Inst::Nop,
            Inst::Jmp { target: 0 },
            Inst::Ret,
        ];
        let cfg = Cfg::build(insts);
        let entry = cfg.entry().unwrap();
        // The loop body jumps back to the entry.
        let body = cfg.block_containing(2).unwrap();
        assert!(cfg.block(body).successors.contains(&entry));
        assert!(cfg.predecessors(entry).contains(&body));
        assert_eq!(cfg.reachable_blocks().len(), cfg.blocks().len());
    }

    #[test]
    fn indirect_jump_has_no_recovered_successor() {
        let insts = vec![Inst::JmpIndirect { loc: Loc::Reg(Reg(6)) }, Inst::Ret];
        let cfg = Cfg::build(insts);
        assert!(cfg.blocks()[0].has_indirect_successor);
        assert!(cfg.blocks()[0].successors.is_empty());
        // The second block is not reachable along recovered edges.
        assert_eq!(cfg.reachable_blocks().len(), 1);
    }

    #[test]
    fn dead_code_after_ret_is_kept_but_unreachable() {
        let insts = vec![ret0(), Inst::Ret, Inst::Nop, Inst::Nop];
        let cfg = Cfg::build(insts);
        assert_eq!(cfg.blocks().len(), 2);
        assert_eq!(cfg.reachable_blocks().len(), 1);
        // The trailing block falls off the end and is treated as an exit.
        assert!(cfg.blocks()[1].is_exit);
    }

    #[test]
    fn empty_function_yields_empty_graph() {
        let cfg = Cfg::build(Vec::new());
        assert!(cfg.blocks().is_empty());
        assert!(cfg.entry().is_none());
        assert!(cfg.reachable_blocks().is_empty());
    }

    #[test]
    fn out_of_range_branch_target_is_tolerated() {
        let insts = vec![Inst::Jmp { target: 99 }];
        let cfg = Cfg::build(insts);
        assert_eq!(cfg.blocks().len(), 1);
        assert!(cfg.blocks()[0].successors.is_empty());
        assert!(cfg.blocks()[0].is_exit);
    }

    #[test]
    fn dot_output_mentions_every_block() {
        let insts = vec![
            Inst::Cmp { a: Loc::Arg(0), b: 0i64.into() },
            Inst::JmpCond { cond: Cond::Ne, target: 4 },
            ret0(),
            Inst::Ret,
            Inst::MovImm { dst: Loc::Reg(Reg(0)), imm: 5 },
            Inst::Ret,
        ];
        let cfg = Cfg::build(insts);
        let dot = cfg.to_dot("blah");
        assert!(dot.starts_with("digraph"));
        for block in cfg.blocks() {
            assert!(dot.contains(&block.id.to_string()));
        }
    }

    #[test]
    fn block_len_and_emptiness() {
        let cfg = Cfg::build(vec![ret0(), Inst::Ret]);
        let b = &cfg.blocks()[0];
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }
}
