//! # lfi-disasm — disassembly and control-flow-graph recovery for SimObj
//!
//! The LFI profiler "disassembles the library and identifies all exported
//! functions, along with the dependent functions … It then constructs for
//! each function a control flow graph" (§3.1).  This crate is that stage for
//! the reproduction: it decodes the SimISA byte streams stored in SimObj
//! shared objects, splits them into basic blocks, recovers the control flow
//! graph (including the *incompleteness* introduced by indirect branches,
//! which the paper measures), and reports per-object code statistics.
//!
//! ```
//! use lfi_disasm::Disassembler;
//! use lfi_isa::{Inst, Loc, Platform, Reg};
//! use lfi_objfile::ObjectBuilder;
//!
//! let obj = ObjectBuilder::new("libone.so", Platform::LinuxX86)
//!     .export("one", vec![Inst::MovImm { dst: Loc::Reg(Reg(0)), imm: 1 }, Inst::Ret])
//!     .build();
//! let dis = Disassembler::new().disassemble_object(&obj).unwrap();
//! assert_eq!(dis.functions.len(), 1);
//! assert_eq!(dis.functions[0].cfg.blocks().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod cfg;
mod disassembler;
mod error;
mod stats;

pub use cache::DisasmCache;
pub use cfg::{BasicBlock, BlockId, Cfg};
pub use disassembler::{Disassembler, FunctionDisassembly, ObjectDisassembly};
pub use error::DisasmError;
pub use stats::CodeStats;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Cfg>();
        assert_send_sync::<DisasmCache>();
        assert_send_sync::<ObjectDisassembly>();
        assert_send_sync::<CodeStats>();
        assert_send_sync::<DisasmError>();
    }
}
