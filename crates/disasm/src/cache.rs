//! A content-addressed, thread-safe cache of object disassemblies.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use lfi_objfile::SharedObject;

use crate::{DisasmError, Disassembler, ObjectDisassembly};

/// Number of independent lock shards; hot profiling workloads touch a handful
/// of objects, so a small power of two keeps contention negligible without
/// wasting memory.
const SHARDS: usize = 8;

/// A content-addressed cache of [`ObjectDisassembly`] values.
///
/// Disassembling a library (decoding every text section and rebuilding every
/// CFG) dominates cold profiling time, yet the result depends only on the
/// object's bytes.  `DisasmCache` therefore keys each `Arc<ObjectDisassembly>`
/// by [`SharedObject::fingerprint`]: any number of threads, profiling calls or
/// even distinct `Profiler` instances can share one cache, and an object is
/// disassembled at most once for as long as its bytes stay the same.
///
/// Because the key is a content hash there is no invalidation protocol —
/// re-registering a *modified* library simply misses (new fingerprint) and the
/// stale entry becomes unreachable garbage until [`DisasmCache::clear`].
/// Lookups are lock-sharded; a concurrent miss on the same object may
/// disassemble twice, but both threads end up sharing the first inserted
/// entry's key, which is harmless because the results are identical.
#[derive(Debug, Default)]
pub struct DisasmCache {
    shards: [RwLock<HashMap<u64, Arc<ObjectDisassembly>>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DisasmCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, fingerprint: u64) -> &RwLock<HashMap<u64, Arc<ObjectDisassembly>>> {
        &self.shards[(fingerprint as usize) % SHARDS]
    }

    /// Returns the cached disassembly for `fingerprint`, if present.
    pub fn get(&self, fingerprint: u64) -> Option<Arc<ObjectDisassembly>> {
        let shard = self.shard(fingerprint).read().unwrap_or_else(std::sync::PoisonError::into_inner);
        shard.get(&fingerprint).cloned()
    }

    /// Disassembles `object`, reusing the cached result when its fingerprint
    /// is already known.  The boolean is `true` on a cache hit.
    ///
    /// # Errors
    ///
    /// Propagates [`DisasmError`] from [`Disassembler::disassemble_object`];
    /// failures are not cached.
    pub fn disassemble(&self, object: &SharedObject) -> Result<(Arc<ObjectDisassembly>, bool), DisasmError> {
        self.disassemble_keyed(object.fingerprint(), object)
    }

    /// Like [`DisasmCache::disassemble`] for callers that already know the
    /// object's fingerprint (the profiler computes it once at registration).
    ///
    /// # Errors
    ///
    /// Propagates [`DisasmError`]; failures are not cached.
    pub fn disassemble_keyed(
        &self,
        fingerprint: u64,
        object: &SharedObject,
    ) -> Result<(Arc<ObjectDisassembly>, bool), DisasmError> {
        if let Some(existing) = self.get(fingerprint) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((existing, true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let disassembly = Arc::new(Disassembler::new().disassemble_object(object)?);
        let mut shard = self.shard(fingerprint).write().unwrap_or_else(std::sync::PoisonError::into_inner);
        // Keep the first entry if another thread raced us here; the two
        // disassemblies are identical, sharing one maximizes reuse.
        Ok((Arc::clone(shard.entry(fingerprint).or_insert(disassembly)), false))
    }

    /// Number of cached disassemblies.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(std::sync::PoisonError::into_inner).len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (i.e. actual disassembler runs) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops every cached disassembly and resets the hit/miss counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_isa::{Inst, Platform};
    use lfi_objfile::ObjectBuilder;

    fn object(name: &str) -> SharedObject {
        ObjectBuilder::new(name, Platform::LinuxX86).export("f", vec![Inst::Ret]).build()
    }

    #[test]
    fn second_disassembly_is_a_hit() {
        let cache = DisasmCache::new();
        let obj = object("liba.so");
        let (first, hit) = cache.disassemble(&obj).unwrap();
        assert!(!hit);
        let (second, hit) = cache.disassemble(&obj).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_objects_get_distinct_entries() {
        let cache = DisasmCache::new();
        cache.disassemble(&object("liba.so")).unwrap();
        cache.disassemble(&object("libb.so")).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn concurrent_disassembly_converges_on_one_entry() {
        let cache = DisasmCache::new();
        let obj = object("libshared.so");
        let entries: Vec<Arc<ObjectDisassembly>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4).map(|_| scope.spawn(|| cache.disassemble(&obj).unwrap().0)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for entry in &entries {
            assert!(Arc::ptr_eq(entry, &entries[0]));
        }
        assert_eq!(cache.len(), 1);
    }
}
