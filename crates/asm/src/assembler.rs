use lfi_isa::{Cond, Inst, Loc, Operand};

/// A forward-referenceable position in a function being assembled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// A tiny label-based assembler for one SimISA function body.
///
/// Jump targets in SimISA are absolute instruction indices; hand-computing
/// them while lowering multi-path functions is error prone, so the compiler
/// emits through this assembler and lets it patch the targets once all labels
/// are bound.
///
/// ```
/// use lfi_asm::FnAsm;
/// use lfi_isa::{Cond, Inst, Loc, Operand, Reg};
///
/// let mut asm = FnAsm::new();
/// let done = asm.declare_label();
/// asm.push(Inst::Cmp { a: Loc::Arg(0), b: Operand::Imm(0) });
/// asm.jmp_cond(Cond::Eq, done);
/// asm.push(Inst::MovImm { dst: Loc::Reg(Reg(0)), imm: 1 });
/// asm.bind(done);
/// asm.push(Inst::Ret);
/// let body = asm.finish();
/// assert_eq!(body.len(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FnAsm {
    insts: Vec<Inst>,
    labels: Vec<Option<u32>>,
    fixups: Vec<(usize, Label)>,
}

impl FnAsm {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a label that can be jumped to before it is bound.
    pub fn declare_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds a label to the *next* emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound; that is a bug in the caller.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.insts.len() as u32);
    }

    /// Current instruction index (where the next instruction will land).
    pub fn here(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Emits an instruction verbatim.
    pub fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// Emits an unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) {
        self.fixups.push((self.insts.len(), label));
        self.insts.push(Inst::Jmp { target: u32::MAX });
    }

    /// Emits a conditional jump to `label`.
    pub fn jmp_cond(&mut self, cond: Cond, label: Label) {
        self.fixups.push((self.insts.len(), label));
        self.insts.push(Inst::JmpCond { cond, target: u32::MAX });
    }

    /// Emits `cmp a, b`.
    pub fn cmp(&mut self, a: Loc, b: impl Into<Operand>) {
        self.insts.push(Inst::Cmp { a, b: b.into() });
    }

    /// Emits `mov dst, imm`.
    pub fn mov_imm(&mut self, dst: Loc, imm: i64) {
        self.insts.push(Inst::MovImm { dst, imm });
    }

    /// Emits `mov dst, src`.
    pub fn mov(&mut self, dst: Loc, src: Loc) {
        self.insts.push(Inst::Mov { dst, src });
    }

    /// Emits `ret`.
    pub fn ret(&mut self) {
        self.insts.push(Inst::Ret);
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns true if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Resolves all label references and returns the finished body.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never bound; that is a bug in the
    /// caller (the compiler), not a recoverable condition.
    pub fn finish(mut self) -> Vec<Inst> {
        for (index, label) in self.fixups {
            let target = self.labels[label.0].expect("jump to an unbound label");
            match &mut self.insts[index] {
                Inst::Jmp { target: t } | Inst::JmpCond { target: t, .. } => *t = target,
                other => unreachable!("fixup recorded for non-jump instruction {other:?}"),
            }
        }
        self.insts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_isa::Reg;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut asm = FnAsm::new();
        let loop_top = asm.declare_label();
        let exit = asm.declare_label();
        asm.bind(loop_top);
        asm.cmp(Loc::Arg(0), 0i64);
        asm.jmp_cond(Cond::Eq, exit);
        asm.push(Inst::Nop);
        asm.jmp(loop_top);
        asm.bind(exit);
        asm.mov_imm(Loc::Reg(Reg(0)), 0);
        asm.ret();
        let body = asm.finish();
        assert_eq!(body[1], Inst::JmpCond { cond: Cond::Eq, target: 4 });
        assert_eq!(body[3], Inst::Jmp { target: 0 });
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut asm = FnAsm::new();
        let l = asm.declare_label();
        asm.bind(l);
        asm.bind(l);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics_at_finish() {
        let mut asm = FnAsm::new();
        let l = asm.declare_label();
        asm.jmp(l);
        let _ = asm.finish();
    }

    #[test]
    fn helpers_emit_expected_instructions() {
        let mut asm = FnAsm::new();
        assert!(asm.is_empty());
        asm.mov_imm(Loc::Reg(Reg(1)), 5);
        asm.mov(Loc::Reg(Reg(2)), Loc::Reg(Reg(1)));
        asm.ret();
        assert_eq!(asm.len(), 3);
        assert_eq!(asm.here(), 3);
        let body = asm.finish();
        assert_eq!(body[0], Inst::MovImm { dst: Loc::Reg(Reg(1)), imm: 5 });
        assert_eq!(body[1], Inst::Mov { dst: Loc::Reg(Reg(2)), src: Loc::Reg(Reg(1)) });
        assert_eq!(body[2], Inst::Ret);
    }
}
