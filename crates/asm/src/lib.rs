//! # lfi-asm — the synthetic library compiler
//!
//! The LFI profiler analyzes binaries *as a compiler emitted them*: constant
//! error returns, the PIC prologue, the negate-and-store `errno` sequence,
//! calls to dependent functions whose errors propagate, occasional indirect
//! calls and branches.  This crate is the "compiler" for the reproduction's
//! synthetic libraries: it lowers declarative [`FunctionSpec`]s into SimISA
//! machine code using exactly those idioms, and packages whole
//! [`LibrarySpec`]s into SimObj shared objects.
//!
//! Because the lowering is mechanical, every compiled function also carries a
//! [`PathInfo`] table describing which argument value steers execution down
//! which path and what the *actual* observable outcome of that path is.  The
//! corpus crate uses this as execution ground truth when scoring the profiler
//! (§6.3 of the paper), and the documentation models are derived from it.
//!
//! ```
//! use lfi_asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
//! use lfi_isa::Platform;
//!
//! let spec = LibrarySpec::new("libtiny.so", Platform::LinuxX86)
//!     .function(
//!         FunctionSpec::scalar("tiny_read", 3)
//!             .success(0)
//!             .fault(FaultSpec::returning(-1).with_errno(9)),
//!     );
//! let compiled = LibraryCompiler::new().compile(&spec);
//! assert_eq!(compiled.object.export_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assembler;
mod compile;
mod spec;

pub use assembler::{FnAsm, Label};
pub use compile::{CompiledFunction, CompiledLibrary, ExpectedOutcome, LibraryCompiler, PathInfo};
pub use spec::{ErrorMechanism, FaultSpec, FunctionSpec, LibrarySpec, SideEffectSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_isa::Platform;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LibrarySpec>();
        assert_send_sync::<FunctionSpec>();
        assert_send_sync::<CompiledLibrary>();
        assert_send_sync::<FnAsm>();
    }

    #[test]
    fn doc_example_compiles_and_validates() {
        let spec = LibrarySpec::new("libtiny.so", Platform::LinuxX86).function(
            FunctionSpec::scalar("tiny_read", 3)
                .success(0)
                .fault(FaultSpec::returning(-1).with_errno(9)),
        );
        let compiled = LibraryCompiler::new().compile(&spec);
        assert!(compiled.object.validate().is_ok());
    }
}
