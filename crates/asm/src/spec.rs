use lfi_isa::Platform;
use lfi_objfile::ReturnType;

/// How an error value comes into being inside the compiled function.
///
/// The mechanism determines which compiler idiom the lowering uses and, in
/// turn, which analysis the LFI profiler must apply to discover the error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorMechanism {
    /// The error constant is assigned directly on some path (`#define`-style
    /// return codes, the common case in §3.1).
    Direct,
    /// The error originates in the kernel: the function issues the given
    /// system call, and on failure negates the raw result into `errno` and
    /// returns -1 (the §3.2 listing).  The set of errno values is a property
    /// of the kernel image, not of this library.
    Syscall {
        /// System call number invoked.
        num: u32,
    },
    /// The error is whatever the named dependent function returns; the
    /// profiler must recurse into the callee (possibly in another library).
    Callee {
        /// Name of the dependent function.
        name: String,
    },
    /// The error value is produced by an *indirect* call, which the static
    /// analysis cannot resolve — a deliberate false-negative generator
    /// matching the paper's discussion of indirect calls.
    IndirectCall,
    /// The error path exists in the code but is guarded by a condition on
    /// hidden state that never holds at run time — a deliberate
    /// false-positive generator matching the paper's "functions that maintain
    /// state from one call to another".
    PhantomGuard,
}

/// A side effect accompanying an error return, beyond `errno`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SideEffectSpec {
    /// A named module-global variable is set to the given value.
    Global {
        /// Name of the global data symbol.
        name: String,
        /// Value stored into it.
        value: i64,
    },
    /// The value is written through a pointer passed as the `arg_index`-th
    /// argument (an output parameter).
    OutputArg {
        /// Index of the pointer argument written through.
        arg_index: u8,
        /// Value stored through it.
        value: i64,
    },
}

/// One fault a function can expose to its caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// The error return value placed in the ABI return location.
    pub retval: i64,
    /// The errno value set alongside the return, if any.
    pub errno: Option<i64>,
    /// Additional side effects applied on this path.
    pub side_effects: Vec<SideEffectSpec>,
    /// How the error value comes into being.
    pub mechanism: ErrorMechanism,
}

impl FaultSpec {
    /// A fault that directly returns `retval`.
    pub fn returning(retval: i64) -> Self {
        Self { retval, errno: None, side_effects: Vec::new(), mechanism: ErrorMechanism::Direct }
    }

    /// A fault whose errno originates from the kernel via the given syscall;
    /// the function returns -1 as in the §3.2 listing.
    pub fn via_syscall(num: u32) -> Self {
        Self { retval: -1, errno: None, side_effects: Vec::new(), mechanism: ErrorMechanism::Syscall { num } }
    }

    /// A fault propagated from the named dependent function.
    pub fn via_callee(name: impl Into<String>) -> Self {
        Self {
            retval: 0,
            errno: None,
            side_effects: Vec::new(),
            mechanism: ErrorMechanism::Callee { name: name.into() },
        }
    }

    /// Sets the errno value stored alongside the return value.
    pub fn with_errno(mut self, errno: i64) -> Self {
        self.errno = Some(errno);
        self
    }

    /// Adds a global-variable side effect.
    pub fn with_global(mut self, name: impl Into<String>, value: i64) -> Self {
        self.side_effects.push(SideEffectSpec::Global { name: name.into(), value });
        self
    }

    /// Adds an output-argument side effect.
    pub fn with_output_arg(mut self, arg_index: u8, value: i64) -> Self {
        self.side_effects.push(SideEffectSpec::OutputArg { arg_index, value });
        self
    }

    /// Marks the fault as reachable only through an indirect call (a
    /// false-negative generator for the profiler).
    pub fn hidden_behind_indirect_call(mut self) -> Self {
        self.mechanism = ErrorMechanism::IndirectCall;
        self
    }

    /// Marks the fault as guarded by never-true hidden state (a false-positive
    /// generator for the profiler).
    pub fn phantom(mut self) -> Self {
        self.mechanism = ErrorMechanism::PhantomGuard;
        self
    }
}

/// Declarative description of one library function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionSpec {
    /// Exported (or local) symbol name.
    pub name: String,
    /// Declared return type, as a development header would state it.
    pub return_type: ReturnType,
    /// Number of declared parameters.
    pub arity: u8,
    /// Whether the symbol is exported from the library.
    pub exported: bool,
    /// Return value on the success path (`None` for `void` functions).
    pub success_retval: Option<i64>,
    /// The faults this function can expose.
    pub faults: Vec<FaultSpec>,
    /// Names of dependent functions called on the success path whose return
    /// values do **not** become this function's return value (pure
    /// dependencies).
    pub plain_calls: Vec<String>,
    /// Whether the function is a short `isFile()`-style boolean predicate
    /// (returns 0/1, exercised by the paper's second heuristic).
    pub boolean_predicate: bool,
    /// Number of do-nothing padding instructions appended to inflate the code
    /// size (used to model large libraries for the efficiency experiment).
    pub padding: usize,
    /// Number of opaque indirect-branch sites included (never executed).
    pub indirect_branches: usize,
    /// Number of indirect call sites whose result is never used (present in
    /// the binary but irrelevant to the return-code analysis).
    pub stray_indirect_calls: usize,
}

impl FunctionSpec {
    /// Creates a spec for a scalar-returning exported function.
    pub fn scalar(name: impl Into<String>, arity: u8) -> Self {
        Self::with_return_type(name, ReturnType::Scalar, arity)
    }

    /// Creates a spec for a pointer-returning exported function.
    pub fn pointer(name: impl Into<String>, arity: u8) -> Self {
        Self::with_return_type(name, ReturnType::Pointer, arity)
    }

    /// Creates a spec for a `void` exported function.
    pub fn void(name: impl Into<String>, arity: u8) -> Self {
        let mut spec = Self::with_return_type(name, ReturnType::Void, arity);
        spec.success_retval = None;
        spec
    }

    fn with_return_type(name: impl Into<String>, return_type: ReturnType, arity: u8) -> Self {
        Self {
            name: name.into(),
            return_type,
            arity,
            exported: true,
            success_retval: Some(0),
            faults: Vec::new(),
            plain_calls: Vec::new(),
            boolean_predicate: false,
            padding: 0,
            indirect_branches: 0,
            stray_indirect_calls: 0,
        }
    }

    /// Sets the success-path return value.
    pub fn success(mut self, retval: i64) -> Self {
        self.success_retval = Some(retval);
        self
    }

    /// Adds a fault.
    pub fn fault(mut self, fault: FaultSpec) -> Self {
        self.faults.push(fault);
        self
    }

    /// Adds several faults at once.
    pub fn faults(mut self, faults: impl IntoIterator<Item = FaultSpec>) -> Self {
        self.faults.extend(faults);
        self
    }

    /// Adds a dependent call whose result is ignored.
    pub fn plain_call(mut self, callee: impl Into<String>) -> Self {
        self.plain_calls.push(callee.into());
        self
    }

    /// Marks the function as a boolean predicate (returns 0 or 1 only).
    pub fn boolean_predicate(mut self) -> Self {
        self.boolean_predicate = true;
        self.success_retval = Some(1);
        self
    }

    /// Marks the function as local (not exported).
    pub fn local(mut self) -> Self {
        self.exported = false;
        self
    }

    /// Appends `n` padding instructions to the body.
    pub fn padded(mut self, n: usize) -> Self {
        self.padding = n;
        self
    }

    /// Includes `n` opaque indirect-branch sites.
    pub fn with_indirect_branches(mut self, n: usize) -> Self {
        self.indirect_branches = n;
        self
    }

    /// Includes `n` indirect call sites whose results are ignored.
    pub fn with_stray_indirect_calls(mut self, n: usize) -> Self {
        self.stray_indirect_calls = n;
        self
    }
}

/// Declarative description of a whole shared library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibrarySpec {
    /// Library file name (e.g. `libc.so.6`).
    pub name: String,
    /// Target platform.
    pub platform: Platform,
    /// Functions defined by the library.
    pub functions: Vec<FunctionSpec>,
    /// Libraries this one depends on.
    pub dependencies: Vec<String>,
    /// Callee names that are imported rather than defined here, mapped to the
    /// library expected to provide them.
    pub imports: Vec<(String, Option<String>)>,
}

impl LibrarySpec {
    /// Creates an empty library spec.
    pub fn new(name: impl Into<String>, platform: Platform) -> Self {
        Self { name: name.into(), platform, functions: Vec::new(), dependencies: Vec::new(), imports: Vec::new() }
    }

    /// Adds a function.
    pub fn function(mut self, spec: FunctionSpec) -> Self {
        self.functions.push(spec);
        self
    }

    /// Adds several functions.
    pub fn functions(mut self, specs: impl IntoIterator<Item = FunctionSpec>) -> Self {
        self.functions.extend(specs);
        self
    }

    /// Records a dependency on another library.
    pub fn dependency(mut self, library: impl Into<String>) -> Self {
        self.dependencies.push(library.into());
        self
    }

    /// Declares an imported symbol provided by another library.
    pub fn import(mut self, symbol: impl Into<String>, library: Option<&str>) -> Self {
        self.imports.push((symbol.into(), library.map(str::to_owned)));
        self
    }

    /// Total number of declared functions.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_builders_set_mechanisms() {
        assert_eq!(FaultSpec::returning(-1).mechanism, ErrorMechanism::Direct);
        assert_eq!(FaultSpec::via_syscall(3).mechanism, ErrorMechanism::Syscall { num: 3 });
        assert_eq!(FaultSpec::via_callee("helper").mechanism, ErrorMechanism::Callee { name: "helper".into() });
        assert_eq!(FaultSpec::returning(-2).hidden_behind_indirect_call().mechanism, ErrorMechanism::IndirectCall);
        assert_eq!(FaultSpec::returning(-3).phantom().mechanism, ErrorMechanism::PhantomGuard);
    }

    #[test]
    fn fault_side_effects_accumulate() {
        let fault = FaultSpec::returning(-1).with_errno(5).with_global("last_error", 5).with_output_arg(1, 0);
        assert_eq!(fault.errno, Some(5));
        assert_eq!(fault.side_effects.len(), 2);
    }

    #[test]
    fn function_spec_defaults() {
        let f = FunctionSpec::scalar("read", 3);
        assert!(f.exported);
        assert_eq!(f.success_retval, Some(0));
        assert_eq!(f.return_type, ReturnType::Scalar);
        let v = FunctionSpec::void("free", 1);
        assert_eq!(v.success_retval, None);
        assert_eq!(v.return_type, ReturnType::Void);
        let b = FunctionSpec::scalar("is_file", 1).boolean_predicate();
        assert!(b.boolean_predicate);
        assert_eq!(b.success_retval, Some(1));
        let l = FunctionSpec::scalar("helper", 0).local();
        assert!(!l.exported);
    }

    #[test]
    fn library_spec_accumulates_functions_and_imports() {
        let lib = LibrarySpec::new("libx.so", Platform::LinuxX86)
            .dependency("libc.so.6")
            .import("malloc", Some("libc.so.6"))
            .function(FunctionSpec::scalar("a", 0))
            .functions(vec![FunctionSpec::scalar("b", 1), FunctionSpec::scalar("c", 2)]);
        assert_eq!(lib.function_count(), 3);
        assert_eq!(lib.dependencies, vec!["libc.so.6".to_owned()]);
        assert_eq!(lib.imports.len(), 1);
    }
}
