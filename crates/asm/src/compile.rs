use std::collections::HashMap;

use lfi_isa::{Cond, Inst, Loc, Operand, Platform, Reg};
use lfi_objfile::{ObjectBuilder, SharedObject, Storage, SymbolId};

use crate::{ErrorMechanism, FaultSpec, FnAsm, FunctionSpec, LibrarySpec, SideEffectSpec};

/// Offset of the hidden function-pointer slot used by indirect-call faults.
const FNPTR_SLOT_OFFSET: u32 = 0x0f00;
/// Offset of the hidden state variable guarding phantom error paths.
const HIDDEN_STATE_OFFSET: u32 = 0x0f08;
/// Magic value the phantom guard compares against (never set at run time).
const PHANTOM_MAGIC: i64 = 0x5a5a;
/// First offset handed out to named global data symbols.
const GLOBAL_BASE_OFFSET: u32 = 0x1000;

/// What actually happens when a compiled function is driven down one path.
///
/// The corpus uses this as execution ground truth: a profiler-reported error
/// is a *true positive* iff some reachable path actually produces it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpectedOutcome {
    /// Whether the path can execute at run time (phantom paths cannot).
    pub reachable: bool,
    /// The constant return value of the path, when it is a constant of this
    /// function.  `None` when the value is propagated from a callee or an
    /// indirect call, or when the function is `void`.
    pub retval: Option<i64>,
    /// Name of the dependent function the return value is propagated from.
    pub propagated_from: Option<String>,
    /// Constant errno value set on this path, if any.
    pub errno: Option<i64>,
    /// System call whose (kernel-determined) error becomes errno on this path.
    pub errno_from_syscall: Option<u32>,
    /// Additional side effects applied on this path.
    pub side_effects: Vec<SideEffectSpec>,
}

impl ExpectedOutcome {
    fn success(retval: Option<i64>) -> Self {
        Self {
            reachable: true,
            retval,
            propagated_from: None,
            errno: None,
            errno_from_syscall: None,
            side_effects: Vec::new(),
        }
    }
}

/// Describes one executable path through a compiled function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathInfo {
    /// The value of argument 0 that steers execution down this path.
    pub selector: i64,
    /// Index into the spec's fault list (`None` for the success path).
    pub fault_index: Option<usize>,
    /// What the path does.
    pub outcome: ExpectedOutcome,
}

/// One function after lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledFunction {
    /// Function name.
    pub name: String,
    /// Symbol id inside the compiled object.
    pub symbol: SymbolId,
    /// The original specification.
    pub spec: FunctionSpec,
    /// Ground-truth path table.
    pub paths: Vec<PathInfo>,
}

/// A compiled library: the binary object plus its ground-truth metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledLibrary {
    /// The SimObj shared object, as the profiler will see it.
    pub object: SharedObject,
    /// Per-function ground truth.
    pub functions: Vec<CompiledFunction>,
    /// Offsets allocated for named global data symbols.
    pub globals: HashMap<String, u32>,
}

impl CompiledLibrary {
    /// Looks up the ground truth for a function by name.
    pub fn function(&self, name: &str) -> Option<&CompiledFunction> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// Lowers [`LibrarySpec`]s into SimObj shared objects.
#[derive(Debug, Clone, Default)]
pub struct LibraryCompiler {
    _private: (),
}

impl LibraryCompiler {
    /// Creates a compiler with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles a library specification into a shared object plus ground
    /// truth.
    pub fn compile(&self, spec: &LibrarySpec) -> CompiledLibrary {
        let abi = spec.platform.abi();

        // --- Symbol layout -------------------------------------------------
        // Defined functions occupy symbol ids 0..n-1 in spec order; imports
        // follow.  `call` instructions reference these ids, so the layout is
        // fixed before any body is lowered.
        let mut symbol_ids: HashMap<String, SymbolId> = HashMap::new();
        for (i, f) in spec.functions.iter().enumerate() {
            symbol_ids.insert(f.name.clone(), SymbolId(i as u32));
        }
        let mut imports: Vec<(String, Option<String>)> = Vec::new();
        let intern_import = |name: &str,
                             hint: Option<&str>,
                             symbol_ids: &mut HashMap<String, SymbolId>,
                             imports: &mut Vec<(String, Option<String>)>| {
            if !symbol_ids.contains_key(name) {
                let id = SymbolId((spec.functions.len() + imports.len()) as u32);
                symbol_ids.insert(name.to_owned(), id);
                imports.push((name.to_owned(), hint.map(str::to_owned)));
            }
        };
        for (name, hint) in &spec.imports {
            intern_import(name, hint.as_deref(), &mut symbol_ids, &mut imports);
        }
        for f in &spec.functions {
            for callee in &f.plain_calls {
                intern_import(callee, None, &mut symbol_ids, &mut imports);
            }
            for fault in &f.faults {
                if let ErrorMechanism::Callee { name } = &fault.mechanism {
                    intern_import(name, None, &mut symbol_ids, &mut imports);
                }
            }
        }

        // --- Data layout ---------------------------------------------------
        let mut globals: HashMap<String, u32> = HashMap::new();
        let mut next_global = GLOBAL_BASE_OFFSET;
        for f in &spec.functions {
            for fault in &f.faults {
                for effect in &fault.side_effects {
                    if let SideEffectSpec::Global { name, .. } = effect {
                        globals.entry(name.clone()).or_insert_with(|| {
                            let offset = next_global;
                            next_global += 8;
                            offset
                        });
                    }
                }
            }
        }
        let needs_errno = spec.functions.iter().any(|f| {
            f.faults
                .iter()
                .any(|fault| fault.errno.is_some() || matches!(fault.mechanism, ErrorMechanism::Syscall { .. }))
        });

        // --- Lower every function -------------------------------------------
        let mut builder = ObjectBuilder::new(spec.name.clone(), spec.platform);
        for dep in &spec.dependencies {
            builder = builder.dependency(dep.clone());
        }
        if needs_errno {
            builder = builder.data_symbol("errno", abi.errno_tls_offset(), Storage::Tls);
        }
        for (name, offset) in &globals {
            builder = builder.data_symbol(name.clone(), *offset, Storage::Global);
        }
        builder = builder.data_symbol("__lfi_fnptr", FNPTR_SLOT_OFFSET, Storage::Global).data_symbol(
            "__lfi_hidden_state",
            HIDDEN_STATE_OFFSET,
            Storage::Global,
        );

        let mut compiled_functions = Vec::with_capacity(spec.functions.len());
        for f in &spec.functions {
            let (body, paths) = lower_function(f, spec.platform, &symbol_ids, &globals);
            let symbol = symbol_ids[&f.name];
            compiled_functions.push(CompiledFunction { name: f.name.clone(), symbol, spec: f.clone(), paths });
            builder = if f.exported {
                builder.export_with_signature(f.name.clone(), f.return_type, f.arity, body)
            } else {
                builder.local(f.name.clone(), body)
            };
        }
        for (name, hint) in &imports {
            builder = builder.import(name.clone(), hint.as_deref());
        }

        CompiledLibrary { object: builder.build(), functions: compiled_functions, globals }
    }
}

/// Lowers a single function to SimISA and produces its path table.
fn lower_function(
    spec: &FunctionSpec,
    platform: Platform,
    symbol_ids: &HashMap<String, SymbolId>,
    globals: &HashMap<String, u32>,
) -> (Vec<Inst>, Vec<PathInfo>) {
    let abi = platform.abi();
    let ret = abi.return_loc();
    let pic = abi.pic_base_reg();
    let scratch = Reg(2);
    let ptr_scratch = Reg(4);
    let val_scratch = Reg(5);

    let mut asm = FnAsm::new();
    let mut paths = Vec::new();

    // Dispatch: compare the selector argument against each fault index.
    let fault_labels: Vec<_> = spec.faults.iter().map(|_| asm.declare_label()).collect();
    for (i, label) in fault_labels.iter().enumerate() {
        asm.cmp(Loc::Arg(0), (i + 1) as i64);
        asm.jmp_cond(Cond::Eq, *label);
    }

    // --- Success path ------------------------------------------------------
    for callee in &spec.plain_calls {
        asm.push(Inst::Call { sym: symbol_ids[callee].0 });
    }
    if spec.boolean_predicate {
        // if (arg1 == 0) return 0; else return 1;  — an isFile()-style check.
        let zero_path = asm.declare_label();
        asm.cmp(Loc::Arg(1), 0i64);
        asm.jmp_cond(Cond::Eq, zero_path);
        asm.mov_imm(ret, 1);
        asm.ret();
        asm.bind(zero_path);
        asm.mov_imm(ret, 0);
        asm.ret();
    } else {
        if let Some(v) = spec.success_retval {
            asm.mov_imm(ret, v);
        }
        asm.ret();
    }
    paths.push(PathInfo {
        selector: 0,
        fault_index: None,
        outcome: ExpectedOutcome::success(if spec.boolean_predicate { Some(1) } else { spec.success_retval }),
    });

    // --- Fault paths ---------------------------------------------------------
    for (i, fault) in spec.faults.iter().enumerate() {
        asm.bind(fault_labels[i]);
        let selector = (i + 1) as i64;
        let outcome = lower_fault(
            &mut asm,
            fault,
            spec,
            platform,
            symbol_ids,
            globals,
            LowerRegs { ret, pic, scratch, ptr_scratch, val_scratch },
        );
        paths.push(PathInfo { selector, fault_index: Some(i), outcome });
    }

    // --- Padding -------------------------------------------------------------
    // Dead straight-line code after the final `ret`, used to model large
    // libraries for the profiling-time experiment.  Indirect branch sites are
    // placed here so they show up in the static statistics without ever
    // executing.
    for j in 0..spec.padding {
        asm.mov_imm(Loc::Stack(-(8 * (j as i32 + 1))), j as i64);
    }
    for _ in 0..spec.indirect_branches {
        asm.push(Inst::JmpIndirect { loc: Loc::Reg(Reg(6)) });
    }
    for _ in 0..spec.stray_indirect_calls {
        asm.push(Inst::CallIndirect { loc: Loc::Reg(Reg(6)) });
    }

    (asm.finish(), paths)
}

struct LowerRegs {
    ret: Loc,
    pic: Reg,
    scratch: Reg,
    ptr_scratch: Reg,
    val_scratch: Reg,
}

fn lower_fault(
    asm: &mut FnAsm,
    fault: &FaultSpec,
    spec: &FunctionSpec,
    platform: Platform,
    symbol_ids: &HashMap<String, SymbolId>,
    globals: &HashMap<String, u32>,
    regs: LowerRegs,
) -> ExpectedOutcome {
    let abi = platform.abi();
    let LowerRegs { ret, pic, scratch, ptr_scratch, val_scratch } = regs;

    let emit_side_effects = |asm: &mut FnAsm, fault: &FaultSpec| {
        if let Some(errno) = fault.errno {
            asm.push(Inst::LeaPicBase { dst: pic });
            asm.push(Inst::Store { base: pic, offset: abi.errno_tls_offset() as i32, src: Operand::Imm(errno) });
        }
        for effect in &fault.side_effects {
            match effect {
                SideEffectSpec::Global { name, value } => {
                    let offset = globals[name];
                    asm.push(Inst::LeaPicBase { dst: pic });
                    asm.push(Inst::Store { base: pic, offset: offset as i32, src: Operand::Imm(*value) });
                }
                SideEffectSpec::OutputArg { arg_index, value } => {
                    asm.mov(Loc::Reg(ptr_scratch), Loc::Arg(*arg_index));
                    asm.push(Inst::Store { base: ptr_scratch, offset: 0, src: Operand::Imm(*value) });
                }
            }
        }
    };

    match &fault.mechanism {
        ErrorMechanism::Direct => {
            emit_side_effects(asm, fault);
            if fault.retval % 2 == 0 {
                // Real compilers frequently park the error code in a local and
                // copy it into the return register at the exit block; emitting
                // both shapes keeps the reverse constant propagation honest
                // (and gives the §6.2 hop count something to measure).
                asm.mov_imm(Loc::Stack(-8), fault.retval);
                asm.mov(ret, Loc::Stack(-8));
            } else {
                asm.mov_imm(ret, fault.retval);
            }
            asm.ret();
            ExpectedOutcome {
                reachable: true,
                retval: Some(fault.retval),
                propagated_from: None,
                errno: fault.errno,
                errno_from_syscall: None,
                side_effects: fault.side_effects.clone(),
            }
        }
        ErrorMechanism::Syscall { num } => {
            // The §3.2 listing: issue the syscall, negate its raw (negative)
            // result into errno through the PIC base, and return -1.
            asm.push(Inst::Syscall { num: *num });
            asm.push(Inst::LeaPicBase { dst: pic });
            asm.mov(Loc::Reg(scratch), ret);
            asm.push(Inst::Neg { dst: Loc::Reg(scratch) });
            asm.push(Inst::Store {
                base: pic,
                offset: abi.errno_tls_offset() as i32,
                src: Operand::Loc(Loc::Reg(scratch)),
            });
            emit_side_effects(asm, &FaultSpec { errno: None, ..fault.clone() });
            asm.mov_imm(ret, fault.retval);
            asm.ret();
            ExpectedOutcome {
                reachable: true,
                retval: Some(fault.retval),
                propagated_from: None,
                errno: None,
                errno_from_syscall: Some(*num),
                side_effects: fault.side_effects.clone(),
            }
        }
        ErrorMechanism::Callee { name } => {
            emit_side_effects(asm, fault);
            asm.push(Inst::Call { sym: symbol_ids[name].0 });
            asm.ret();
            ExpectedOutcome {
                reachable: true,
                retval: None,
                propagated_from: Some(name.clone()),
                errno: fault.errno,
                errno_from_syscall: None,
                side_effects: fault.side_effects.clone(),
            }
        }
        ErrorMechanism::IndirectCall => {
            // Fetch a function pointer from module data and call through it;
            // the static analysis cannot resolve the target, so the error
            // value produced here is invisible to the profiler.
            emit_side_effects(asm, fault);
            asm.push(Inst::LeaPicBase { dst: ptr_scratch });
            asm.push(Inst::Load { dst: val_scratch, base: ptr_scratch, offset: FNPTR_SLOT_OFFSET as i32 });
            asm.push(Inst::CallIndirect { loc: Loc::Reg(val_scratch) });
            asm.ret();
            ExpectedOutcome {
                reachable: true,
                retval: Some(fault.retval),
                propagated_from: None,
                errno: fault.errno,
                errno_from_syscall: None,
                side_effects: fault.side_effects.clone(),
            }
        }
        ErrorMechanism::PhantomGuard => {
            // if (hidden_state == MAGIC) return retval; else fall back to the
            // success value.  The magic value is never set at run time, so the
            // error path is statically present but dynamically unreachable.
            let fallback = asm.declare_label();
            asm.push(Inst::LeaPicBase { dst: ptr_scratch });
            asm.push(Inst::Load { dst: val_scratch, base: ptr_scratch, offset: HIDDEN_STATE_OFFSET as i32 });
            asm.cmp(Loc::Reg(val_scratch), PHANTOM_MAGIC);
            asm.jmp_cond(Cond::Ne, fallback);
            emit_side_effects(asm, fault);
            asm.mov_imm(ret, fault.retval);
            asm.ret();
            asm.bind(fallback);
            if let Some(v) = spec.success_retval {
                asm.mov_imm(ret, v);
            }
            asm.ret();
            ExpectedOutcome {
                reachable: false,
                retval: Some(fault.retval),
                propagated_from: None,
                errno: fault.errno,
                errno_from_syscall: None,
                side_effects: fault.side_effects.clone(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_isa::encode::decode_function;
    use lfi_isa::vm::{ConstEnv, FnEnv, Vm};

    fn compile_one(spec: FunctionSpec) -> CompiledLibrary {
        LibraryCompiler::new().compile(&LibrarySpec::new("libtest.so", Platform::LinuxX86).function(spec))
    }

    fn run_path(lib: &CompiledLibrary, name: &str, selector: i64) -> lfi_isa::vm::ExecOutcome {
        let code = lib.object.code_for_name(name).unwrap();
        let body = decode_function(&code.code).unwrap();
        let vm = Vm::new(lib.object.platform());
        vm.run(&body, &[selector, 1, 0, 0], &mut ConstEnv { call_result: 0, syscall_result: -5 })
            .unwrap()
    }

    #[test]
    fn direct_fault_returns_constant_and_sets_errno() {
        let lib = compile_one(FunctionSpec::scalar("f", 1).success(0).fault(FaultSpec::returning(-1).with_errno(9)));
        assert_eq!(run_path(&lib, "f", 0).return_value, 0);
        let out = run_path(&lib, "f", 1);
        assert_eq!(out.return_value, -1);
        let abi = Platform::LinuxX86.abi();
        let errno_writes: Vec<_> = out
            .stores
            .iter()
            .filter(|s| s.module_offset() == Some(abi.errno_tls_offset()))
            .map(|s| s.value)
            .collect();
        assert_eq!(errno_writes, vec![9]);
    }

    #[test]
    fn syscall_fault_uses_negate_idiom() {
        let lib = compile_one(FunctionSpec::scalar("sys_read", 3).success(0).fault(FaultSpec::via_syscall(6)));
        let out = run_path(&lib, "sys_read", 1);
        assert_eq!(out.return_value, -1);
        let abi = Platform::LinuxX86.abi();
        let errno_writes: Vec<_> = out
            .stores
            .iter()
            .filter(|s| s.module_offset() == Some(abi.errno_tls_offset()))
            .map(|s| s.value)
            .collect();
        // ConstEnv returned -5 from the syscall, so errno must be 5.
        assert_eq!(errno_writes, vec![5]);
    }

    #[test]
    fn callee_fault_propagates_the_callee_result() {
        let spec = LibrarySpec::new("libdep.so", Platform::LinuxX86)
            .function(FunctionSpec::scalar("inner", 1).success(0).fault(FaultSpec::returning(-7)))
            .function(FunctionSpec::scalar("outer", 1).success(0).fault(FaultSpec::via_callee("inner")));
        let lib = LibraryCompiler::new().compile(&spec);
        let code = lib.object.code_for_name("outer").unwrap();
        let body = decode_function(&code.code).unwrap();
        let inner_sym = lib.function("inner").unwrap().symbol;
        let mut env = FnEnv::new(
            move |sym| {
                assert_eq!(sym, inner_sym.0);
                Ok(-7)
            },
            |_| 0,
        );
        let out = Vm::new(Platform::LinuxX86).run(&body, &[1], &mut env).unwrap();
        assert_eq!(out.return_value, -7);
        let expected = &lib.function("outer").unwrap().paths[1].outcome;
        assert_eq!(expected.propagated_from.as_deref(), Some("inner"));
    }

    #[test]
    fn phantom_fault_is_unreachable_at_run_time() {
        let lib = compile_one(FunctionSpec::scalar("g", 1).success(0).fault(FaultSpec::returning(-99).phantom()));
        // Driving the phantom selector still produces the success value.
        assert_eq!(run_path(&lib, "g", 1).return_value, 0);
        let path = &lib.function("g").unwrap().paths[1];
        assert!(!path.outcome.reachable);
        assert_eq!(path.outcome.retval, Some(-99));
    }

    #[test]
    fn output_arg_side_effect_writes_through_pointer() {
        let lib = compile_one(
            FunctionSpec::scalar("h", 2)
                .success(0)
                .fault(FaultSpec::returning(-1).with_output_arg(1, 1234)),
        );
        let code = lib.object.code_for_name("h").unwrap();
        let body = decode_function(&code.code).unwrap();
        let vm = Vm::new(Platform::LinuxX86);
        let out = vm.run(&body, &[1, 0x7000], &mut ConstEnv::default()).unwrap();
        assert_eq!(out.return_value, -1);
        assert!(out.stores.iter().any(|s| s.base_value == 0x7000 && s.value == 1234));
    }

    #[test]
    fn boolean_predicate_returns_zero_or_one() {
        let lib = compile_one(FunctionSpec::scalar("is_file", 2).boolean_predicate());
        let code = lib.object.code_for_name("is_file").unwrap();
        let body = decode_function(&code.code).unwrap();
        let vm = Vm::new(Platform::LinuxX86);
        let one = vm.run(&body, &[0, 5], &mut ConstEnv::default()).unwrap();
        let zero = vm.run(&body, &[0, 0], &mut ConstEnv::default()).unwrap();
        assert_eq!(one.return_value, 1);
        assert_eq!(zero.return_value, 0);
    }

    #[test]
    fn padding_inflates_code_size() {
        let small = compile_one(FunctionSpec::scalar("s", 1).success(0));
        let big = compile_one(FunctionSpec::scalar("s", 1).success(0).padded(500));
        assert!(big.object.code_size() > small.object.code_size() + 500);
    }

    #[test]
    fn imports_are_created_for_external_callees() {
        let spec = LibrarySpec::new("libapp.so", Platform::LinuxX86).dependency("libc.so.6").function(
            FunctionSpec::scalar("wrapper", 1)
                .success(0)
                .fault(FaultSpec::via_callee("read"))
                .plain_call("close"),
        );
        let lib = LibraryCompiler::new().compile(&spec);
        let (_, read_sym) = lib.object.symbol_by_name("read").unwrap();
        let (_, close_sym) = lib.object.symbol_by_name("close").unwrap();
        assert!(!read_sym.is_defined());
        assert!(!close_sym.is_defined());
        assert!(lib.object.validate().is_ok());
    }

    #[test]
    fn globals_get_distinct_offsets() {
        let lib = compile_one(
            FunctionSpec::scalar("multi", 1)
                .success(0)
                .fault(FaultSpec::returning(-1).with_global("a", 1).with_global("b", 2)),
        );
        let a = lib.globals["a"];
        let b = lib.globals["b"];
        assert_ne!(a, b);
        assert!(lib.object.data_symbol_named("a").is_some());
        assert!(lib.object.data_symbol_named("b").is_some());
    }

    #[test]
    fn sparc_lowering_places_return_in_r8() {
        let spec = LibrarySpec::new("libsparc.so", Platform::SolarisSparc)
            .function(FunctionSpec::scalar("f", 1).success(3).fault(FaultSpec::returning(-2)));
        let lib = LibraryCompiler::new().compile(&spec);
        let code = lib.object.code_for_name("f").unwrap();
        let body = decode_function(&code.code).unwrap();
        let vm = Vm::new(Platform::SolarisSparc);
        assert_eq!(vm.run(&body, &[0], &mut ConstEnv::default()).unwrap().return_value, 3);
        assert_eq!(vm.run(&body, &[1], &mut ConstEnv::default()).unwrap().return_value, -2);
    }

    #[test]
    fn void_functions_have_no_success_constant() {
        let lib = compile_one(FunctionSpec::void("noop", 0));
        let f = lib.function("noop").unwrap();
        assert_eq!(f.paths[0].outcome.retval, None);
    }
}
