//! The Ubuntu-library survey corpus behind the paper's Table 1 (§3.2): more
//! than 20,000 exported functions whose return types and error-detail
//! channels follow the distribution the paper measured, plus the occasional
//! indirect branches and calls counted by the §3.1 statistics.

use lfi_asm::{CompiledLibrary, FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
use lfi_isa::Platform;
use lfi_objfile::ReturnType;
use lfi_profile::{ErrorReturn, FaultProfile, FunctionProfile, SideEffect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The channel a function uses to expose error details beyond its return
/// value (the columns of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetailChannel {
    /// No side channel.
    None,
    /// errno-style TLS or a module-global variable.
    GlobalLocation,
    /// Output arguments.
    Arguments,
}

/// One cell of Table 1: a (return type, channel) pair and its expected
/// fraction of all surveyed functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Cell {
    /// Declared return type.
    pub return_type: ReturnType,
    /// Error-detail channel.
    pub channel: DetailChannel,
    /// Fraction of all functions, in [0, 1].
    pub fraction: f64,
}

/// The paper's Table 1, as fractions of all surveyed functions.
pub const TABLE1_EXPECTED: &[Table1Cell] = &[
    Table1Cell { return_type: ReturnType::Void, channel: DetailChannel::None, fraction: 0.230 },
    Table1Cell { return_type: ReturnType::Scalar, channel: DetailChannel::None, fraction: 0.565 },
    Table1Cell { return_type: ReturnType::Scalar, channel: DetailChannel::GlobalLocation, fraction: 0.010 },
    Table1Cell { return_type: ReturnType::Scalar, channel: DetailChannel::Arguments, fraction: 0.035 },
    Table1Cell { return_type: ReturnType::Pointer, channel: DetailChannel::None, fraction: 0.116 },
    Table1Cell { return_type: ReturnType::Pointer, channel: DetailChannel::GlobalLocation, fraction: 0.010 },
    Table1Cell { return_type: ReturnType::Pointer, channel: DetailChannel::Arguments, fraction: 0.034 },
];

/// Configuration of the survey corpus generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurveyConfig {
    /// Number of libraries to generate.
    pub libraries: usize,
    /// Exported functions per library.
    pub functions_per_library: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SurveyConfig {
    /// The full-scale survey: 30 libraries × 700 functions ≈ 21,000 exported
    /// functions, exceeding the paper's ">20,000 functions".
    pub fn full() -> Self {
        Self { libraries: 30, functions_per_library: 700, seed: 2009 }
    }

    /// A reduced survey for unit tests and quick runs.
    pub fn small() -> Self {
        Self { libraries: 4, functions_per_library: 120, seed: 2009 }
    }

    /// A survey scaled to approximately `total` functions (never fewer),
    /// split into [`SurveyConfig::full`]-sized libraries.  The knob for
    /// benches and tests that need a 10k-function corpus without paying for
    /// the full >20k survey.
    pub fn scaled(total: usize) -> Self {
        let per_library = 500;
        Self { libraries: total.div_ceil(per_library).max(1), functions_per_library: per_library, seed: 2009 }
    }

    /// Total number of functions the configuration will generate.
    pub fn total_functions(&self) -> usize {
        self.libraries * self.functions_per_library
    }
}

/// Draws a Table 1 cell according to the expected distribution.
fn draw_cell(rng: &mut StdRng) -> Table1Cell {
    let mut x: f64 = rng.gen();
    for cell in TABLE1_EXPECTED {
        if x < cell.fraction {
            return *cell;
        }
        x -= cell.fraction;
    }
    TABLE1_EXPECTED[1] // scalar / none absorbs rounding residue
}

/// Generates the survey corpus.
pub fn survey_corpus(config: SurveyConfig) -> Vec<CompiledLibrary> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut libraries = Vec::with_capacity(config.libraries);
    for lib_index in 0..config.libraries {
        let mut spec =
            LibrarySpec::new(format!("libsurvey{lib_index:02}.so"), Platform::LinuxX86).import("svy_helper", None);
        for fn_index in 0..config.functions_per_library {
            let cell = draw_cell(&mut rng);
            let name = format!("svy{lib_index:02}_fn_{fn_index:04}");
            let mut function = match cell.return_type {
                ReturnType::Void => FunctionSpec::void(&name, 2),
                ReturnType::Scalar => FunctionSpec::scalar(&name, 2).success(0),
                ReturnType::Pointer => FunctionSpec::pointer(&name, 2).success(0x2000),
            };
            let error_code = if cell.return_type == ReturnType::Pointer { 0 } else { -1 };
            match cell.channel {
                DetailChannel::None => {
                    if cell.return_type != ReturnType::Void {
                        function = function.fault(FaultSpec::returning(error_code));
                    }
                }
                DetailChannel::GlobalLocation => {
                    // Half use errno-style TLS, half a named global, as both
                    // count as "error details in global location".
                    if rng.gen_bool(0.5) {
                        function = function.fault(FaultSpec::returning(error_code).with_errno(5));
                    } else {
                        function = function.fault(FaultSpec::returning(error_code).with_global("last_error", 5));
                    }
                }
                DetailChannel::Arguments => {
                    function = function.fault(FaultSpec::returning(error_code).with_output_arg(1, 22));
                }
            }
            // Most functions call other functions directly; indirection is
            // rare, matching the §3.1 statistics: ~0.07% of functions gain an
            // indirect-call error path (the kind that affects accuracy), ~3%
            // an indirect call whose result is ignored, and ~1.5% an indirect
            // branch site among many direct branches.
            if rng.gen_bool(0.6) {
                function = function.plain_call("svy_helper");
            }
            if rng.gen_bool(0.0007) && cell.return_type != ReturnType::Void {
                function = function.fault(FaultSpec::returning(-120).hidden_behind_indirect_call());
            }
            if rng.gen_bool(0.012) {
                function = function.with_stray_indirect_calls(1);
            }
            if rng.gen_bool(0.002) {
                function = function.with_indirect_branches(1);
            }
            spec = spec.function(function);
        }
        libraries.push(LibraryCompiler::new().compile(&spec));
    }
    libraries
}

/// Generates the survey's fault profiles *directly* — same Table 1
/// distribution and naming as [`survey_corpus`], but skipping binary
/// compilation and static analysis entirely.  This is the fast path for
/// persistence benches and tests that need a 10k-function
/// [`FaultProfile`] corpus in milliseconds; use [`survey_corpus`] when the
/// binaries themselves matter.  Deterministic for a given config.
pub fn survey_profiles(config: SurveyConfig) -> Vec<FaultProfile> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut profiles = Vec::with_capacity(config.libraries);
    for lib_index in 0..config.libraries {
        let library = format!("libsurvey{lib_index:02}.so");
        let mut profile = FaultProfile::new(&library).with_platform(Platform::LinuxX86.to_string());
        for fn_index in 0..config.functions_per_library {
            let cell = draw_cell(&mut rng);
            if cell.return_type == ReturnType::Void {
                continue; // void functions expose no injectable error return
            }
            let name = format!("svy{lib_index:02}_fn_{fn_index:04}");
            let retval = if cell.return_type == ReturnType::Pointer { 0 } else { -1 };
            let side_effects = match cell.channel {
                DetailChannel::None => Vec::new(),
                DetailChannel::GlobalLocation => {
                    if rng.gen_bool(0.5) {
                        vec![SideEffect::tls(&library, 0x100, 5)]
                    } else {
                        vec![SideEffect::global(&library, 0x200, 5)]
                    }
                }
                DetailChannel::Arguments => vec![SideEffect::output_arg(&library, 1, 22)],
            };
            profile.push_function(FunctionProfile { name, error_returns: vec![ErrorReturn { retval, side_effects }] });
        }
        profiles.push(profile);
    }
    profiles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_fractions_sum_to_one() {
        let total: f64 = TABLE1_EXPECTED.iter().map(|c| c.fraction).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn full_config_exceeds_twenty_thousand_functions() {
        assert!(SurveyConfig::full().total_functions() > 20_000);
    }

    #[test]
    fn small_corpus_generates_the_requested_shape() {
        let config = SurveyConfig::small();
        let corpus = survey_corpus(config);
        assert_eq!(corpus.len(), config.libraries);
        let total_exports: usize = corpus.iter().map(|l| l.object.export_count()).sum();
        assert_eq!(total_exports, config.total_functions());
        for library in &corpus {
            assert!(library.object.validate().is_ok());
        }
    }

    #[test]
    fn scaled_config_reaches_the_requested_size() {
        assert!(SurveyConfig::scaled(10_000).total_functions() >= 10_000);
        assert!(SurveyConfig::scaled(10_000).total_functions() < 11_000, "scaled, not full");
        assert_eq!(SurveyConfig::scaled(0).libraries, 1);
    }

    #[test]
    fn survey_profiles_match_the_distribution_without_compiling() {
        let config = SurveyConfig { libraries: 2, functions_per_library: 400, seed: 11 };
        let profiles = survey_profiles(config);
        assert_eq!(profiles.len(), 2);
        let functions: usize = profiles.iter().map(FaultProfile::function_count).sum();
        // Void functions (≈23%) carry no error return and are skipped.
        assert!(functions > 500 && functions < 700, "non-void survivors: {functions}");
        let with_side_effects = profiles
            .iter()
            .flat_map(|p| p.functions.iter())
            .filter(|f| f.error_returns.iter().any(|e| !e.side_effects.is_empty()))
            .count();
        assert!(with_side_effects > 20, "global/argument channels present: {with_side_effects}");
        assert_eq!(profiles, survey_profiles(config), "deterministic for a seed");
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = survey_corpus(SurveyConfig { libraries: 1, functions_per_library: 40, seed: 9 });
        let b = survey_corpus(SurveyConfig { libraries: 1, functions_per_library: 40, seed: 9 });
        assert_eq!(a[0].object, b[0].object);
    }

    #[test]
    fn return_types_cover_all_three_kinds() {
        let corpus = survey_corpus(SurveyConfig { libraries: 1, functions_per_library: 300, seed: 1 });
        let object = &corpus[0].object;
        let mut kinds = std::collections::HashSet::new();
        for (_, symbol) in object.exported_symbols() {
            if let Some(sig) = symbol.signature {
                kinds.insert(sig.return_type);
            }
        }
        assert_eq!(kinds.len(), 3);
    }
}
