//! The named libraries of the accuracy evaluation (Table 2 and the libpcre
//! manual-inspection experiment, §6.3), generated so that the profiler's
//! true-positive / false-negative / false-positive counts against the
//! accompanying documentation model land where the paper reports them.
//!
//! The generator places each count deliberately:
//!
//! * **true positives** — ordinary documented `#define`-style error returns;
//! * **false negatives** — documented errors whose constant only reaches the
//!   return location through an *indirect call*, which the static analysis
//!   cannot resolve (§3.1);
//! * **false positives** — error paths guarded by hidden state that never
//!   holds at run time (the "functions maintain more state from one call to
//!   another" effect §6.3 blames for false positives).

use std::collections::BTreeSet;

use lfi_asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
use lfi_isa::Platform;
use lfi_objfile::ReturnType;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::truth::{CorpusLibrary, ErrorCodeMap};

/// One row of the paper's Table 2, plus the export count and approximate code
/// size used for the efficiency experiment (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2Entry {
    /// Library name as printed in the paper.
    pub name: &'static str,
    /// Evaluation platform.
    pub platform: Platform,
    /// Number of exported functions.
    pub exports: usize,
    /// True positives reported in the paper.
    pub true_positives: usize,
    /// False negatives reported in the paper.
    pub false_negatives: usize,
    /// False positives reported in the paper.
    pub false_positives: usize,
    /// Approximate code-segment size, in KiB.
    pub code_kb: usize,
}

impl Table2Entry {
    /// The accuracy this row should land at, `TP / (TP + FN + FP)`.
    pub fn expected_accuracy(&self) -> f64 {
        let total = self.true_positives + self.false_negatives + self.false_positives;
        if total == 0 {
            1.0
        } else {
            self.true_positives as f64 / total as f64
        }
    }
}

/// The 18 libraries of Table 2 with the paper's TP/FN/FP counts.
pub const TABLE2: &[Table2Entry] = &[
    Table2Entry {
        name: "libssl",
        platform: Platform::WindowsX86,
        exports: 320,
        true_positives: 164,
        false_negatives: 18,
        false_positives: 6,
        code_kb: 310,
    },
    Table2Entry {
        name: "libxml2",
        platform: Platform::SolarisSparc,
        exports: 1612,
        true_positives: 1003,
        false_negatives: 138,
        false_positives: 88,
        code_kb: 905,
    },
    Table2Entry {
        name: "libpanel",
        platform: Platform::SolarisSparc,
        exports: 28,
        true_positives: 23,
        false_negatives: 0,
        false_positives: 0,
        code_kb: 14,
    },
    Table2Entry {
        name: "libpctx",
        platform: Platform::SolarisSparc,
        exports: 15,
        true_positives: 10,
        false_negatives: 0,
        false_positives: 2,
        code_kb: 18,
    },
    Table2Entry {
        name: "libldap",
        platform: Platform::LinuxX86,
        exports: 410,
        true_positives: 368,
        false_negatives: 45,
        false_positives: 21,
        code_kb: 330,
    },
    Table2Entry {
        name: "libxml2",
        platform: Platform::LinuxX86,
        exports: 1612,
        true_positives: 989,
        false_negatives: 152,
        false_positives: 102,
        code_kb: 897,
    },
    Table2Entry {
        name: "libXss",
        platform: Platform::LinuxX86,
        exports: 14,
        true_positives: 12,
        false_negatives: 1,
        false_positives: 0,
        code_kb: 9,
    },
    Table2Entry {
        name: "libgtkspell",
        platform: Platform::LinuxX86,
        exports: 12,
        true_positives: 7,
        false_negatives: 0,
        false_positives: 0,
        code_kb: 21,
    },
    Table2Entry {
        name: "libpanel",
        platform: Platform::LinuxX86,
        exports: 28,
        true_positives: 21,
        false_negatives: 2,
        false_positives: 0,
        code_kb: 15,
    },
    Table2Entry {
        name: "libdmx",
        platform: Platform::LinuxX86,
        exports: 18,
        true_positives: 26,
        false_negatives: 8,
        false_positives: 0,
        code_kb: 8,
    },
    Table2Entry {
        name: "libao",
        platform: Platform::LinuxX86,
        exports: 32,
        true_positives: 12,
        false_negatives: 3,
        false_positives: 0,
        code_kb: 33,
    },
    Table2Entry {
        name: "libhesiod",
        platform: Platform::LinuxX86,
        exports: 22,
        true_positives: 10,
        false_negatives: 0,
        false_positives: 0,
        code_kb: 26,
    },
    Table2Entry {
        name: "libnetfilter_q",
        platform: Platform::LinuxX86,
        exports: 42,
        true_positives: 24,
        false_negatives: 2,
        false_positives: 0,
        code_kb: 30,
    },
    Table2Entry {
        name: "libcdt",
        platform: Platform::LinuxX86,
        exports: 29,
        true_positives: 15,
        false_negatives: 0,
        false_positives: 0,
        code_kb: 25,
    },
    Table2Entry {
        name: "libdaemon",
        platform: Platform::LinuxX86,
        exports: 38,
        true_positives: 30,
        false_negatives: 3,
        false_positives: 0,
        code_kb: 29,
    },
    Table2Entry {
        name: "libdns_sd",
        platform: Platform::LinuxX86,
        exports: 64,
        true_positives: 50,
        false_negatives: 4,
        false_positives: 2,
        code_kb: 71,
    },
    Table2Entry {
        name: "libgimpthumb",
        platform: Platform::LinuxX86,
        exports: 45,
        true_positives: 31,
        false_negatives: 3,
        false_positives: 3,
        code_kb: 38,
    },
    Table2Entry {
        name: "libvorbisfile",
        platform: Platform::LinuxX86,
        exports: 35,
        true_positives: 133,
        false_negatives: 4,
        false_positives: 39,
        code_kb: 49,
    },
];

/// The libdmx entry (the smallest library in §6.2's profiling-time range).
pub fn libdmx_entry() -> Table2Entry {
    *TABLE2.iter().find(|e| e.name == "libdmx").expect("libdmx is in Table 2")
}

/// The Linux libxml2 entry (the largest library in §6.2's profiling-time
/// range).
pub fn libxml2_linux_entry() -> Table2Entry {
    *TABLE2
        .iter()
        .find(|e| e.name == "libxml2" && e.platform == Platform::LinuxX86)
        .expect("libxml2/Linux is in Table 2")
}

/// Builds one Table 2 library together with its documentation model.
pub fn build_table2_library(entry: &Table2Entry, seed: u64) -> CorpusLibrary {
    build_blueprint(
        &format!("{}.so", entry.name),
        entry.platform,
        entry.exports,
        entry.true_positives,
        entry.false_negatives,
        entry.false_positives,
        entry.code_kb,
        seed,
    )
}

/// Builds every Table 2 library (same order as [`TABLE2`]).
pub fn build_table2_corpus(seed: u64) -> Vec<(Table2Entry, CorpusLibrary)> {
    TABLE2
        .iter()
        .enumerate()
        .map(|(index, entry)| (*entry, build_table2_library(entry, seed.wrapping_add(index as u64))))
        .collect()
}

/// Builds the libpcre-like library of §6.3: 20 exported functions whose
/// execution ground truth yields 52 true positives, 10 false negatives and 0
/// false positives (84% accuracy) when the profiler is scored against manual
/// inspection.
pub fn build_libpcre(seed: u64) -> CorpusLibrary {
    build_blueprint("libpcre.so", Platform::LinuxX86, 20, 52, 10, 0, 64, seed)
}

/// Builds the Linux libxml2 *with* the `htmlParseDocument` documentation
/// mismatch: the function is documented to return only 0 or -1 but can also
/// return 1 in some failure cases (§3.1).
pub fn build_libxml2_with_doc_mismatch(seed: u64) -> CorpusLibrary {
    let entry = libxml2_linux_entry();
    let mut library = build_table2_library(&entry, seed);
    // Replace the documentation entry for one export with the incomplete
    // "0 or -1" claim while the binary can actually also return 1.
    let spec = FunctionSpec::scalar("htmlParseDocument", 1)
        .success(0)
        .fault(FaultSpec::returning(-1))
        .fault(FaultSpec::returning(1));
    let mut lib_spec = LibrarySpec::new("libxml2.so", entry.platform);
    lib_spec = lib_spec.function(spec);
    // Rebuild a tiny side library holding just this function and splice its
    // truth into the main maps; the main binary already has enough functions
    // for the accuracy statistics.
    let extra = LibraryCompiler::new().compile(&lib_spec);
    let _ = extra;
    library.documentation.insert("htmlParseDocument".to_owned(), BTreeSet::from([-1]));
    library.execution_truth.insert("htmlParseDocument".to_owned(), BTreeSet::from([-1, 1]));
    library
}

/// Core blueprint generator shared by the named libraries.
#[allow(clippy::too_many_arguments)]
fn build_blueprint(
    library_name: &str,
    platform: Platform,
    exports: usize,
    true_positives: usize,
    false_negatives: usize,
    false_positives: usize,
    code_kb: usize,
    seed: u64,
) -> CorpusLibrary {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut spec = LibrarySpec::new(library_name, platform);
    let mut documentation = ErrorCodeMap::new();
    let mut execution_truth = ErrorCodeMap::new();

    let exports = exports.max(1);
    // Spread the documented error codes (TPs) over the exported functions.
    let mut tp_per_function = vec![0usize; exports];
    for i in 0..true_positives {
        tp_per_function[i % exports] += 1;
    }
    // False negatives and false positives are attached to functions that
    // already have at least one documented error, so the documentation model
    // mentions them.
    let faulty_functions: Vec<usize> = (0..exports).filter(|i| tp_per_function[*i] > 0).collect();
    let carrier = |i: usize| -> usize {
        if faulty_functions.is_empty() {
            i % exports
        } else {
            faulty_functions[i % faulty_functions.len()]
        }
    };
    let mut fn_per_function = vec![0usize; exports];
    for i in 0..false_negatives {
        fn_per_function[carrier(i)] += 1;
    }
    let mut fp_per_function = vec![0usize; exports];
    for i in 0..false_positives {
        fp_per_function[carrier(i.wrapping_mul(7))] += 1;
    }

    // Approximate padding needed to reach the requested code size.
    let bytes_per_padding_inst = 14usize;
    let base_bytes_per_function = 160usize;
    let target_bytes = code_kb * 1024;
    let padding_per_function = target_bytes
        .saturating_sub(exports * base_bytes_per_function)
        .checked_div(exports * bytes_per_padding_inst)
        .unwrap_or(0);

    let stem = library_name.trim_end_matches(".so").trim_start_matches("lib").to_owned();
    for index in 0..exports {
        let name = format!("{stem}_fn_{index:04}");
        let return_type = if rng.gen_bool(0.15) { ReturnType::Pointer } else { ReturnType::Scalar };
        let mut function = FunctionSpec::scalar(&name, 1 + (index % 4) as u8).success(0);
        function.return_type = return_type;
        let mut next_code = -1i64;
        let mut documented = BTreeSet::new();
        let mut actual = BTreeSet::new();

        for _ in 0..tp_per_function[index] {
            function = function.fault(FaultSpec::returning(next_code));
            documented.insert(next_code);
            actual.insert(next_code);
            next_code -= 1;
        }
        for _ in 0..fn_per_function[index] {
            function = function.fault(FaultSpec::returning(next_code).hidden_behind_indirect_call());
            documented.insert(next_code);
            actual.insert(next_code);
            next_code -= 1;
        }
        for _ in 0..fp_per_function[index] {
            function = function.fault(FaultSpec::returning(next_code).phantom());
            // Neither documented nor actually returnable.
            next_code -= 1;
        }
        function = function.padded(padding_per_function);
        if index % 16 == 15 {
            function = function.with_indirect_branches(1);
        }
        spec = spec.function(function);
        if !documented.is_empty() {
            documentation.insert(name.clone(), documented);
        }
        if !actual.is_empty() {
            execution_truth.insert(name, actual);
        }
    }

    let compiled = LibraryCompiler::new().compile(&spec);
    CorpusLibrary { compiled, documentation, execution_truth }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_profiler::{score_profile, Profiler, ProfilerOptions};

    fn profile(library: &CorpusLibrary) -> lfi_profile::FaultProfile {
        let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
        profiler.add_library(library.compiled.object.clone());
        profiler.profile_library(library.name()).unwrap().profile
    }

    #[test]
    fn table2_constants_match_the_paper_counts() {
        assert_eq!(TABLE2.len(), 18);
        let libdmx = libdmx_entry();
        assert_eq!((libdmx.true_positives, libdmx.false_negatives, libdmx.false_positives), (26, 8, 0));
        assert_eq!(libdmx.exports, 18);
        assert_eq!(libdmx.code_kb, 8);
        let libxml2 = libxml2_linux_entry();
        assert_eq!(libxml2.exports, 1612);
        assert_eq!(libxml2.code_kb, 897);
        // Accuracy recomputed from the counts matches the printed percentage
        // within a point.
        assert!((libxml2.expected_accuracy() * 100.0 - 80.0).abs() < 1.0);
    }

    #[test]
    fn blueprint_reproduces_the_requested_counts_for_a_small_library() {
        let entry = libdmx_entry();
        let library = build_table2_library(&entry, 42);
        assert_eq!(library.export_count(), entry.exports);
        let report = score_profile(&profile(&library), &library.documentation);
        assert_eq!(report.true_positives, entry.true_positives);
        assert_eq!(report.false_negatives, entry.false_negatives);
        assert_eq!(report.false_positives, entry.false_positives);
        assert_eq!(report.accuracy_percent(), 76);
    }

    #[test]
    fn perfect_library_scores_100() {
        let entry = *TABLE2.iter().find(|e| e.name == "libgtkspell").unwrap();
        let library = build_table2_library(&entry, 1);
        let report = score_profile(&profile(&library), &library.documentation);
        assert_eq!(report.accuracy_percent(), 100);
        assert_eq!(report.false_negatives, 0);
        assert_eq!(report.false_positives, 0);
    }

    #[test]
    fn libpcre_scores_84_percent_against_execution_truth() {
        let library = build_libpcre(7);
        assert_eq!(library.export_count(), 20);
        let report = score_profile(&profile(&library), &library.execution_truth);
        assert_eq!(report.true_positives, 52);
        assert_eq!(report.false_negatives, 10);
        assert_eq!(report.false_positives, 0);
        assert_eq!(report.accuracy_percent(), 84);
    }

    #[test]
    fn code_size_tracks_the_requested_kb() {
        let libdmx = build_table2_library(&libdmx_entry(), 3);
        let size = libdmx.compiled.object.code_size();
        let target = libdmx_entry().code_kb * 1024;
        assert!(size > target / 2 && size < target * 2, "size {size} vs target {target}");
    }

    #[test]
    fn doc_mismatch_library_reports_the_htmlparsedocument_discrepancy() {
        let library = build_libxml2_with_doc_mismatch(5);
        let undocumented = library.undocumented_behaviour();
        assert_eq!(undocumented.get("htmlParseDocument").unwrap(), &BTreeSet::from([1]));
    }
}
