//! # lfi-corpus — the synthetic library corpus for the LFI reproduction
//!
//! The paper's evaluation runs over real binaries: GNU libc, libxml2,
//! libpcre, the Apache Portable Runtime, a Linux kernel image, and the
//! sweep over more than 20,000 functions from Ubuntu development packages.
//! Those binaries are not available here, so this crate *generates* a corpus
//! with the same shape (see DESIGN.md §2 for the substitution argument):
//!
//! * [`kernel`] — the kernel image whose `sys_<n>` handlers produce the
//!   negative errno constants libc propagates (§3.1);
//! * [`libc`] — a 1535-export libc with real POSIX entry points, the APR
//!   libraries of §6.4, and the documentation models containing the paper's
//!   deliberate man-page omissions (`close`/EIO, `modify_ldt`/ENOMEM);
//! * [`named`] — the 18 libraries of Table 2 plus libpcre, generated so the
//!   profiler's TP/FN/FP counts land where the paper reports them, and the
//!   `htmlParseDocument` doc mismatch;
//! * [`survey`] — the >20,000-function corpus behind Table 1;
//! * [`truth`] — documentation and execution ground-truth bookkeeping.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernel;
pub mod libc;
pub mod named;
pub mod survey;
pub mod truth;

pub use kernel::{build_kernel, syscall_by_name, syscall_by_num, SyscallSpec, SYSCALL_TABLE};
pub use libc::{build_apr, build_aprutil, build_libc, build_libc_scaled, libc_errno_documentation, libc_errno_truth};
pub use named::{build_libpcre, build_table2_corpus, build_table2_library, Table2Entry, TABLE2};
pub use survey::{survey_corpus, survey_profiles, DetailChannel, SurveyConfig, Table1Cell, TABLE1_EXPECTED};
pub use truth::{error_map, CorpusLibrary, ErrorCodeMap};
