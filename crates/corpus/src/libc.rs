//! The corpus's GNU-libc-like library (plus the Apache Portable Runtime
//! libraries used by the §6.4 overhead experiment) and their documentation
//! models, including the deliberate man-page omissions the paper calls out.

use std::collections::BTreeSet;

use lfi_asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
use lfi_isa::Platform;

use crate::kernel::{syscall_by_name, SYSCALL_TABLE};
use crate::truth::{error_map, CorpusLibrary, ErrorCodeMap};

/// Number of exported functions in the corpus libc, matching the figure the
/// paper quotes for GNU libc in §6.4.
pub const LIBC_EXPORTS: usize = 1535;

/// Number of exported functions in the corpus libapr + libaprutil ("a little
/// over 1,000 functions" in §6.4).
pub const APR_EXPORTS: usize = 640;
/// See [`APR_EXPORTS`].
pub const APRUTIL_EXPORTS: usize = 410;

/// Builds the corpus libc at full scale (1535 exports).
pub fn build_libc(platform: Platform) -> CorpusLibrary {
    build_libc_scaled(platform, LIBC_EXPORTS)
}

/// Builds a smaller libc with the same named functions but fewer synthetic
/// filler exports — used by tests that do not need the full 1535 functions.
pub fn build_libc_scaled(platform: Platform, exports: usize) -> CorpusLibrary {
    let mut spec = LibrarySpec::new("libc.so.6", platform).dependency("kernel.img");
    let mut documentation = ErrorCodeMap::new();
    let mut execution_truth = ErrorCodeMap::new();

    // Thin wrappers over every system call: `read`, `write`, `close`, …
    // Each returns -1 and lets the kernel-provided errno flow through the
    // §3.2 negate-and-store idiom.
    for syscall in SYSCALL_TABLE {
        spec = spec.function(
            FunctionSpec::scalar(syscall.name, 3)
                .success(0)
                .fault(FaultSpec::via_syscall(syscall.num)),
        );
        documentation.insert(syscall.name.to_owned(), BTreeSet::from([-1]));
        execution_truth.insert(syscall.name.to_owned(), BTreeSet::from([-1]));
    }

    // Variants that the ready-made scenarios reference.
    for (name, base) in [
        ("open64", "open"),
        ("readdir", "getdents"),
        ("readdir64", "getdents"),
        ("pread", "read"),
        ("pwrite", "write"),
        ("sendto", "send"),
        ("recvfrom", "recv"),
        ("getaddrinfo", "connect"),
    ] {
        let syscall = syscall_by_name(base).expect("base syscall exists");
        spec = spec.function(FunctionSpec::scalar(name, 4).success(0).fault(FaultSpec::via_syscall(syscall.num)));
        documentation.insert(name.to_owned(), BTreeSet::from([-1]));
        execution_truth.insert(name.to_owned(), BTreeSet::from([-1]));
    }

    // Memory allocators: pointer-returning, fail with a null pointer and
    // ENOMEM.
    for name in ["malloc", "calloc", "realloc", "posix_memalign"] {
        spec = spec.function(
            FunctionSpec::pointer(name, 2)
                .success(0x10000)
                .fault(FaultSpec::returning(0).with_errno(12)),
        );
        documentation.insert(name.to_owned(), BTreeSet::from([0]));
        execution_truth.insert(name.to_owned(), BTreeSet::from([0]));
    }

    // A handful of infallible helpers (no error returns at all).
    spec = spec
        .function(FunctionSpec::scalar("getpid", 0).success(1234))
        .function(FunctionSpec::void("free", 1))
        .function(FunctionSpec::scalar("strlen", 1).success(0))
        .function(FunctionSpec::scalar("isatty", 1).boolean_predicate());

    // Synthetic filler exports to reach the requested export count, each with
    // a small direct error set, padded so the library's code segment is large
    // (profiling time in §6.2 scales with code size).
    let named_so_far = spec.function_count();
    for index in 0..exports.saturating_sub(named_so_far) {
        let name = format!("libc_internal_{index:04}");
        let code = -((index % 37) as i64 + 1);
        spec = spec.function(FunctionSpec::scalar(&name, 2).success(0).fault(FaultSpec::returning(code)).padded(24));
        documentation.insert(name.clone(), BTreeSet::from([code]));
        execution_truth.insert(name, BTreeSet::from([code]));
    }

    let compiled = LibraryCompiler::new().compile(&spec);
    CorpusLibrary { compiled, documentation, execution_truth }
}

/// The errno values the (BSD-flavoured) documentation lists for a few libc
/// functions — deliberately missing values the binary can actually produce,
/// reproducing the §3.1/§3.3 anecdotes:
///
/// * `close` is documented to set only EBADF and EINTR, but the Linux kernel
///   can also produce EIO;
/// * `modify_ldt` is documented with EFAULT, EINVAL and ENOSYS, but ENOMEM is
///   also possible.
pub fn libc_errno_documentation() -> ErrorCodeMap {
    error_map(&[
        ("close", &[9, 4]),
        ("modify_ldt", &[14, 22, 38]),
        ("read", &[9, 4, 5, 11, 14, 22]),
        ("write", &[9, 4, 5, 11, 14, 22, 28, 32]),
    ])
}

/// The errno values each libc wrapper can actually set, derived from the
/// kernel's syscall table.
pub fn libc_errno_truth() -> ErrorCodeMap {
    let mut map = ErrorCodeMap::new();
    for syscall in SYSCALL_TABLE {
        map.insert(syscall.name.to_owned(), syscall.errors.iter().copied().collect());
    }
    map
}

/// Builds the corpus libapr (Apache Portable Runtime) at the given scale.
pub fn build_apr_scaled(platform: Platform, exports: usize) -> CorpusLibrary {
    build_prefixed_library("libapr-1.so.0", "apr", platform, exports)
}

/// Builds the corpus libaprutil at the given scale.
pub fn build_aprutil_scaled(platform: Platform, exports: usize) -> CorpusLibrary {
    build_prefixed_library("libaprutil-1.so.0", "apu", platform, exports)
}

/// Builds the full-scale libapr.
pub fn build_apr(platform: Platform) -> CorpusLibrary {
    build_apr_scaled(platform, APR_EXPORTS)
}

/// Builds the full-scale libaprutil.
pub fn build_aprutil(platform: Platform) -> CorpusLibrary {
    build_aprutil_scaled(platform, APRUTIL_EXPORTS)
}

fn build_prefixed_library(library: &str, prefix: &str, platform: Platform, exports: usize) -> CorpusLibrary {
    let mut spec = LibrarySpec::new(library, platform).dependency("libc.so.6");
    let mut documentation = ErrorCodeMap::new();
    let mut execution_truth = ErrorCodeMap::new();

    // A few well-known APR entry points the Apache workload calls by name.
    for name in [
        format!("{prefix}_file_read"),
        format!("{prefix}_file_write"),
        format!("{prefix}_socket_recv"),
        format!("{prefix}_socket_send"),
        format!("{prefix}_palloc"),
        format!("{prefix}_pool_create"),
    ] {
        spec = spec.function(FunctionSpec::scalar(&name, 3).success(0).fault(FaultSpec::returning(-1).with_errno(5)));
        documentation.insert(name.clone(), BTreeSet::from([-1]));
        execution_truth.insert(name, BTreeSet::from([-1]));
    }

    let named = spec.function_count();
    for index in 0..exports.saturating_sub(named) {
        let name = format!("{prefix}_fn_{index:04}");
        let code = -((index % 23) as i64 + 1);
        spec = spec.function(FunctionSpec::scalar(&name, 2).success(0).fault(FaultSpec::returning(code)).padded(12));
        documentation.insert(name.clone(), BTreeSet::from([code]));
        execution_truth.insert(name, BTreeSet::from([code]));
    }

    let compiled = LibraryCompiler::new().compile(&spec);
    CorpusLibrary { compiled, documentation, execution_truth }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::build_kernel;
    use lfi_profile::SideEffectKind;
    use lfi_profiler::{Profiler, ProfilerOptions};

    #[test]
    fn scaled_libc_has_the_requested_export_count() {
        let libc = build_libc_scaled(Platform::LinuxX86, 120);
        assert_eq!(libc.export_count(), 120);
        assert!(libc.compiled.object.symbol_by_name("read").is_some());
        assert!(libc.compiled.object.symbol_by_name("malloc").is_some());
        assert!(libc.compiled.object.validate().is_ok());
    }

    #[test]
    fn full_scale_constants_match_the_paper() {
        assert_eq!(LIBC_EXPORTS, 1535);
        const { assert!(APR_EXPORTS + APRUTIL_EXPORTS > 1000) };
    }

    #[test]
    fn profiling_libc_reproduces_the_close_eio_doc_mismatch() {
        let libc = build_libc_scaled(Platform::LinuxX86, 80);
        let mut profiler = Profiler::with_options(ProfilerOptions::with_heuristics());
        profiler.add_library(libc.compiled.object.clone());
        profiler.set_kernel(build_kernel(Platform::LinuxX86));
        let report = profiler.profile_library("libc.so.6").unwrap();

        let close = report.profile.function("close").unwrap();
        let errno_found: BTreeSet<i64> = close
            .error_returns
            .iter()
            .flat_map(|r| r.side_effects.iter())
            .filter(|s| s.kind == SideEffectKind::Tls)
            .map(|s| s.value)
            .collect();
        let documented = libc_errno_documentation().remove("close").unwrap();
        // The profiler finds EIO (5) even though the documentation omits it.
        assert!(errno_found.contains(&5));
        assert!(!documented.contains(&5));
        let undocumented: BTreeSet<i64> = errno_found.difference(&documented).copied().collect();
        assert_eq!(undocumented, BTreeSet::from([5]));
    }

    #[test]
    fn errno_truth_covers_every_syscall_wrapper() {
        let truth = libc_errno_truth();
        assert!(truth.get("close").unwrap().contains(&5));
        assert!(truth.get("modify_ldt").unwrap().contains(&12));
        assert_eq!(truth.len(), SYSCALL_TABLE.len());
    }

    #[test]
    fn apr_libraries_scale_and_carry_named_entry_points() {
        let apr = build_apr_scaled(Platform::LinuxX86, 60);
        let aprutil = build_aprutil_scaled(Platform::LinuxX86, 40);
        assert_eq!(apr.export_count(), 60);
        assert_eq!(aprutil.export_count(), 40);
        assert!(apr.compiled.object.symbol_by_name("apr_file_read").is_some());
        assert!(aprutil.compiled.object.symbol_by_name("apu_palloc").is_some());
    }

    #[test]
    fn malloc_documents_the_null_pointer_failure() {
        let libc = build_libc_scaled(Platform::LinuxX86, 80);
        assert!(libc.documentation.get("malloc").unwrap().contains(&0));
        assert!(libc.execution_truth.get("malloc").unwrap().contains(&0));
    }
}
