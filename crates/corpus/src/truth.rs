//! Ground-truth bookkeeping for corpus libraries.
//!
//! Every corpus library is generated together with two per-function error
//! maps: what its *documentation* claims (the man-page model the paper
//! compares against in Table 2) and what the code can *actually* return
//! (execution truth, used for the libpcre-style manual-inspection
//! experiment).  Because the corpus generates both from the same blueprint,
//! doc omissions and phantom paths are placed deliberately rather than
//! discovered by accident.

use std::collections::{BTreeMap, BTreeSet};

use lfi_asm::CompiledLibrary;

/// Per-function error-code map, structurally identical to
/// `lfi_profiler::GroundTruth`.
pub type ErrorCodeMap = BTreeMap<String, BTreeSet<i64>>;

/// A corpus library: the compiled binary plus its documentation and execution
/// ground truth.
#[derive(Debug, Clone)]
pub struct CorpusLibrary {
    /// The compiled library (object + per-path metadata).
    pub compiled: CompiledLibrary,
    /// The error codes the (imperfect) documentation lists per function.
    pub documentation: ErrorCodeMap,
    /// The error codes each function can actually return at run time.
    pub execution_truth: ErrorCodeMap,
}

impl CorpusLibrary {
    /// The library's file name.
    pub fn name(&self) -> &str {
        self.compiled.object.name()
    }

    /// Number of exported functions.
    pub fn export_count(&self) -> usize {
        self.compiled.object.export_count()
    }

    /// Error codes documented but not actually returnable (doc errors), per
    /// function.
    pub fn documented_but_impossible(&self) -> ErrorCodeMap {
        difference(&self.documentation, &self.execution_truth)
    }

    /// Error codes actually returnable but missing from the documentation —
    /// the `close()`-EIO / `modify_ldt`-ENOMEM class of omissions (§3.1,
    /// §3.3).
    pub fn undocumented_behaviour(&self) -> ErrorCodeMap {
        difference(&self.execution_truth, &self.documentation)
    }
}

fn difference(a: &ErrorCodeMap, b: &ErrorCodeMap) -> ErrorCodeMap {
    let mut out = ErrorCodeMap::new();
    for (function, values) in a {
        let empty = BTreeSet::new();
        let other = b.get(function).unwrap_or(&empty);
        let diff: BTreeSet<i64> = values.difference(other).copied().collect();
        if !diff.is_empty() {
            out.insert(function.clone(), diff);
        }
    }
    out
}

/// Convenience builder for error-code maps.
pub fn error_map(entries: &[(&str, &[i64])]) -> ErrorCodeMap {
    entries
        .iter()
        .map(|(name, values)| ((*name).to_owned(), values.iter().copied().collect()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
    use lfi_isa::Platform;

    #[test]
    fn difference_maps_capture_doc_gaps() {
        let compiled = LibraryCompiler::new().compile(
            &LibrarySpec::new("libdoc.so", Platform::LinuxX86)
                .function(FunctionSpec::scalar("close", 1).success(0).fault(FaultSpec::returning(-1))),
        );
        let library = CorpusLibrary {
            compiled,
            documentation: error_map(&[("close", &[-1]), ("close_range", &[-1])]),
            execution_truth: error_map(&[("close", &[-1, -2])]),
        };
        assert_eq!(library.name(), "libdoc.so");
        assert_eq!(library.export_count(), 1);
        let undocumented = library.undocumented_behaviour();
        assert_eq!(undocumented.get("close").unwrap(), &BTreeSet::from([-2]));
        let impossible = library.documented_but_impossible();
        assert!(impossible.contains_key("close_range"));
        assert!(!impossible.contains_key("close"));
    }
}
