//! The synthetic kernel image.
//!
//! libc and libstdc++ "wrap kernel system calls, so many dependent functions
//! reside in the kernel.  LFI therefore performs static analysis on the
//! kernel image as well" (§3.1).  This module builds that kernel image: one
//! `sys_<number>` entry point per system call, each returning 0 on success or
//! one of a set of negative errno constants on failure, following the Linux
//! convention the paper's §3.2 listing relies on.

use lfi_asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
use lfi_isa::Platform;
use lfi_objfile::SharedObject;

/// One system call: its number, name and the errno values its handler can
/// produce (positive errno values; the handler returns their negation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallSpec {
    /// System call number.
    pub num: u32,
    /// Conventional name (e.g. `read`).
    pub name: &'static str,
    /// Positive errno values the call can fail with.
    pub errors: &'static [i64],
}

/// The system call table shared by the corpus's libc wrappers.
///
/// Error sets follow the Linux man pages closely enough for the doc-mismatch
/// experiments: `close` (syscall 3) can fail with EBADF, EINTR *and* EIO even
/// though BSD documentation only lists the first two (§3.3).
pub const SYSCALL_TABLE: &[SyscallSpec] = &[
    SyscallSpec { num: 0, name: "read", errors: &[9, 4, 5, 11, 14, 22] },
    SyscallSpec { num: 1, name: "write", errors: &[9, 4, 5, 11, 14, 22, 28, 32] },
    SyscallSpec { num: 2, name: "open", errors: &[13, 17, 2, 24, 23, 12, 20, 28] },
    SyscallSpec { num: 3, name: "close", errors: &[9, 4, 5] },
    SyscallSpec { num: 4, name: "stat", errors: &[13, 9, 14, 2, 12, 20] },
    SyscallSpec { num: 5, name: "fstat", errors: &[9, 14, 12] },
    SyscallSpec { num: 6, name: "lseek", errors: &[9, 22, 29] },
    SyscallSpec { num: 7, name: "mmap", errors: &[13, 9, 22, 12, 19] },
    SyscallSpec { num: 8, name: "brk", errors: &[12] },
    SyscallSpec { num: 9, name: "socket", errors: &[13, 24, 23, 105, 12, 22] },
    SyscallSpec { num: 10, name: "connect", errors: &[13, 11, 9, 111, 4, 115, 110] },
    SyscallSpec { num: 11, name: "accept", errors: &[11, 9, 104, 24, 23, 12] },
    SyscallSpec { num: 12, name: "send", errors: &[11, 9, 104, 4, 12, 32, 107] },
    SyscallSpec { num: 13, name: "recv", errors: &[11, 9, 104, 4, 12, 107] },
    SyscallSpec { num: 14, name: "unlink", errors: &[13, 16, 5, 2, 30] },
    SyscallSpec { num: 15, name: "rename", errors: &[13, 16, 22, 2, 28, 30] },
    SyscallSpec { num: 16, name: "fsync", errors: &[9, 5, 22, 28] },
    SyscallSpec { num: 17, name: "ftruncate", errors: &[9, 4, 5, 22, 27] },
    SyscallSpec { num: 18, name: "pipe", errors: &[24, 23, 14] },
    SyscallSpec { num: 19, name: "select", errors: &[9, 4, 22, 12] },
    SyscallSpec { num: 20, name: "poll", errors: &[14, 4, 22, 12] },
    SyscallSpec { num: 21, name: "getdents", errors: &[9, 14, 22, 20] },
    SyscallSpec { num: 22, name: "modify_ldt", errors: &[14, 22, 38, 12] },
    SyscallSpec { num: 23, name: "bind", errors: &[13, 22, 98, 9] },
    SyscallSpec { num: 24, name: "listen", errors: &[9, 95, 98] },
];

/// Looks up a system call by conventional name.
pub fn syscall_by_name(name: &str) -> Option<&'static SyscallSpec> {
    SYSCALL_TABLE.iter().find(|s| s.name == name)
}

/// Looks up a system call by number.
pub fn syscall_by_num(num: u32) -> Option<&'static SyscallSpec> {
    SYSCALL_TABLE.iter().find(|s| s.num == num)
}

/// Builds the kernel image for a platform: one exported `sys_<num>` function
/// per table entry, returning 0 on success and `-errno` on each failure path.
pub fn build_kernel(platform: Platform) -> SharedObject {
    let mut spec = LibrarySpec::new("kernel.img", platform);
    for syscall in SYSCALL_TABLE {
        let mut function = FunctionSpec::scalar(format!("sys_{}", syscall.num), 6).success(0);
        for error in syscall.errors {
            function = function.fault(FaultSpec::returning(-error));
        }
        spec = spec.function(function);
    }
    LibraryCompiler::new().compile(&spec).object
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_profiler::Profiler;

    #[test]
    fn table_lookups() {
        assert_eq!(syscall_by_name("close").unwrap().num, 3);
        assert_eq!(syscall_by_num(3).unwrap().name, "close");
        assert!(syscall_by_name("frobnicate").is_none());
        assert!(syscall_by_num(9999).is_none());
        // Numbers are unique.
        let mut nums: Vec<u32> = SYSCALL_TABLE.iter().map(|s| s.num).collect();
        nums.sort_unstable();
        nums.dedup();
        assert_eq!(nums.len(), SYSCALL_TABLE.len());
    }

    #[test]
    fn kernel_exports_one_entry_point_per_syscall() {
        let kernel = build_kernel(Platform::LinuxX86);
        assert_eq!(kernel.export_count(), SYSCALL_TABLE.len());
        assert!(kernel.symbol_by_name("sys_3").is_some());
        assert!(kernel.validate().is_ok());
    }

    #[test]
    fn profiling_the_kernel_finds_the_negative_error_constants() {
        let kernel = build_kernel(Platform::LinuxX86);
        let mut profiler = Profiler::new();
        profiler.add_library(kernel);
        let report = profiler.profile_library("kernel.img").unwrap();
        let close_handler = report.profile.function("sys_3").unwrap();
        let values = close_handler.error_values();
        for errno in syscall_by_name("close").unwrap().errors {
            assert!(values.contains(&-errno), "missing -{errno}");
        }
    }

    #[test]
    fn close_error_set_includes_the_undocumented_eio() {
        // EIO (5) is the value BSD man pages omit; the kernel must produce it
        // so the doc-mismatch experiment has something to find.
        assert!(syscall_by_name("close").unwrap().errors.contains(&5));
    }
}
