//! The MySQL-like database server: a small storage engine with its own test
//! suite, basic-block coverage counters (§6.1) and the OLTP operations driven
//! by the SysBench-like workload (§6.4, Table 4).

use lfi_runtime::{Process, Signal};

use crate::coverage::CoverageMap;
use crate::native::service_work;

/// CPU work units burned per point select (B-tree descent, row copy).
const SELECT_WORK: u64 = 45_000;
/// CPU work units burned per update (index maintenance, undo logging).
const UPDATE_WORK: u64 = 70_000;
/// CPU work units burned per insert.
const INSERT_WORK: u64 = 55_000;
/// CPU work units burned per log flush.
const FLUSH_WORK: u64 = 90_000;

/// The server's modules and their (normal, error-handling) basic-block
/// counts.  The test suite exercises every normal block of every module
/// except `replication`; error-handling blocks only run when a library call
/// fails, which regular testing never provokes — that is the coverage gap LFI
/// closes.
pub const MODULES: &[(&str, usize, usize)] = &[
    ("parser", 40, 8),
    ("optimizer", 30, 6),
    ("executor", 48, 14),
    ("innodb", 56, 16),
    ("innodb_ibuf", 22, 3),
    ("net", 30, 10),
    ("replication", 14, 10),
];

/// Result of one SQL operation: `Ok(rows)` or a fatal signal.
pub type QueryResult = Result<i64, Signal>;

/// The report produced by a test-suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteReport {
    /// Number of test cases executed.
    pub cases: usize,
    /// Number of cases that died with SIGSEGV.
    pub crashes: usize,
    /// Coverage accumulated over the run.
    pub coverage: CoverageMap,
}

impl SuiteReport {
    /// Overall basic-block coverage, in [0, 1].
    pub fn overall_coverage(&self) -> f64 {
        self.coverage.overall()
    }
}

/// The simulated MySQL server.
#[derive(Debug)]
pub struct MysqlServer {
    coverage: CoverageMap,
    table: Vec<i64>,
    data_fd: i64,
    log_fd: i64,
    client_fd: i64,
}

impl MysqlServer {
    /// Starts the server: opens the data file, redo log and a client socket,
    /// and registers every basic block with the coverage map.  The streams
    /// live in the [`SimWorld`](crate::SimWorld) the process's native libc
    /// was built over.
    pub fn start(process: &mut Process) -> MysqlServer {
        let mut coverage = CoverageMap::new();
        for (module, ok, err) in MODULES {
            for i in 0..*ok {
                coverage.register(module, &format!("ok_{i}"));
            }
            for i in 0..*err {
                coverage.register(module, &format!("err_{i}"));
            }
        }
        let data_fd = process.call("open", &[]).unwrap_or(-1);
        let log_fd = process.call("open", &[]).unwrap_or(-1);
        let client_fd = process.call("socket", &[]).unwrap_or(-1);
        MysqlServer { coverage, table: Vec::new(), data_fd, log_fd, client_fd }
    }

    /// The coverage accumulated so far.
    pub fn coverage(&self) -> &CoverageMap {
        &self.coverage
    }

    fn hit_ok(&mut self, module: &str, start: usize, end: usize) {
        for i in start..end {
            self.coverage.hit(module, &format!("ok_{i}"));
        }
    }

    fn hit_error_block(&mut self, module: &str, errno: i64) {
        let err_count = MODULES.iter().find(|(m, _, _)| *m == module).map_or(1, |(_, _, e)| *e);
        let index = (errno.unsigned_abs() as usize) % err_count.max(1);
        self.coverage.hit(module, &format!("err_{index}"));
    }

    /// INSERT: allocate a row buffer, append the row, write it to the redo
    /// log.  `checked` decides whether the allocation result is validated
    /// (the ~12 unchecked call sites are what crashed with SIGSEGV in §6.1).
    pub fn insert(&mut self, process: &mut Process, value: i64, checked: bool) -> QueryResult {
        service_work(INSERT_WORK);
        self.hit_ok("parser", 0, 14);
        self.hit_ok("executor", 0, 16);
        let errno_before = process.state().errno();
        let buffer = process.call("malloc", &[64]).unwrap_or(0);
        if buffer == 0 {
            if !checked {
                // Unchecked allocation: the row pointer is dereferenced.
                return Err(Signal::Segv);
            }
            self.hit_error_block("executor", process.state().errno().max(1));
            return Ok(-1);
        }
        let _ = errno_before;
        self.table.push(value);
        let written = process.call("write", &[self.log_fd, value, 64]).unwrap_or(-1);
        let _ = process.call("free", &[buffer, 64]);
        self.hit_ok("innodb", 0, 18);
        if written < 0 {
            self.hit_error_block("innodb", process.state().errno().max(1));
            self.hit_error_block("innodb_ibuf", 0);
            return Ok(-1);
        }
        Ok(1)
    }

    /// SELECT: allocate a result buffer, look the row up, send it to the
    /// client.
    pub fn point_select(&mut self, process: &mut Process, key: i64) -> QueryResult {
        service_work(SELECT_WORK);
        self.hit_ok("parser", 14, 28);
        self.hit_ok("optimizer", 0, 18);
        self.hit_ok("executor", 16, 32);
        let buffer = process.call("malloc", &[128]).unwrap_or(0);
        if buffer == 0 {
            self.hit_error_block("executor", process.state().errno().max(1));
            return Ok(-1);
        }
        let row = self
            .table
            .get((key.unsigned_abs() as usize) % self.table.len().max(1))
            .copied()
            .unwrap_or(0);
        let sent = process.call("send", &[self.client_fd, row, 128]).unwrap_or(-1);
        let _ = process.call("free", &[buffer, 128]);
        self.hit_ok("net", 0, 15);
        if sent < 0 {
            self.hit_error_block("net", process.state().errno().max(1));
            return Ok(-1);
        }
        Ok(1)
    }

    /// UPDATE: read the page, rewrite it and append to the redo log.
    pub fn update(&mut self, process: &mut Process, key: i64, value: i64) -> QueryResult {
        service_work(UPDATE_WORK);
        self.hit_ok("parser", 28, 40);
        self.hit_ok("optimizer", 18, 30);
        self.hit_ok("executor", 32, 48);
        self.hit_ok("innodb", 18, 40);
        let read = process.call("read", &[self.data_fd]).unwrap_or(-1);
        if read < 0 && process.state().errno() != 11 {
            self.hit_error_block("innodb", process.state().errno().max(1));
            return Ok(-1);
        }
        let slot_index = (key.unsigned_abs() as usize) % self.table.len().max(1);
        if let Some(slot) = self.table.get_mut(slot_index) {
            *slot = value;
        }
        let written = process.call("write", &[self.log_fd, value, 64]).unwrap_or(-1);
        if written < 0 {
            self.hit_error_block("innodb", process.state().errno().max(1));
            self.hit_error_block("innodb_ibuf", 1);
            return Ok(-1);
        }
        Ok(1)
    }

    /// FLUSH: fsync the redo log through the insert-buffer merge path.
    pub fn flush(&mut self, process: &mut Process) -> QueryResult {
        service_work(FLUSH_WORK);
        self.hit_ok("innodb_ibuf", 0, 22);
        self.hit_ok("innodb", 40, 56);
        let synced = process.call("fsync", &[self.log_fd]).unwrap_or(-1);
        if synced < 0 {
            self.hit_error_block("innodb_ibuf", process.state().errno().max(1));
            self.hit_error_block("innodb_ibuf", 2);
            self.hit_error_block("innodb", process.state().errno().max(1) + 1);
            return Ok(-1);
        }
        Ok(0)
    }

    /// Serve one client round-trip (exercises the network module).
    pub fn serve_client(&mut self, process: &mut Process) -> QueryResult {
        self.hit_ok("net", 15, 30);
        let received = process.call("recv", &[self.client_fd]).unwrap_or(-1);
        if received < 0 && process.state().errno() != 11 {
            self.hit_error_block("net", process.state().errno().max(1));
            return Ok(-1);
        }
        Ok(0)
    }

    /// Runs the server's own regression test suite: `cases` test cases mixing
    /// inserts, selects, updates and periodic flushes.  Every 7th case
    /// contains one of the unchecked allocations (the call sites behind the
    /// SIGSEGV crashes of §6.1).
    pub fn run_test_suite(&mut self, process: &mut Process, cases: usize) -> SuiteReport {
        let mut crashes = 0;
        for case in 0..cases {
            let checked = case % 7 != 6;
            let mut crashed = false;
            for op in 0..6 {
                let result = match op {
                    0 | 1 => self.insert(process, (case * 10 + op) as i64, checked),
                    2 | 3 => self.point_select(process, case as i64),
                    4 => self.update(process, case as i64, op as i64),
                    _ => self.serve_client(process),
                };
                if result.is_err() {
                    crashed = true;
                    break;
                }
            }
            if case % 10 == 9 && !crashed {
                let _ = self.flush(process);
            }
            if crashed {
                crashes += 1;
            }
        }
        SuiteReport { cases, crashes, coverage: self.coverage.clone() }
    }
}

/// The SysBench-OLTP-like workload of Table 4.
pub mod sysbench {
    use std::time::Instant;

    use super::{MysqlServer, QueryResult};
    use lfi_runtime::Process;

    /// Workload flavour: read-only or read-write transactions.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum OltpMode {
        /// Point selects only.
        ReadOnly,
        /// Selects plus updates, inserts and a log flush.
        ReadWrite,
    }

    /// The result of an OLTP run.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct OltpReport {
        /// Transactions completed.
        pub transactions: u64,
        /// Wall-clock duration of the run, in seconds.
        pub elapsed_seconds: f64,
    }

    impl OltpReport {
        /// Transactions per second, the figure Table 4 reports.
        pub fn throughput(&self) -> f64 {
            if self.elapsed_seconds == 0.0 {
                0.0
            } else {
                self.transactions as f64 / self.elapsed_seconds
            }
        }
    }

    /// Executes one transaction.
    pub fn run_transaction(server: &mut MysqlServer, process: &mut Process, mode: OltpMode, txn: u64) -> QueryResult {
        match mode {
            OltpMode::ReadOnly => {
                for i in 0..10 {
                    server.point_select(process, (txn as i64) + i)?;
                }
            }
            OltpMode::ReadWrite => {
                for i in 0..10 {
                    server.point_select(process, (txn as i64) + i)?;
                }
                for i in 0..4 {
                    server.update(process, (txn as i64) + i, i)?;
                }
                server.insert(process, txn as i64, true)?;
                server.flush(process)?;
            }
        }
        Ok(1)
    }

    /// Runs `transactions` transactions and measures throughput.
    pub fn run_oltp(server: &mut MysqlServer, process: &mut Process, mode: OltpMode, transactions: u64) -> OltpReport {
        let start = Instant::now();
        let mut completed = 0;
        for txn in 0..transactions {
            if run_transaction(server, process, mode, txn).is_ok() {
                completed += 1;
            }
        }
        OltpReport { transactions: completed, elapsed_seconds: start.elapsed().as_secs_f64() }
    }
}

#[cfg(test)]
mod tests {
    use super::sysbench::{run_oltp, OltpMode};
    use super::*;
    use crate::native::{base_process, new_world};
    use lfi_runtime::NativeLibrary;

    fn server_and_process() -> (MysqlServer, lfi_runtime::Process, crate::native::World) {
        let world = new_world();
        let mut process = base_process(&world, false);
        let server = MysqlServer::start(&mut process);
        (server, process, world)
    }

    #[test]
    fn clean_test_suite_reaches_the_paper_baseline_coverage() {
        let (mut server, mut process, _world) = server_and_process();
        let report = server.run_test_suite(&mut process, 200);
        assert_eq!(report.crashes, 0);
        let coverage = report.overall_coverage();
        // The paper reports 73%; the simulated suite lands in the same band
        // because error-handling blocks are never reached without injection.
        assert!(coverage > 0.70 && coverage < 0.76, "coverage {coverage}");
        assert!((report.coverage.module("innodb_ibuf") - 0.88).abs() < 0.01);
        assert_eq!(report.coverage.module("replication"), 0.0);
    }

    #[test]
    fn injected_faults_raise_coverage_and_can_crash_unchecked_paths() {
        let (mut server, mut process, _world) = server_and_process();
        // Deterministic "injector": every 13th write and every 3rd fsync and
        // every 29th malloc fails.
        let interceptor = NativeLibrary::builder("inject.so")
            .function("write", {
                let count = std::sync::Arc::new(parking_lot::Mutex::new(0u64));
                move |ctx| {
                    let mut count = count.lock();
                    *count += 1;
                    if (*count).is_multiple_of(13) {
                        ctx.set_errno(5);
                        -1
                    } else {
                        ctx.call_next().unwrap_or(-1)
                    }
                }
            })
            .function("fsync", {
                let count = std::sync::Arc::new(parking_lot::Mutex::new(0u64));
                move |ctx| {
                    let mut count = count.lock();
                    *count += 1;
                    if (*count).is_multiple_of(3) {
                        ctx.set_errno(28);
                        -1
                    } else {
                        ctx.call_next().unwrap_or(-1)
                    }
                }
            })
            .function("malloc", {
                let count = std::sync::Arc::new(parking_lot::Mutex::new(0u64));
                move |ctx| {
                    let mut count = count.lock();
                    *count += 1;
                    if (*count).is_multiple_of(29) {
                        ctx.set_errno(12);
                        0
                    } else {
                        ctx.call_next().unwrap_or(0)
                    }
                }
            })
            .build();
        process.preload(interceptor);
        let report = server.run_test_suite(&mut process, 200);
        let coverage = report.overall_coverage();
        assert!(coverage >= 0.74, "coverage {coverage}");
        assert!(report.coverage.module("innodb_ibuf") > 0.95);
        assert!(report.crashes > 0);
    }

    #[test]
    fn read_write_transactions_do_more_library_work_than_read_only() {
        let (mut server, mut process, _world) = server_and_process();
        for i in 0..10 {
            server.insert(&mut process, i, true).unwrap();
        }
        process.state_mut().set_call_log_enabled(true);
        run_oltp(&mut server, &mut process, OltpMode::ReadOnly, 5);
        let read_only_calls = process.state().call_log().len();
        process.state_mut().clear_call_log();
        run_oltp(&mut server, &mut process, OltpMode::ReadWrite, 5);
        let read_write_calls = process.state().call_log().len();
        assert!(read_write_calls > read_only_calls);
    }

    #[test]
    fn oltp_reports_throughput() {
        let (mut server, mut process, _world) = server_and_process();
        for i in 0..10 {
            server.insert(&mut process, i, true).unwrap();
        }
        let report = run_oltp(&mut server, &mut process, OltpMode::ReadOnly, 50);
        assert_eq!(report.transactions, 50);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn module_table_is_consistent() {
        let total_err: usize = MODULES.iter().map(|(_, _, e)| e).sum();
        let total_ok: usize = MODULES.iter().map(|(_, o, _)| o).sum();
        assert!(total_ok + total_err > 300);
        // The ibuf module has the 88% → 100% headroom the paper reports.
        let (_, ok, err) = MODULES.iter().find(|(m, _, _)| *m == "innodb_ibuf").unwrap();
        assert!((*ok as f64 / (*ok + *err) as f64 - 0.88).abs() < 0.005);
    }
}
