//! The Apache-httpd-like server and the AB-like load generator used by the
//! §6.4 overhead experiment (Table 3).
//!
//! Requests come in two flavours matching the paper's two workloads: *static
//! HTML*, which touches the C library a handful of times per request, and
//! *PHP*, which "performs many more library calls than the former, which
//! implies that the triggers have to be evaluated considerably more times."

use std::time::Instant;

use lfi_runtime::Process;

use crate::native::service_work;

/// CPU work units burned per static-HTML request (kernel + socket work a real
/// server performs besides the library calls themselves).
const STATIC_REQUEST_WORK: u64 = 60_000;
/// CPU work units burned per PHP request (script interpretation dominates).
const PHP_REQUEST_WORK: u64 = 700_000;

/// The two workloads of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// A static HTML page: open, read, send, close.
    StaticHtml,
    /// A PHP page: pools, many buffered reads/writes, session allocation.
    Php,
}

/// The simulated Apache httpd server.
#[derive(Debug)]
pub struct ApacheServer {
    client_fd: i64,
    document_fd: i64,
}

impl ApacheServer {
    /// Starts the server: opens the listening socket and the document root
    /// (streams in the process's [`SimWorld`](crate::SimWorld)).
    pub fn start(process: &mut Process) -> ApacheServer {
        let client_fd = process.call("socket", &[]).unwrap_or(-1);
        let document_fd = process.call("open", &[]).unwrap_or(-1);
        ApacheServer { client_fd, document_fd }
    }

    /// Handles one request; returns the number of bytes "sent" (negative when
    /// the request failed but the server survived).
    pub fn handle_request(&mut self, process: &mut Process, kind: RequestKind) -> i64 {
        match kind {
            RequestKind::StaticHtml => self.handle_static(process),
            RequestKind::Php => self.handle_php(process),
        }
    }

    fn handle_static(&mut self, process: &mut Process) -> i64 {
        process.push_frame("ap_process_request");
        service_work(STATIC_REQUEST_WORK);
        let fd = process.call("open", &[]).unwrap_or(-1);
        if fd < 0 {
            process.pop_frame();
            return -1;
        }
        let _content = process.call("read", &[fd]).unwrap_or(-1);
        let sent = process.call("send", &[self.client_fd, 200, 4096]).unwrap_or(-1);
        let _ = process.call("close", &[fd]);
        process.pop_frame();
        sent
    }

    fn handle_php(&mut self, process: &mut Process) -> i64 {
        process.push_frame("ap_process_request");
        process.push_frame("php_execute_script");
        service_work(PHP_REQUEST_WORK);
        let pool = process.call("apr_palloc", &[8192]).unwrap_or(0);
        if pool == 0 {
            process.pop_frame();
            process.pop_frame();
            return -1;
        }
        let mut produced = 0i64;
        // The script performs many buffered reads and writes through APR and
        // allocates session state as it goes.
        for chunk in 0..12 {
            let _ = process.call("apr_file_read", &[self.document_fd]);
            let session = process.call("malloc", &[256]).unwrap_or(0);
            if session != 0 {
                let _ = process.call("free", &[session, 256]);
            }
            produced += process.call("apr_socket_send", &[self.client_fd, chunk, 512]).unwrap_or(0).max(0);
        }
        let _ = process.call("apu_brigade_write", &[self.client_fd, 1, 128]);
        let _ = process.call("free", &[pool, 8192]);
        process.pop_frame();
        process.pop_frame();
        produced
    }
}

/// The AB-like load generator.
pub mod ab {
    use super::{ApacheServer, RequestKind};
    use lfi_runtime::Process;
    use std::time::Duration;

    /// The result of one AB run, matching what Table 3 reports (completion
    /// time of 1,000 requests).
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct AbReport {
        /// Requests issued.
        pub requests: u64,
        /// Requests that completed with a positive byte count.
        pub completed: u64,
        /// Total wall-clock time.
        pub elapsed: Duration,
    }

    impl AbReport {
        /// Completion time in seconds.
        pub fn completion_seconds(&self) -> f64 {
            self.elapsed.as_secs_f64()
        }

        /// Requests per second.
        pub fn requests_per_second(&self) -> f64 {
            let secs = self.completion_seconds();
            if secs == 0.0 {
                0.0
            } else {
                self.requests as f64 / secs
            }
        }
    }

    /// Runs `requests` requests of the given kind against the server.
    pub fn run_ab(server: &mut ApacheServer, process: &mut Process, kind: RequestKind, requests: u64) -> AbReport {
        let start = super::Instant::now();
        let mut completed = 0;
        for _ in 0..requests {
            if server.handle_request(process, kind) >= 0 {
                completed += 1;
            }
        }
        AbReport { requests, completed, elapsed: start.elapsed() }
    }
}

/// The libc/APR functions Apache calls most, in descending call-frequency
/// order — the "top-10 / top-100 / top-300 most-called functions" the paper
/// attaches triggers to.  The list cycles for indices past its length.
pub fn most_called_functions(top: usize) -> Vec<&'static str> {
    const RANKED: &[&str] = &[
        "send",
        "read",
        "apr_socket_send",
        "apr_file_read",
        "malloc",
        "free",
        "open",
        "close",
        "apr_palloc",
        "recv",
        "write",
        "apu_brigade_write",
        "socket",
        "stat",
        "lseek",
        "select",
        "poll",
        "fsync",
        "getaddrinfo",
        "connect",
    ];
    (0..top).map(|i| RANKED[i % RANKED.len()]).collect()
}

#[cfg(test)]
mod tests {
    use super::ab::run_ab;
    use super::*;
    use crate::native::{base_process, new_world};

    fn server_and_process() -> (ApacheServer, Process) {
        let world = new_world();
        let mut process = base_process(&world, true);
        let server = ApacheServer::start(&mut process);
        (server, process)
    }

    #[test]
    fn both_workloads_complete_without_injection() {
        let (mut server, mut process) = server_and_process();
        assert!(server.handle_request(&mut process, RequestKind::StaticHtml) > 0);
        assert!(server.handle_request(&mut process, RequestKind::Php) > 0);
    }

    #[test]
    fn php_requests_make_many_more_library_calls_than_static_ones() {
        let (mut server, mut process) = server_and_process();
        process.state_mut().set_call_log_enabled(true);
        server.handle_request(&mut process, RequestKind::StaticHtml);
        let static_calls = process.state().call_log().len();
        process.state_mut().clear_call_log();
        server.handle_request(&mut process, RequestKind::Php);
        let php_calls = process.state().call_log().len();
        assert!(static_calls >= 4);
        assert!(php_calls > static_calls * 5, "php {php_calls} vs static {static_calls}");
    }

    #[test]
    fn ab_reports_completion_time_and_counts() {
        let (mut server, mut process) = server_and_process();
        let report = run_ab(&mut server, &mut process, RequestKind::StaticHtml, 200);
        assert_eq!(report.requests, 200);
        assert_eq!(report.completed, 200);
        assert!(report.completion_seconds() >= 0.0);
        assert!(report.requests_per_second() > 0.0);
    }

    #[test]
    fn most_called_list_cycles_past_its_length() {
        assert_eq!(most_called_functions(10).len(), 10);
        let top300 = most_called_functions(300);
        assert_eq!(top300.len(), 300);
        assert_eq!(top300[0], top300[20]);
        assert!(most_called_functions(3).contains(&"send"));
    }

    #[test]
    fn failed_open_degrades_gracefully() {
        use lfi_runtime::NativeLibrary;
        let (mut server, mut process) = server_and_process();
        process.preload(
            NativeLibrary::builder("inject.so")
                .function("open", |ctx| {
                    ctx.set_errno(24);
                    -1
                })
                .build(),
        );
        assert_eq!(server.handle_request(&mut process, RequestKind::StaticHtml), -1);
    }
}
