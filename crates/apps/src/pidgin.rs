//! The Pidgin-like instant-messenger client and the DNS-resolver bug LFI
//! found in it (§6.1).
//!
//! Structure of the real bug, reproduced here: Pidgin forks a DNS-resolver
//! child that answers resolution requests over a pipe.  For each request the
//! child writes a status word, then the size of the resolved address, then
//! the address bytes — *without checking whether the writes succeed*.  If a
//! write fails or is short, the stream read by the parent shifts: the parent
//! reads a status (fine), then reads what it believes is the size but is
//! actually data from a later message — a very large value — and calls
//! `malloc` with it.  The allocation fails and the client dies with SIGABRT.

use lfi_runtime::{ExitStatus, Process, Signal};

/// Status word the resolver child writes for a successful resolution.
const STATUS_OK: i64 = 0;
/// Size, in bytes, of a resolved IPv4 address record.
const ADDR_SIZE: i64 = 16;
/// The "address bytes" payload (a value recognisably larger than any sane
/// allocation size, so a misaligned read of it forces the allocation
/// failure).
const ADDR_PAYLOAD: i64 = 0xC0A8_0101_0000;

/// The simulated Pidgin client.
#[derive(Debug, Clone, Copy, Default)]
pub struct PidginApp {
    /// Number of host names the login sequence resolves.
    pub dns_requests: usize,
}

impl PidginApp {
    /// A client whose login resolves the default number of host names.
    pub fn new() -> Self {
        Self { dns_requests: 4 }
    }

    /// The resolver child: services every request by writing status, size and
    /// payload to the pipe, ignoring write failures (the bug).
    fn resolver_child(&self, process: &mut Process, pipe: i64) {
        process.push_frame("dns_resolver_child");
        for _ in 0..self.dns_requests {
            // The child does not look at the results of these writes.
            let _ = process.call("write", &[pipe, STATUS_OK, 8]);
            let _ = process.call("write", &[pipe, ADDR_SIZE, 8]);
            let _ = process.call("write", &[pipe, ADDR_PAYLOAD, ADDR_SIZE]);
        }
        process.pop_frame();
    }

    /// The parent: reads each response, allocates room for the address and
    /// copies it.  A failed allocation aborts the process (g_malloc style).
    fn parent_read_responses(&self, process: &mut Process, pipe: i64) -> ExitStatus {
        process.push_frame("refresh_files");
        for _ in 0..self.dns_requests {
            let status = match process.call("read", &[pipe]) {
                Ok(value) => value,
                Err(_) => return ExitStatus::Exited(1),
            };
            if status != STATUS_OK {
                // Read error or resolver-reported failure: handled gracefully.
                process.pop_frame();
                return ExitStatus::Exited(1);
            }
            let size = process.call("read", &[pipe]).unwrap_or(-1);
            if size < 0 {
                process.pop_frame();
                return ExitStatus::Exited(1);
            }
            // The unchecked assumption: `size` is a small address length.
            let buffer = process.call("malloc", &[size]).unwrap_or(0);
            if buffer == 0 {
                // g_malloc aborts when the allocation fails.
                process.pop_frame();
                return ExitStatus::Crashed(Signal::Abort);
            }
            let _address = process.call("read", &[pipe]).unwrap_or(0);
            let _ = process.call("free", &[buffer, size]);
        }
        process.pop_frame();
        ExitStatus::Exited(0)
    }

    /// Runs the login sequence: create the resolver pipe, run the child, then
    /// let the parent consume the responses.  The pipe lives in the shared
    /// [`SimWorld`](crate::SimWorld) the process's native libc was built
    /// over, so the process is all the state the login needs.
    pub fn login(&self, process: &mut Process) -> ExitStatus {
        let pipe = match process.call("pipe", &[]) {
            Ok(fd) if fd >= 0 => fd,
            _ => return ExitStatus::Exited(1),
        };
        self.resolver_child(process, pipe);
        let status = self.parent_read_responses(process, pipe);
        let _ = process.call("close", &[pipe]);
        status
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::{base_process, new_world};

    #[test]
    fn login_succeeds_without_fault_injection() {
        let world = new_world();
        let mut process = base_process(&world, false);
        let status = PidginApp::new().login(&mut process);
        assert_eq!(status, ExitStatus::Exited(0));
    }

    #[test]
    fn dropping_the_size_write_crashes_with_sigabrt() {
        // Simulate the injected fault by making the second write of the first
        // request fail: preload a tiny interceptor that drops it.
        use lfi_runtime::NativeLibrary;
        let world = new_world();
        let mut process = base_process(&world, false);
        let drop_second_write = NativeLibrary::builder("inject.so")
            .function("write", {
                let counter = std::sync::Arc::new(parking_lot::Mutex::new(0u64));
                move |ctx| {
                    let mut count = counter.lock();
                    *count += 1;
                    if *count == 2 {
                        ctx.set_errno(4);
                        -1
                    } else {
                        ctx.call_next().unwrap_or(-1)
                    }
                }
            })
            .build();
        process.preload(drop_second_write);
        let status = PidginApp::new().login(&mut process);
        assert_eq!(status, ExitStatus::Crashed(Signal::Abort));
    }

    #[test]
    fn dropping_a_status_write_is_handled_gracefully() {
        use lfi_runtime::NativeLibrary;
        let world = new_world();
        let mut process = base_process(&world, false);
        let drop_first_write = NativeLibrary::builder("inject.so")
            .function("write", {
                let counter = std::sync::Arc::new(parking_lot::Mutex::new(0u64));
                move |ctx| {
                    let mut count = counter.lock();
                    *count += 1;
                    if *count == 1 {
                        ctx.set_errno(4);
                        -1
                    } else {
                        ctx.call_next().unwrap_or(-1)
                    }
                }
            })
            .build();
        process.preload(drop_first_write);
        let status = PidginApp::new().login(&mut process);
        // The parent notices the bogus status word and backs out cleanly —
        // no crash, just a failed login.
        assert_eq!(status, ExitStatus::Exited(1));
    }
}
