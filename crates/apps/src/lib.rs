//! # lfi-apps — the simulated applications of the LFI evaluation
//!
//! The paper evaluates LFI against real programs: Pidgin (a previously
//! unknown crash bug, §6.1), MySQL with its own regression test suite
//! (coverage improvement, §6.1; SysBench OLTP overhead, §6.4) and Apache
//! httpd under the AB load generator (§6.4).  This crate provides faithful
//! miniatures of those programs, built on the `lfi-runtime` process model so
//! the LFI controller can interpose on their library calls exactly as the
//! real tool interposes on the real programs:
//!
//! * [`native`] — the "original" libc/APR the applications link against,
//!   backed by a shared in-memory world;
//! * [`pidgin`] — the IM client with the unchecked-pipe-write resolver bug;
//! * [`mysql`] — the storage engine, its test suite with basic-block
//!   coverage, and the SysBench-like OLTP workload;
//! * [`apache`] — the request server with static-HTML and PHP workloads and
//!   the AB-like load generator;
//! * [`coverage`] — basic-block coverage bookkeeping;
//! * [`workloads`] — the applications packaged as first-class
//!   [`lfi_controller::Workload`]s (fresh [`SimWorld`] + process per test
//!   case), collected in a [`lfi_controller::WorkloadRegistry`] for named
//!   lookup.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apache;
pub mod coverage;
pub mod mysql;
pub mod native;
pub mod pidgin;
pub mod workloads;

pub use apache::{ApacheServer, RequestKind};
pub use coverage::CoverageMap;
pub use mysql::{MysqlServer, SuiteReport};
pub use native::{base_process, native_libc, new_world, service_work, SimWorld, World};
pub use pidgin::PidginApp;
pub use workloads::{ApacheLoad, MysqlSuite, PidginLogin};
