//! Basic-block coverage bookkeeping for the MySQL-like application.
//!
//! The paper measures effectiveness partly as test-suite coverage improvement
//! (§6.1: MySQL's own suite reaches 73% basic-block coverage; LFI lifts it to
//! ≥74% overall and by 12% in the InnoDB ibuf module).  The simulated server
//! registers its basic blocks here and marks them as it executes.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A registry of (module, block) pairs and which of them have executed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMap {
    blocks: BTreeMap<String, BTreeSet<String>>,
    hit: BTreeMap<String, BTreeSet<String>>,
}

impl CoverageMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a block (idempotent).
    pub fn register(&mut self, module: &str, block: &str) {
        self.blocks.entry(module.to_owned()).or_default().insert(block.to_owned());
    }

    /// Marks a block as executed, registering it if needed.
    pub fn hit(&mut self, module: &str, block: &str) {
        self.register(module, block);
        self.hit.entry(module.to_owned()).or_default().insert(block.to_owned());
    }

    /// Forgets which blocks were hit but keeps the registry.
    pub fn reset_hits(&mut self) {
        self.hit.clear();
    }

    /// Total number of registered blocks.
    pub fn total_blocks(&self) -> usize {
        self.blocks.values().map(BTreeSet::len).sum()
    }

    /// Number of blocks hit.
    pub fn hit_blocks(&self) -> usize {
        self.hit.values().map(BTreeSet::len).sum()
    }

    /// Overall coverage, in [0, 1].
    pub fn overall(&self) -> f64 {
        ratio(self.hit_blocks(), self.total_blocks())
    }

    /// Coverage of one module, in [0, 1].
    pub fn module(&self, module: &str) -> f64 {
        let total = self.blocks.get(module).map_or(0, BTreeSet::len);
        let hit = self.hit.get(module).map_or(0, BTreeSet::len);
        ratio(hit, total)
    }

    /// Names of the registered modules.
    pub fn modules(&self) -> impl Iterator<Item = &str> {
        self.blocks.keys().map(String::as_str)
    }

    /// Merges the hits of another run into this one (e.g. accumulating
    /// coverage over many test cases).
    pub fn absorb(&mut self, other: &CoverageMap) {
        for (module, blocks) in &other.blocks {
            for block in blocks {
                self.register(module, block);
            }
        }
        for (module, blocks) in &other.hit {
            for block in blocks {
                self.hit(module, block);
            }
        }
    }
}

fn ratio(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

impl fmt::Display for CoverageMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} blocks ({:.1}%)", self.hit_blocks(), self.total_blocks(), self.overall() * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_accounting() {
        let mut map = CoverageMap::new();
        map.register("parser", "ok_1");
        map.register("parser", "err_1");
        map.register("ibuf", "ok_1");
        map.hit("parser", "ok_1");
        assert_eq!(map.total_blocks(), 3);
        assert_eq!(map.hit_blocks(), 1);
        assert!((map.overall() - 1.0 / 3.0).abs() < 1e-9);
        assert!((map.module("parser") - 0.5).abs() < 1e-9);
        assert_eq!(map.module("ibuf"), 0.0);
        assert_eq!(map.module("missing"), 0.0);
        assert_eq!(map.modules().count(), 2);
        assert!(map.to_string().contains("1/3"));
    }

    #[test]
    fn hits_reset_but_registry_remains() {
        let mut map = CoverageMap::new();
        map.hit("m", "b");
        map.reset_hits();
        assert_eq!(map.total_blocks(), 1);
        assert_eq!(map.hit_blocks(), 0);
    }

    #[test]
    fn absorb_unions_hits() {
        let mut a = CoverageMap::new();
        a.hit("m", "b1");
        a.register("m", "b2");
        let mut b = CoverageMap::new();
        b.hit("m", "b2");
        a.absorb(&b);
        assert_eq!(a.hit_blocks(), 2);
        assert_eq!(a.total_blocks(), 2);
    }
}
