//! The "original libraries" the simulated applications link against: a native
//! libc (and a small APR) whose behaviours operate on a shared [`SimWorld`].
//!
//! Modelling note: the simulated `read`/`recv` return the *data value* read
//! from the stream rather than a byte count, and `write`/`send` append their
//! second argument as one message.  This keeps the applications' control flow
//! faithful to the real programs (status/size/payload protocols over pipes,
//! row reads from a table file) while staying within the integer-argument
//! call interface of `lfi-runtime`.  Error conventions match libc: `-1` on
//! failure, `0` from `malloc` when allocation fails.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use lfi_runtime::{NativeLibrary, Process};

/// Shared world state backing the native libraries: open streams (files,
/// pipes, sockets) and a bounded heap.
#[derive(Debug)]
pub struct SimWorld {
    streams: HashMap<i64, VecDeque<i64>>,
    next_fd: i64,
    heap_used: i64,
    heap_limit: i64,
    next_ptr: i64,
    /// Number of fsync calls serviced (used by the MySQL log).
    pub fsyncs: u64,
}

impl Default for SimWorld {
    fn default() -> Self {
        Self::new()
    }
}

impl SimWorld {
    /// Creates a world with a 1 GiB heap limit.
    pub fn new() -> Self {
        Self::with_heap_limit(1 << 30)
    }

    /// Creates a world with an explicit heap limit, in bytes.
    pub fn with_heap_limit(limit: i64) -> Self {
        Self { streams: HashMap::new(), next_fd: 3, heap_used: 0, heap_limit: limit, next_ptr: 0x1000, fsyncs: 0 }
    }

    /// Opens a fresh stream and returns its descriptor.
    pub fn open_stream(&mut self) -> i64 {
        let fd = self.next_fd;
        self.next_fd += 1;
        self.streams.insert(fd, VecDeque::new());
        fd
    }

    /// Pre-populates a stream with values (e.g. a file's contents).
    pub fn push_data(&mut self, fd: i64, values: &[i64]) {
        if let Some(stream) = self.streams.get_mut(&fd) {
            stream.extend(values.iter().copied());
        }
    }

    /// Appends one value to a stream; returns false when the descriptor is
    /// unknown.
    pub fn write_value(&mut self, fd: i64, value: i64) -> bool {
        match self.streams.get_mut(&fd) {
            Some(stream) => {
                stream.push_back(value);
                true
            }
            None => false,
        }
    }

    /// Pops the next value from a stream.
    pub fn read_value(&mut self, fd: i64) -> Option<i64> {
        self.streams.get_mut(&fd)?.pop_front()
    }

    /// Number of values currently buffered in a stream.
    pub fn stream_len(&self, fd: i64) -> usize {
        self.streams.get(&fd).map_or(0, VecDeque::len)
    }

    /// Closes a stream; returns false when the descriptor is unknown.
    pub fn close_stream(&mut self, fd: i64) -> bool {
        self.streams.remove(&fd).is_some()
    }

    /// Attempts to allocate `size` bytes; returns 0 (a null pointer) when the
    /// heap limit would be exceeded, like `malloc` under memory pressure.
    pub fn allocate(&mut self, size: i64) -> i64 {
        if size < 0 || self.heap_used.saturating_add(size) > self.heap_limit {
            return 0;
        }
        self.heap_used += size;
        let ptr = self.next_ptr;
        self.next_ptr += size.max(8);
        ptr
    }

    /// Releases `size` bytes (the simulation does not track per-pointer
    /// sizes; callers pass what they allocated).
    pub fn release(&mut self, size: i64) {
        self.heap_used = (self.heap_used - size).max(0);
    }

    /// Bytes currently allocated.
    pub fn heap_used(&self) -> i64 {
        self.heap_used
    }

    /// Returns the world to its just-created state (no streams, empty heap,
    /// descriptor and pointer counters rewound), preserving the configured
    /// heap limit.  This is the arena reset hook for pooled app processes:
    /// [`base_process`] never mutates the world it closes over, so a reset
    /// world is indistinguishable from a freshly built one.
    pub fn reset(&mut self) {
        *self = Self::with_heap_limit(self.heap_limit);
    }
}

/// A handle to shared world state, cloneable into library closures.
pub type World = Arc<Mutex<SimWorld>>;

/// Burns a calibrated amount of CPU, standing in for the application-level
/// work (parsing, templating, buffer-pool management, kernel I/O) a real
/// request performs between library calls.  Without it the simulated requests
/// would consist almost entirely of library dispatch and the §6.4 overhead
/// ratios would be meaningless; see EXPERIMENTS.md.
pub fn service_work(units: u64) {
    let mut acc = 0u64;
    for i in 0..units {
        acc = std::hint::black_box(acc.wrapping_mul(6364136223846793005).wrapping_add(i));
    }
    std::hint::black_box(acc);
}

/// Creates a fresh shared world.
pub fn new_world() -> World {
    Arc::new(Mutex::new(SimWorld::new()))
}

/// Builds the native libc backed by `world`.
pub fn native_libc(world: &World) -> NativeLibrary {
    let w = |world: &World| Arc::clone(world);
    NativeLibrary::builder("libc.so.6")
        .function("open", {
            let world = w(world);
            move |_| world.lock().open_stream()
        })
        .function("pipe", {
            let world = w(world);
            move |_| world.lock().open_stream()
        })
        .function("socket", {
            let world = w(world);
            move |_| world.lock().open_stream()
        })
        .function("read", {
            let world = w(world);
            move |ctx| match world.lock().read_value(ctx.arg(0)) {
                Some(value) => value,
                None => {
                    ctx.set_errno(11); // EAGAIN: nothing buffered
                    -1
                }
            }
        })
        .function("recv", {
            let world = w(world);
            move |ctx| match world.lock().read_value(ctx.arg(0)) {
                Some(value) => value,
                None => {
                    ctx.set_errno(11);
                    -1
                }
            }
        })
        .function("write", {
            let world = w(world);
            move |ctx| {
                if world.lock().write_value(ctx.arg(0), ctx.arg(1)) {
                    ctx.arg(2).max(1)
                } else {
                    ctx.set_errno(9); // EBADF
                    -1
                }
            }
        })
        .function("send", {
            let world = w(world);
            move |ctx| {
                if world.lock().write_value(ctx.arg(0), ctx.arg(1)) {
                    ctx.arg(2).max(1)
                } else {
                    ctx.set_errno(9);
                    -1
                }
            }
        })
        .function("close", {
            let world = w(world);
            move |ctx| {
                if world.lock().close_stream(ctx.arg(0)) {
                    0
                } else {
                    ctx.set_errno(9);
                    -1
                }
            }
        })
        .function("malloc", {
            let world = w(world);
            move |ctx| world.lock().allocate(ctx.arg(0))
        })
        .function("calloc", {
            let world = w(world);
            move |ctx| world.lock().allocate(ctx.arg(0) * ctx.arg(1).max(1))
        })
        .function("free", {
            let world = w(world);
            move |ctx| {
                world.lock().release(ctx.arg(1));
                0
            }
        })
        .function("fsync", {
            let world = w(world);
            move |_| {
                world.lock().fsyncs += 1;
                0
            }
        })
        .constant("connect", 0)
        .constant("getaddrinfo", 0)
        .constant("stat", 0)
        .constant("lseek", 0)
        .constant("select", 1)
        .constant("poll", 1)
        .constant("fork", 1)
        .constant("getpid", 4242)
        .function("readdir", {
            let world = w(world);
            move |ctx| world.lock().read_value(ctx.arg(0)).unwrap_or(0)
        })
        .function("readdir64", {
            let world = w(world);
            move |ctx| world.lock().read_value(ctx.arg(0)).unwrap_or(0)
        })
        .build()
}

/// Builds the native APR libraries used by the Apache simulation; they wrap
/// libc through nested calls so interceptors on either layer observe traffic.
pub fn native_apr(_world: &World) -> NativeLibrary {
    NativeLibrary::builder("libapr-1.so.0")
        .function("apr_file_read", |ctx| {
            let args = ctx.args().to_vec();
            ctx.call("read", &args).unwrap_or(-1)
        })
        .function("apr_file_write", |ctx| {
            let args = ctx.args().to_vec();
            ctx.call("write", &args).unwrap_or(-1)
        })
        .function("apr_socket_send", |ctx| {
            let args = ctx.args().to_vec();
            ctx.call("send", &args).unwrap_or(-1)
        })
        .function("apr_socket_recv", |ctx| {
            let args = ctx.args().to_vec();
            ctx.call("recv", &args).unwrap_or(-1)
        })
        .function("apr_palloc", |ctx| {
            let args = ctx.args().to_vec();
            ctx.call("malloc", &args).unwrap_or(0)
        })
        .constant("apr_pool_create", 0)
        .build()
}

/// Builds the small aprutil companion library.
pub fn native_aprutil(_world: &World) -> NativeLibrary {
    NativeLibrary::builder("libaprutil-1.so.0")
        .function("apu_palloc", |ctx| {
            let args = ctx.args().to_vec();
            ctx.call("malloc", &args).unwrap_or(0)
        })
        .function("apu_brigade_write", |ctx| {
            let args = ctx.args().to_vec();
            ctx.call("write", &args).unwrap_or(-1)
        })
        .build()
}

/// Builds a process with the native libc (and optionally APR) loaded.
pub fn base_process(world: &World, with_apr: bool) -> Process {
    let mut process = Process::new();
    if with_apr {
        process.load(native_apr(world));
        process.load(native_aprutil(world));
    }
    process.load(native_libc(world));
    process
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_behave_like_pipes() {
        let world = new_world();
        let mut process = base_process(&world, false);
        let fd = process.call("pipe", &[]).unwrap();
        assert_eq!(process.call("write", &[fd, 77, 8]).unwrap(), 8);
        assert_eq!(process.call("write", &[fd, 88, 8]).unwrap(), 8);
        assert_eq!(process.call("read", &[fd]).unwrap(), 77);
        assert_eq!(process.call("read", &[fd]).unwrap(), 88);
        // Draining an empty pipe is an EAGAIN-style failure.
        assert_eq!(process.call("read", &[fd]).unwrap(), -1);
        assert_eq!(process.state().errno(), 11);
        assert_eq!(process.call("close", &[fd]).unwrap(), 0);
        assert_eq!(process.call("close", &[fd]).unwrap(), -1);
    }

    #[test]
    fn malloc_honours_the_heap_limit() {
        let world: World = Arc::new(Mutex::new(SimWorld::with_heap_limit(1024)));
        let mut process = base_process(&world, false);
        let p1 = process.call("malloc", &[512]).unwrap();
        assert_ne!(p1, 0);
        let p2 = process.call("malloc", &[600]).unwrap();
        assert_eq!(p2, 0);
        process.call("free", &[p1, 512]).unwrap();
        assert_ne!(process.call("malloc", &[600]).unwrap(), 0);
        assert_eq!(world.lock().heap_used(), 600);
    }

    #[test]
    fn apr_wrappers_delegate_to_libc() {
        let world = new_world();
        let mut process = base_process(&world, true);
        let fd = process.call("open", &[]).unwrap();
        assert_eq!(process.call("apr_file_write", &[fd, 5, 4]).unwrap(), 4);
        assert_eq!(process.call("apr_file_read", &[fd]).unwrap(), 5);
        assert_ne!(process.call("apr_palloc", &[64]).unwrap(), 0);
        assert_eq!(process.call("fsync", &[fd]).unwrap(), 0);
        assert_eq!(world.lock().fsyncs, 1);
    }

    #[test]
    fn world_stream_utilities() {
        let mut world = SimWorld::new();
        let fd = world.open_stream();
        world.push_data(fd, &[1, 2, 3]);
        assert_eq!(world.stream_len(fd), 3);
        assert_eq!(world.read_value(fd), Some(1));
        assert!(!world.write_value(999, 1));
        assert_eq!(world.read_value(999), None);
        assert_eq!(world.allocate(-1), 0);
    }
}
